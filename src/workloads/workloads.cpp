#include "workloads/workloads.h"

#include <cmath>
#include <cstring>

#include "util/error.h"
#include "util/rng.h"

namespace lm::workloads {

using bc::ArrayRef;
using bc::Value;
using gpu::KArg;
using serde::CValue;

namespace {

// ---------------------------------------------------------------------------
// Input generators
// ---------------------------------------------------------------------------

ArrayRef random_f32(size_t n, uint64_t seed, float lo, float hi) {
  SplitMix64 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = lo + (hi - lo) * rng.next_float();
  return bc::make_f32_array(std::move(v), true);
}

ArrayRef random_i32(size_t n, uint64_t seed, int32_t lo, int32_t hi) {
  SplitMix64 rng(seed);
  std::vector<int32_t> v(n);
  for (auto& x : v) x = static_cast<int32_t>(rng.next_range(lo, hi));
  return bc::make_i32_array(std::move(v), true);
}

ArrayRef iota(size_t n) {
  std::vector<int32_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<int32_t>(i);
  return bc::make_i32_array(std::move(v), true);
}

// Reference helper: the cumulative normal used by Black-Scholes, float32
// exactly as the Lime kernel computes it.
float cnd_ref(float x) {
  float l = std::fabs(x);
  float k = 1.0f / (1.0f + 0.2316419f * l);
  float poly = 0.31938153f * k - 0.356563782f * k * k +
               1.781477937f * k * k * k - 1.821255978f * k * k * k * k +
               1.330274429f * k * k * k * k * k;
  float w = 1.0f - 0.39894228f * std::exp(-0.5f * l * l) * poly;
  return x < 0.0f ? 1.0f - w : w;
}

// ---------------------------------------------------------------------------
// Lime sources
// ---------------------------------------------------------------------------

const char* kSaxpySource = R"(
class Saxpy {
  local static float axpy(float a, float x, float y) { return a * x + y; }
  static float[[]] run(float a, float[[]] x, float[[]] y) {
    return Saxpy @ axpy(a, x, y);
  }
}
)";

const char* kVaddSource = R"(
class Vadd {
  local static int add2(int x, int y) { return x + y; }
  static int[[]] run(int[[]] x, int[[]] y) {
    return Vadd @ add2(x, y);
  }
}
)";

const char* kMandelSource = R"(
class Mandel {
  local static int escape(int idx, int width, float x0, float y0,
                          float dx, float dy, int maxIter) {
    int px = idx % width;
    int py = idx / width;
    float cr = x0 + dx * px;
    float ci = y0 + dy * py;
    float zr = 0.0f;
    float zi = 0.0f;
    int it = 0;
    while (it < maxIter && zr * zr + zi * zi < 4.0f) {
      float nzr = zr * zr - zi * zi + cr;
      zi = 2.0f * zr * zi + ci;
      zr = nzr;
      it += 1;
    }
    return it;
  }
  static int[[]] run(int[[]] idx, int width, float x0, float y0,
                     float dx, float dy, int maxIter) {
    return Mandel @ escape(idx, width, x0, y0, dx, dy, maxIter);
  }
}
)";

const char* kBlackScholesSource = R"(
class BlackScholes {
  local static float cnd(float x) {
    float l = Math.abs(x);
    float k = 1.0f / (1.0f + 0.2316419f * l);
    float poly = 0.31938153f * k - 0.356563782f * k * k
      + 1.781477937f * k * k * k - 1.821255978f * k * k * k * k
      + 1.330274429f * k * k * k * k * k;
    float w = 1.0f - 0.39894228f * Math.exp(-0.5f * l * l) * poly;
    return x < 0.0f ? 1.0f - w : w;
  }
  local static float callPrice(float s, float k, float t, float r, float v) {
    float sq = v * Math.sqrt(t);
    float d1 = (Math.log(s / k) + (r + 0.5f * v * v) * t) / sq;
    float d2 = d1 - sq;
    return s * cnd(d1) - k * Math.exp(-r * t) * cnd(d2);
  }
  static float[[]] run(float[[]] s, float[[]] k, float[[]] t, float r, float v) {
    return BlackScholes @ callPrice(s, k, t, r, v);
  }
}
)";

const char* kNBodySource = R"(
class NBody {
  local static float accelX(float[[]] px, float[[]] py, float[[]] pz,
                            int i, int n) {
    float xi = px[i];
    float yi = py[i];
    float zi = pz[i];
    float ax = 0.0f;
    for (int j = 0; j < n; j += 1) {
      float dx = px[j] - xi;
      float dy = py[j] - yi;
      float dz = pz[j] - zi;
      float d2 = dx * dx + dy * dy + dz * dz + 0.0001f;
      float inv = 1.0f / (d2 * Math.sqrt(d2));
      ax += dx * inv;
    }
    return ax;
  }
  static float[[]] run(float[[]] px, float[[]] py, float[[]] pz,
                       int[[]] idx, int n) {
    return NBody @ accelX(px, py, pz, idx, n);
  }
}
)";

const char* kMatMulSource = R"(
class MatMul {
  local static float cell(float[[]] a, float[[]] b, int n, int idx) {
    int row = idx / n;
    int col = idx % n;
    float acc = 0.0f;
    for (int k = 0; k < n; k += 1) {
      acc += a[row * n + k] * b[k * n + col];
    }
    return acc;
  }
  static float[[]] run(float[[]] a, float[[]] b, int[[]] idx, int n) {
    return MatMul @ cell(a, b, n, idx);
  }
}
)";

const char* kConvSource = R"(
class Conv {
  local static float at(float[[]] signal, float[[]] taps, int idx) {
    float acc = 0.0f;
    for (int k = 0; k < taps.length; k += 1) {
      acc += signal[idx + k] * taps[k];
    }
    return acc;
  }
  static float[[]] run(float[[]] signal, float[[]] taps, int[[]] idx) {
    return Conv @ at(signal, taps, idx);
  }
}
)";

const char* kSumReduceSource = R"(
class SumReduce {
  local static int add2(int a, int b) { return a + b; }
  static int run(int[[]] xs) { return SumReduce ! add2(xs); }
}
)";

const char* kIntPipeSource = R"(
class IntPipe {
  local static int scale(int x) { return 3 * x; }
  local static int clamp(int x) {
    return Math.min(Math.max(x, -100000), 100000);
  }
  local static int offset(int x) { return x + 13; }
  static int[[]] run(int[[]] input) {
    int[] result = new int[input.length];
    var g = input.source(1)
      => ([ task scale ])
      => ([ task clamp ])
      => ([ task offset ])
      => result.<int>sink();
    g.finish();
    return new int[[]](result);
  }
}
)";

const char* kCrc8Source = R"(
class Crc8 {
  // CRC-8 (poly 0x07) of one byte, bit-serial with a fully unrolled loop —
  // exactly the shape the FPGA backend synthesizes into a datapath.
  local static int crc8(int b) {
    int crc = b & 255;
    for (int i = 0; i < 8; i += 1) {
      crc = (crc & 128) != 0 ? ((crc << 1) ^ 7) & 255 : (crc << 1) & 255;
    }
    return crc;
  }
  static int[[]] run(int[[]] bytes) {
    int[] result = new int[bytes.length];
    var g = bytes.source(1) => ([ task crc8 ]) => result.<int>sink();
    g.finish();
    return new int[[]](result);
  }
}
)";

const char* kBitPipeSource = R"(
public value enum bit {
  zero, one;
  public bit ~ this {
    return this == zero ? one : zero;
  }
}
class BitPipe {
  local static bit flip(bit b) { return ~b; }
  static bit[[]] run(bit[[]] input) {
    bit[] result = new bit[input.length];
    var g = input.source(1) => ([ task flip ]) => result.<bit>sink();
    g.finish();
    return new bit[[]](result);
  }
}
)";

// ---------------------------------------------------------------------------
// Reference implementations
// ---------------------------------------------------------------------------

Value ref_saxpy(const std::vector<Value>& args) {
  float a = args[0].as_f32();
  const auto& x = std::get<std::vector<float>>(args[1].as_array()->data);
  const auto& y = std::get<std::vector<float>>(args[2].as_array()->data);
  std::vector<float> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = a * x[i] + y[i];
  return Value::array(bc::make_f32_array(std::move(out), true));
}

Value ref_vadd(const std::vector<Value>& args) {
  const auto& x = std::get<std::vector<int32_t>>(args[0].as_array()->data);
  const auto& y = std::get<std::vector<int32_t>>(args[1].as_array()->data);
  std::vector<int32_t> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return Value::array(bc::make_i32_array(std::move(out), true));
}

int32_t mandel_escape_ref(int32_t idx, int32_t width, float x0, float y0,
                          float dx, float dy, int32_t max_iter) {
  int32_t px = idx % width;
  int32_t py = idx / width;
  float cr = x0 + dx * static_cast<float>(px);
  float ci = y0 + dy * static_cast<float>(py);
  float zr = 0.0f, zi = 0.0f;
  int32_t it = 0;
  while (it < max_iter && zr * zr + zi * zi < 4.0f) {
    float nzr = zr * zr - zi * zi + cr;
    zi = 2.0f * zr * zi + ci;
    zr = nzr;
    ++it;
  }
  return it;
}

Value ref_mandel(const std::vector<Value>& args) {
  const auto& idx = std::get<std::vector<int32_t>>(args[0].as_array()->data);
  int32_t width = args[1].as_i32();
  float x0 = args[2].as_f32(), y0 = args[3].as_f32();
  float dx = args[4].as_f32(), dy = args[5].as_f32();
  int32_t max_iter = args[6].as_i32();
  std::vector<int32_t> out(idx.size());
  for (size_t i = 0; i < idx.size(); ++i) {
    out[i] = mandel_escape_ref(idx[i], width, x0, y0, dx, dy, max_iter);
  }
  return Value::array(bc::make_i32_array(std::move(out), true));
}

float bs_call_ref(float s, float k, float t, float r, float v) {
  float sq = v * std::sqrt(t);
  float d1 = (std::log(s / k) + (r + 0.5f * v * v) * t) / sq;
  float d2 = d1 - sq;
  return s * cnd_ref(d1) - k * std::exp(-r * t) * cnd_ref(d2);
}

Value ref_blackscholes(const std::vector<Value>& args) {
  const auto& s = std::get<std::vector<float>>(args[0].as_array()->data);
  const auto& k = std::get<std::vector<float>>(args[1].as_array()->data);
  const auto& t = std::get<std::vector<float>>(args[2].as_array()->data);
  float r = args[3].as_f32(), v = args[4].as_f32();
  std::vector<float> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = bs_call_ref(s[i], k[i], t[i], r, v);
  }
  return Value::array(bc::make_f32_array(std::move(out), true));
}

Value ref_nbody(const std::vector<Value>& args) {
  const auto& px = std::get<std::vector<float>>(args[0].as_array()->data);
  const auto& py = std::get<std::vector<float>>(args[1].as_array()->data);
  const auto& pz = std::get<std::vector<float>>(args[2].as_array()->data);
  const auto& idx = std::get<std::vector<int32_t>>(args[3].as_array()->data);
  int32_t n = args[4].as_i32();
  std::vector<float> out(idx.size());
  for (size_t w = 0; w < idx.size(); ++w) {
    int32_t i = idx[w];
    float xi = px[static_cast<size_t>(i)];
    float yi = py[static_cast<size_t>(i)];
    float zi = pz[static_cast<size_t>(i)];
    float ax = 0.0f;
    for (int32_t j = 0; j < n; ++j) {
      float dx = px[static_cast<size_t>(j)] - xi;
      float dy = py[static_cast<size_t>(j)] - yi;
      float dz = pz[static_cast<size_t>(j)] - zi;
      float d2 = dx * dx + dy * dy + dz * dz + 0.0001f;
      float inv = 1.0f / (d2 * std::sqrt(d2));
      ax += dx * inv;
    }
    out[w] = ax;
  }
  return Value::array(bc::make_f32_array(std::move(out), true));
}

Value ref_matmul(const std::vector<Value>& args) {
  const auto& a = std::get<std::vector<float>>(args[0].as_array()->data);
  const auto& b = std::get<std::vector<float>>(args[1].as_array()->data);
  const auto& idx = std::get<std::vector<int32_t>>(args[2].as_array()->data);
  int32_t n = args[3].as_i32();
  std::vector<float> out(idx.size());
  for (size_t w = 0; w < idx.size(); ++w) {
    int32_t row = idx[w] / n;
    int32_t col = idx[w] % n;
    float acc = 0.0f;
    for (int32_t k = 0; k < n; ++k) {
      acc += a[static_cast<size_t>(row * n + k)] *
             b[static_cast<size_t>(k * n + col)];
    }
    out[w] = acc;
  }
  return Value::array(bc::make_f32_array(std::move(out), true));
}

Value ref_conv(const std::vector<Value>& args) {
  const auto& sig = std::get<std::vector<float>>(args[0].as_array()->data);
  const auto& taps = std::get<std::vector<float>>(args[1].as_array()->data);
  const auto& idx = std::get<std::vector<int32_t>>(args[2].as_array()->data);
  std::vector<float> out(idx.size());
  for (size_t w = 0; w < idx.size(); ++w) {
    float acc = 0.0f;
    for (size_t k = 0; k < taps.size(); ++k) {
      acc += sig[static_cast<size_t>(idx[w]) + k] * taps[k];
    }
    out[w] = acc;
  }
  return Value::array(bc::make_f32_array(std::move(out), true));
}

Value ref_sumreduce(const std::vector<Value>& args) {
  const auto& xs = std::get<std::vector<int32_t>>(args[0].as_array()->data);
  int32_t acc = 0;
  for (int32_t v : xs) acc += v;
  return Value::i32(acc);
}

Value ref_intpipe(const std::vector<Value>& args) {
  const auto& in = std::get<std::vector<int32_t>>(args[0].as_array()->data);
  std::vector<int32_t> out(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    int32_t v = 3 * in[i];
    v = std::min(std::max(v, -100000), 100000);
    out[i] = v + 13;
  }
  return Value::array(bc::make_i32_array(std::move(out), true));
}

Value ref_crc8(const std::vector<Value>& args) {
  const auto& in = std::get<std::vector<int32_t>>(args[0].as_array()->data);
  std::vector<int32_t> out(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    int32_t crc = in[i] & 255;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 128) != 0 ? ((crc << 1) ^ 7) & 255 : (crc << 1) & 255;
    }
    out[i] = crc;
  }
  return Value::array(bc::make_i32_array(std::move(out), true));
}

Value ref_bitpipe(const std::vector<Value>& args) {
  const auto& in = std::get<std::vector<uint8_t>>(args[0].as_array()->data);
  std::vector<uint8_t> out(in.size());
  for (size_t i = 0; i < in.size(); ++i) out[i] = in[i] ? 0 : 1;
  return Value::array(bc::make_bit_array(std::move(out), true));
}

}  // namespace

// ---------------------------------------------------------------------------
// Suites
// ---------------------------------------------------------------------------

const std::vector<Workload>& gpu_suite() {
  static const auto* kSuite = new std::vector<Workload>{
      {"saxpy", kSaxpySource, "Saxpy.run", "Saxpy.axpy",
       [](size_t n, uint64_t seed) {
         return std::vector<Value>{
             Value::f32(2.5f), Value::array(random_f32(n, seed, -10, 10)),
             Value::array(random_f32(n, seed + 1, -10, 10))};
       },
       ref_saxpy, 2.0},
      {"vadd", kVaddSource, "Vadd.run", "Vadd.add2",
       [](size_t n, uint64_t seed) {
         return std::vector<Value>{
             Value::array(random_i32(n, seed, -100000, 100000)),
             Value::array(random_i32(n, seed + 1, -100000, 100000))};
       },
       ref_vadd, 1.0},
      {"mandelbrot", kMandelSource, "Mandel.run", "Mandel.escape",
       [](size_t n, uint64_t) {
         size_t width = 256;
         return std::vector<Value>{Value::array(iota(n)),
                                   Value::i32(static_cast<int32_t>(width)),
                                   Value::f32(-2.0f), Value::f32(-1.25f),
                                   Value::f32(2.5f / 256), Value::f32(2.5f / 256),
                                   Value::i32(64)};
       },
       ref_mandel, 7.0 * 32},
      {"blackscholes", kBlackScholesSource, "BlackScholes.run",
       "BlackScholes.callPrice",
       [](size_t n, uint64_t seed) {
         return std::vector<Value>{
             Value::array(random_f32(n, seed, 10, 100)),      // spot
             Value::array(random_f32(n, seed + 1, 10, 100)),  // strike
             Value::array(random_f32(n, seed + 2, 0.2f, 2.0f)),  // expiry
             Value::f32(0.05f), Value::f32(0.2f)};
       },
       ref_blackscholes, 60.0},
      {"nbody", kNBodySource, "NBody.run", "NBody.accelX",
       [](size_t n, uint64_t seed) {
         return std::vector<Value>{
             Value::array(random_f32(n, seed, -1, 1)),
             Value::array(random_f32(n, seed + 1, -1, 1)),
             Value::array(random_f32(n, seed + 2, -1, 1)),
             Value::array(iota(n)), Value::i32(static_cast<int32_t>(n))};
       },
       ref_nbody, 12.0 * 64},
      {"matmul", kMatMulSource, "MatMul.run", "MatMul.cell",
       [](size_t n, uint64_t seed) {
         // n must be a perfect square cell count; round down.
         size_t dim = 1;
         while ((dim + 1) * (dim + 1) <= n) ++dim;
         size_t cells = dim * dim;
         return std::vector<Value>{
             Value::array(random_f32(cells, seed, -1, 1)),
             Value::array(random_f32(cells, seed + 1, -1, 1)),
             Value::array(iota(cells)), Value::i32(static_cast<int32_t>(dim))};
       },
       ref_matmul, 2.0 * 64},
      {"conv1d", kConvSource, "Conv.run", "Conv.at",
       [](size_t n, uint64_t seed) {
         size_t taps = 16;
         return std::vector<Value>{
             Value::array(random_f32(n + taps, seed, -1, 1)),
             Value::array(random_f32(taps, seed + 1, -1, 1)),
             Value::array(iota(n))};
       },
       ref_conv, 2.0 * 16},
      {"sumreduce", kSumReduceSource, "SumReduce.run", "SumReduce.add2",
       [](size_t n, uint64_t seed) {
         return std::vector<Value>{
             Value::array(random_i32(n, seed, -1000, 1000))};
       },
       ref_sumreduce, 1.0},
  };
  return *kSuite;
}

const std::vector<Workload>& pipeline_suite() {
  static const auto* kSuite = new std::vector<Workload>{
      {"intpipe", kIntPipeSource, "IntPipe.run", "IntPipe.scale",
       [](size_t n, uint64_t seed) {
         return std::vector<Value>{
             Value::array(random_i32(n, seed, -100000, 100000))};
       },
       ref_intpipe, 3.0},
      {"crc8pipe", kCrc8Source, "Crc8.run", "Crc8.crc8",
       [](size_t n, uint64_t seed) {
         return std::vector<Value>{
             Value::array(random_i32(n, seed, 0, 255))};
       },
       ref_crc8, 8.0 * 4},
      {"bitpipe", kBitPipeSource, "BitPipe.run", "BitPipe.flip",
       [](size_t n, uint64_t seed) {
         SplitMix64 rng(seed);
         std::vector<uint8_t> bits(n);
         for (auto& b : bits) b = rng.next_bool() ? 1 : 0;
         return std::vector<Value>{
             Value::array(bc::make_bit_array(std::move(bits), true))};
       },
       ref_bitpipe, 1.0},
  };
  return *kSuite;
}

// ---------------------------------------------------------------------------
// Native kernels (the "vendor toolflow output" for the simulated GPU)
// ---------------------------------------------------------------------------

void register_native_kernels() {
  static bool done = false;
  if (done) return;
  done = true;
  auto& reg = gpu::NativeKernelRegistry::global();

  reg.add("Saxpy.axpy", [](const std::vector<KArg>& a, CValue& out,
                           size_t b, size_t e) {
    float s = a[0].scalar.f32;
    auto x = a[1].array->f32s();
    auto y = a[2].array->f32s();
    auto o = out.f32s();
    for (size_t i = b; i < e; ++i) o[i] = s * x[i] + y[i];
  });

  reg.add("Vadd.add2", [](const std::vector<KArg>& a, CValue& out, size_t b,
                          size_t e) {
    auto x = a[0].array->i32s();
    auto y = a[1].array->i32s();
    auto o = out.i32s();
    for (size_t i = b; i < e; ++i) o[i] = x[i] + y[i];
  });

  reg.add("Mandel.escape", [](const std::vector<KArg>& a, CValue& out,
                              size_t b, size_t e) {
    auto idx = a[0].array->i32s();
    int32_t width = a[1].scalar.i32;
    float x0 = a[2].scalar.f32, y0 = a[3].scalar.f32;
    float dx = a[4].scalar.f32, dy = a[5].scalar.f32;
    int32_t max_iter = a[6].scalar.i32;
    auto o = out.i32s();
    for (size_t i = b; i < e; ++i) {
      o[i] = mandel_escape_ref(idx[i], width, x0, y0, dx, dy, max_iter);
    }
  });

  reg.add("BlackScholes.callPrice", [](const std::vector<KArg>& a,
                                       CValue& out, size_t b, size_t e) {
    auto s = a[0].array->f32s();
    auto k = a[1].array->f32s();
    auto t = a[2].array->f32s();
    float r = a[3].scalar.f32, v = a[4].scalar.f32;
    auto o = out.f32s();
    for (size_t i = b; i < e; ++i) o[i] = bs_call_ref(s[i], k[i], t[i], r, v);
  });

  reg.add("NBody.accelX", [](const std::vector<KArg>& a, CValue& out,
                             size_t b, size_t e) {
    auto px = a[0].array->f32s();
    auto py = a[1].array->f32s();
    auto pz = a[2].array->f32s();
    auto idx = a[3].array->i32s();
    int32_t n = a[4].scalar.i32;
    auto o = out.f32s();
    for (size_t w = b; w < e; ++w) {
      auto i = static_cast<size_t>(idx[w]);
      float xi = px[i], yi = py[i], zi = pz[i];
      float ax = 0.0f;
      for (int32_t j = 0; j < n; ++j) {
        auto ju = static_cast<size_t>(j);
        float dx = px[ju] - xi, dy = py[ju] - yi, dz = pz[ju] - zi;
        float d2 = dx * dx + dy * dy + dz * dz + 0.0001f;
        float inv = 1.0f / (d2 * std::sqrt(d2));
        ax += dx * inv;
      }
      o[w] = ax;
    }
  });

  reg.add("MatMul.cell", [](const std::vector<KArg>& a, CValue& out,
                            size_t b, size_t e) {
    auto m1 = a[0].array->f32s();
    auto m2 = a[1].array->f32s();
    int32_t n = a[2].scalar.i32;
    auto idx = a[3].array->i32s();
    auto o = out.f32s();
    for (size_t w = b; w < e; ++w) {
      int32_t row = idx[w] / n, col = idx[w] % n;
      float acc = 0.0f;
      for (int32_t k = 0; k < n; ++k) {
        acc += m1[static_cast<size_t>(row * n + k)] *
               m2[static_cast<size_t>(k * n + col)];
      }
      o[w] = acc;
    }
  });

  reg.add("Conv.at", [](const std::vector<KArg>& a, CValue& out, size_t b,
                        size_t e) {
    auto sig = a[0].array->f32s();
    auto taps = a[1].array->f32s();
    auto idx = a[2].array->i32s();
    auto o = out.f32s();
    for (size_t w = b; w < e; ++w) {
      float acc = 0.0f;
      for (size_t k = 0; k < taps.size(); ++k) {
        acc += sig[static_cast<size_t>(idx[w]) + k] * taps[k];
      }
      o[w] = acc;
    }
  });

  reg.add("SumReduce.add2", [](const std::vector<KArg>& a, CValue& out,
                               size_t b, size_t e) {
    // Binary reduce kernel launched pairwise (stride-2 views).
    auto o = out.i32s();
    for (size_t i = b; i < e; ++i) {
      int32_t l = a[0].array->i32s()[i * static_cast<size_t>(a[0].stride) +
                                     static_cast<size_t>(a[0].offset)];
      int32_t r = a[1].array->i32s()[i * static_cast<size_t>(a[1].stride) +
                                     static_cast<size_t>(a[1].offset)];
      o[i] = l + r;
    }
  });

  // Fused pipeline segment for IntPipe (scale → clamp → offset).
  reg.add("seg:IntPipe.scale:IntPipe.clamp:IntPipe.offset",
          [](const std::vector<KArg>& a, CValue& out, size_t b, size_t e) {
            auto in = a[0].array->i32s();
            auto o = out.i32s();
            for (size_t i = b; i < e; ++i) {
              int32_t v = 3 * in[i * static_cast<size_t>(a[0].stride)];
              v = std::min(std::max(v, -100000), 100000);
              o[i] = v + 13;
            }
          });
}

// ---------------------------------------------------------------------------
// Result comparison
// ---------------------------------------------------------------------------

namespace {
bool close(double a, double b, double rel_tol) {
  if (a == b) return true;
  double diff = std::fabs(a - b);
  double mag = std::max(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * std::max(mag, 1e-6);
}
}  // namespace

bool results_match(const Value& a, const Value& b, double rel_tol) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case bc::ValueKind::kFloat:
      return close(a.as_f32(), b.as_f32(), rel_tol);
    case bc::ValueKind::kDouble:
      return close(a.as_f64(), b.as_f64(), rel_tol);
    case bc::ValueKind::kArray: {
      const auto& x = *a.as_array();
      const auto& y = *b.as_array();
      if (x.elem != y.elem || x.size() != y.size()) return false;
      if (x.elem == bc::ElemCode::kF32) {
        const auto& xv = std::get<std::vector<float>>(x.data);
        const auto& yv = std::get<std::vector<float>>(y.data);
        for (size_t i = 0; i < xv.size(); ++i) {
          if (!close(xv[i], yv[i], rel_tol)) return false;
        }
        return true;
      }
      if (x.elem == bc::ElemCode::kF64) {
        const auto& xv = std::get<std::vector<double>>(x.data);
        const auto& yv = std::get<std::vector<double>>(y.data);
        for (size_t i = 0; i < xv.size(); ++i) {
          if (!close(xv[i], yv[i], rel_tol)) return false;
        }
        return true;
      }
      return a.equals(b);
    }
    default:
      return a.equals(b);
  }
}

}  // namespace lm::workloads
