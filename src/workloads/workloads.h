// The Lime benchmark suite (S10).
//
// These are the data-parallel and streaming workloads of the kind the
// paper's companion evaluation [3] measured (the DAC paper quotes its
// 12×–431× end-to-end GPU speedups from that suite): saxpy, vector add,
// mandelbrot, black-scholes, n-body, matrix multiply, 1-D convolution, and
// a sum reduction — plus integer streaming pipelines for the FPGA and
// scheduler experiments.
//
// Each workload carries its Lime source, its entry point, an input
// generator, a plain-C++ reference implementation (for correctness
// checking), and optionally a pre-compiled native kernel that plays the
// role of the vendor OpenCL toolflow's output.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bytecode/value.h"
#include "gpu/device.h"

namespace lm::workloads {

struct Workload {
  std::string name;
  std::string lime_source;
  /// Entry point ("Saxpy.run") invoked with make_args(n, seed).
  std::string entry;
  /// Task id of the data-parallel kernel (for store lookups and the native
  /// registry), e.g. "Saxpy.axpy".
  std::string kernel_id;
  /// Builds the argument list for problem size n.
  std::function<std::vector<bc::Value>(size_t n, uint64_t seed)> make_args;
  /// Reference implementation: same args → expected result.
  std::function<bc::Value(const std::vector<bc::Value>& args)> reference;
  /// Approximate useful arithmetic ops per element (for reporting).
  double flops_per_elem = 1.0;
};

/// The data-parallel (map/reduce) suite used by experiment E5.
const std::vector<Workload>& gpu_suite();

/// Streaming pipeline workloads (task graphs) for E2/E6.
const std::vector<Workload>& pipeline_suite();

/// Installs the pre-compiled native kernels for the whole suite into the
/// process-wide registry (idempotent). Called by benches and examples; unit
/// tests exercise both the native and the kernel-IR paths.
void register_native_kernels();

/// Compares two results within a relative tolerance for floats (device and
/// VM use identical single-precision operations, but reductions may
/// re-associate). Exact for integers/bits.
bool results_match(const bc::Value& a, const bc::Value& b, double rel_tol);

}  // namespace lm::workloads
