// Token definitions for the Lime subset language (§2 of the paper).
#pragma once

#include <cstdint>
#include <string>

#include "util/source_location.h"

namespace lm::lime {

enum class Tok {
  kEof,
  kIdent,
  kIntLit,    // 42, 0x2a
  kLongLit,   // 42L
  kFloatLit,  // 3.5f  (Lime float)
  kDoubleLit, // 3.5
  kBitLit,    // 100b — a Lime bit-array literal (§2.2)

  // Keywords.
  kClass, kEnum, kValue, kLocal, kGlobal, kStatic, kPublic, kPrivate,
  kReturn, kIf, kElse, kFor, kWhile, kBreak, kContinue, kVar, kNew,
  kTask, kThis, kTrue, kFalse, kFinal,
  kInt, kLong, kFloat, kDouble, kBoolean, kBit, kVoid,

  // Punctuation and operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi, kDot, kColon, kQuestion,
  kAssign,        // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kAmpAmp, kPipePipe,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kShl, kShr,
  kAt,            // @  — the Lime map operator
  kConnect,       // => — the Lime task connect operator
  kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign,
  kPlusPlus, kMinusMinus,
};

const char* to_string(Tok t);

struct Token {
  Tok kind = Tok::kEof;
  std::string text;      // identifier spelling or literal spelling
  int64_t int_value = 0; // for kIntLit / kLongLit
  double float_value = 0;// for kFloatLit / kDoubleLit
  SourceLoc loc;

  bool is(Tok t) const { return kind == t; }
};

}  // namespace lm::lime
