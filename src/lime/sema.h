// Semantic analysis for the Lime subset.
//
// Annotates the AST in place: resolves names and types, assigns local
// variable slots, resolves map/reduce/task method references, classifies
// builtin calls (source/sink/start/finish, Math intrinsics), inserts
// explicit widening casts, and enforces the paper's isolation rules (§2.1):
//
//   * value types are recursively immutable,
//   * local methods only call local methods and touch state reachable from
//     their arguments, their own instance, or compile-time constants,
//   * a method is *pure* when it is local, its arguments and result are
//     values, and it is static or an instance method of a value type,
//   * the task operator applies only to local methods with value arguments,
//   * only values may flow between tasks.
#pragma once

#include <string>
#include <vector>

#include "lime/ast.h"
#include "util/diagnostics.h"

namespace lm::lime {

class Sema {
 public:
  Sema(Program& program, DiagnosticEngine& diags);

  /// Runs all analyses. Returns true when no errors were reported.
  bool run();

 private:
  // Phases.
  void register_classes();
  void resolve_signatures();
  void compute_purity();
  void analyze_class(ClassDecl& cls);
  void analyze_method(ClassDecl& cls, MethodDecl& m);

  // Type resolution.
  TypeRef resolve_type(TypeRef t, SourceLoc loc);

  // Statements.
  void check_stmt(Stmt& s);
  void check_block(BlockStmt& b);

  // Expressions. Returns the (annotated) type; Type::void_() for errors to
  // keep downstream checks from cascading.
  TypeRef check_expr(Expr& e);
  TypeRef check_name(NameExpr& e);
  TypeRef check_unary(UnaryExpr& e);
  TypeRef check_binary(BinaryExpr& e);
  TypeRef check_assign(AssignExpr& e);
  TypeRef check_ternary(TernaryExpr& e);
  TypeRef check_call(CallExpr& e);
  TypeRef check_index(IndexExpr& e);
  TypeRef check_field(FieldExpr& e);
  TypeRef check_new_array(NewArrayExpr& e);
  TypeRef check_cast(CastExpr& e);
  TypeRef check_map(MapExpr& e);
  TypeRef check_reduce(ReduceExpr& e);
  TypeRef check_task(TaskExpr& e);
  TypeRef check_relocate(RelocateExpr& e);
  TypeRef check_connect(ConnectExpr& e);

  /// Wraps `e` in a CastExpr when its type widens to `target`; reports an
  /// error when the types are incompatible. After sema, operand types are
  /// exact everywhere, which keeps all backends conversion-free.
  void coerce(ExprPtr& e, const TypeRef& target, const char* context);

  /// Ensures the assignment target is mutable and well-formed.
  void check_assign_target(Expr& target);

  // Scope management.
  struct LocalVar {
    std::string name;
    TypeRef type;
    int slot;
  };
  void push_scope();
  void pop_scope();
  int declare_local(const std::string& name, TypeRef type, SourceLoc loc);
  const LocalVar* lookup_local(const std::string& name) const;

  void error(SourceLoc loc, const std::string& msg);

  Program& program_;
  DiagnosticEngine& diags_;

  ClassDecl* cur_class_ = nullptr;
  MethodDecl* cur_method_ = nullptr;
  std::vector<LocalVar> locals_;
  std::vector<size_t> scope_marks_;
  int next_slot_ = 0;
  int max_slots_ = 0;
  int loop_depth_ = 0;
};

/// True when `m` may be the body of a dataflow filter task: local, value
/// parameters, value (non-void) return (§2.2).
bool is_task_capable(const MethodDecl& m);

}  // namespace lm::lime
