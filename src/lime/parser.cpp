#include "lime/parser.h"

#include "util/error.h"

namespace lm::lime {

namespace {

/// Binary operator precedence for the climbing parser. Higher binds tighter.
/// Connect (=>), assignment and ternary are handled separately above this.
int binop_prec(Tok t) {
  switch (t) {
    case Tok::kPipePipe: return 1;
    case Tok::kAmpAmp: return 2;
    case Tok::kPipe: return 3;
    case Tok::kCaret: return 4;
    case Tok::kAmp: return 5;
    case Tok::kEq: case Tok::kNe: return 6;
    case Tok::kLt: case Tok::kLe: case Tok::kGt: case Tok::kGe: return 7;
    case Tok::kShl: case Tok::kShr: return 8;
    case Tok::kPlus: case Tok::kMinus: return 9;
    case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 10;
    default: return -1;
  }
}

BinOp binop_for(Tok t) {
  switch (t) {
    case Tok::kPipePipe: return BinOp::kLOr;
    case Tok::kAmpAmp: return BinOp::kLAnd;
    case Tok::kPipe: return BinOp::kOr;
    case Tok::kCaret: return BinOp::kXor;
    case Tok::kAmp: return BinOp::kAnd;
    case Tok::kEq: return BinOp::kEq;
    case Tok::kNe: return BinOp::kNe;
    case Tok::kLt: return BinOp::kLt;
    case Tok::kLe: return BinOp::kLe;
    case Tok::kGt: return BinOp::kGt;
    case Tok::kGe: return BinOp::kGe;
    case Tok::kShl: return BinOp::kShl;
    case Tok::kShr: return BinOp::kShr;
    case Tok::kPlus: return BinOp::kAdd;
    case Tok::kMinus: return BinOp::kSub;
    case Tok::kStar: return BinOp::kMul;
    case Tok::kSlash: return BinOp::kDiv;
    case Tok::kPercent: return BinOp::kRem;
    default: LM_UNREACHABLE("not a binary operator token");
  }
}

bool is_primitive_type_tok(Tok t) {
  switch (t) {
    case Tok::kInt: case Tok::kLong: case Tok::kFloat: case Tok::kDouble:
    case Tok::kBoolean: case Tok::kBit: case Tok::kVoid:
      return true;
    default:
      return false;
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : toks_(std::move(tokens)), diags_(diags) {
  LM_CHECK(!toks_.empty() && toks_.back().is(Tok::kEof));
}

const Token& Parser::peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= toks_.size()) i = toks_.size() - 1;  // the EOF token
  return toks_[i];
}

Token Parser::advance() {
  Token t = current();
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok t) {
  if (!check(t)) return false;
  advance();
  return true;
}

Token Parser::expect(Tok t, const char* what) {
  if (check(t)) return advance();
  diags_.error(current().loc, std::string("expected ") + to_string(t) +
                                  " " + what + ", found " +
                                  to_string(current().kind));
  return current();  // do not consume; caller-side recovery decides
}

void Parser::error_here(const std::string& msg) {
  diags_.error(current().loc, msg);
}

void Parser::sync_to_stmt_boundary() {
  while (!check(Tok::kEof) && !check(Tok::kSemi) && !check(Tok::kRBrace)) {
    advance();
  }
  match(Tok::kSemi);
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

Parser::Mods Parser::parse_mods() {
  Mods m;
  for (;;) {
    if (match(Tok::kPublic)) m.is_public = true;
    else if (match(Tok::kPrivate)) m.is_private = true;
    else if (match(Tok::kValue)) m.is_value = true;
    else if (match(Tok::kLocal)) m.is_local = true;
    else if (match(Tok::kGlobal)) m.is_global = true;
    else if (match(Tok::kStatic)) m.is_static = true;
    else if (match(Tok::kFinal)) m.is_final = true;
    else break;
  }
  return m;
}

std::unique_ptr<Program> Parser::parse_program() {
  auto prog = std::make_unique<Program>();
  while (!check(Tok::kEof)) {
    auto cls = parse_class();
    if (cls) {
      prog->classes.push_back(std::move(cls));
    } else {
      // Recovery: skip one token and try again.
      advance();
    }
  }
  return prog;
}

std::unique_ptr<ClassDecl> Parser::parse_class() {
  SourceLoc loc = current().loc;
  Mods mods = parse_mods();
  auto cls = std::make_unique<ClassDecl>();
  cls->loc = loc;
  cls->is_public = mods.is_public;
  cls->is_value = mods.is_value;

  if (match(Tok::kEnum)) {
    cls->is_enum = true;
    // `value enum bit` (Fig. 1): the builtin `bit` may be (re)declared by
    // user code; accept the keyword as the enum name.
    if (check(Tok::kBit)) {
      advance();
      cls->name = "bit";
    } else {
      Token name = expect(Tok::kIdent, "after 'enum'");
      cls->name = name.text;
    }
    expect(Tok::kLBrace, "to open enum body");
    parse_enum_body(*cls);
    expect(Tok::kRBrace, "to close enum body");
    return cls;
  }

  if (!match(Tok::kClass)) {
    error_here("expected 'class' or 'enum'");
    return nullptr;
  }
  Token name = expect(Tok::kIdent, "after 'class'");
  cls->name = name.text;
  expect(Tok::kLBrace, "to open class body");
  while (!check(Tok::kRBrace) && !check(Tok::kEof)) {
    parse_member(*cls);
  }
  expect(Tok::kRBrace, "to close class body");
  return cls;
}

void Parser::parse_enum_body(ClassDecl& cls) {
  // Enumerators: ident (',' ident)* then optional ';' members*.
  int ordinal = 0;
  for (;;) {
    if (check(Tok::kRBrace)) return;  // enum with no members section
    Token c = expect(Tok::kIdent, "enum constant");
    if (!c.is(Tok::kIdent)) { sync_to_stmt_boundary(); return; }
    cls.enum_consts.push_back({c.text, ordinal++, c.loc});
    if (match(Tok::kComma)) continue;
    break;
  }
  if (match(Tok::kSemi)) {
    while (!check(Tok::kRBrace) && !check(Tok::kEof)) {
      parse_member(cls);
    }
  }
}

void Parser::parse_member(ClassDecl& cls) {
  SourceLoc loc = current().loc;
  Mods mods = parse_mods();

  // Constructor: ClassName '(' ... — identifier matching the class name
  // immediately followed by '('.
  if (check(Tok::kIdent) && current().text == cls.name &&
      peek(1).is(Tok::kLParen)) {
    auto m = std::make_unique<MethodDecl>();
    m->loc = loc;
    m->name = cls.name;
    m->is_ctor = true;
    m->is_public = mods.is_public;
    m->is_local = mods.is_local;
    m->return_type = Type::void_();
    advance();  // class name
    expect(Tok::kLParen, "to open constructor parameters");
    m->params = parse_params();
    expect(Tok::kRParen, "to close constructor parameters");
    m->body = parse_block();
    cls.methods.push_back(std::move(m));
    return;
  }

  TypeRef type = parse_type();
  if (!type) {
    sync_to_stmt_boundary();
    return;
  }

  // Operator method: `public bit ~ this { ... }` (Fig. 1 line 3).
  if (check(Tok::kTilde) || check(Tok::kBang) ||
      (check(Tok::kMinus) && peek(1).is(Tok::kThis))) {
    auto m = std::make_unique<MethodDecl>();
    m->loc = loc;
    m->return_type = type;
    m->is_public = mods.is_public;
    m->is_local = mods.is_local;
    m->is_static = mods.is_static;
    m->is_unary_op = true;
    Tok opTok = advance().kind;
    m->op = opTok == Tok::kTilde ? UnOp::kBitNot
            : opTok == Tok::kBang ? UnOp::kNot
                                  : UnOp::kNeg;
    m->name = std::string("operator") + to_string(m->op);
    expect(Tok::kThis, "operator methods are written '<type> ~ this'");
    m->body = parse_block();
    cls.methods.push_back(std::move(m));
    return;
  }

  Token name = expect(Tok::kIdent, "member name");
  if (!name.is(Tok::kIdent)) {
    sync_to_stmt_boundary();
    return;
  }

  if (match(Tok::kLParen)) {
    auto m = std::make_unique<MethodDecl>();
    m->loc = loc;
    m->name = name.text;
    m->return_type = type;
    m->is_public = mods.is_public;
    m->is_static = mods.is_static;
    m->is_local = mods.is_local;
    m->params = parse_params();
    expect(Tok::kRParen, "to close parameter list");
    m->body = parse_block();
    cls.methods.push_back(std::move(m));
    return;
  }

  auto f = std::make_unique<FieldDecl>();
  f->loc = loc;
  f->type = type;
  f->name = name.text;
  f->is_static = mods.is_static;
  f->is_final = mods.is_final;
  if (match(Tok::kAssign)) f->init = parse_expr();
  expect(Tok::kSemi, "after field declaration");
  cls.fields.push_back(std::move(f));
}

std::vector<Param> Parser::parse_params() {
  std::vector<Param> params;
  if (check(Tok::kRParen)) return params;
  for (;;) {
    Param p;
    p.loc = current().loc;
    p.type = parse_type();
    Token n = expect(Tok::kIdent, "parameter name");
    p.name = n.text;
    params.push_back(std::move(p));
    if (!match(Tok::kComma)) break;
  }
  return params;
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

bool Parser::looks_like_type_start() const {
  return is_primitive_type_tok(current().kind) || check(Tok::kIdent);
}

TypeRef Parser::parse_base_type() {
  switch (current().kind) {
    case Tok::kInt: advance(); return Type::int_();
    case Tok::kLong: advance(); return Type::long_();
    case Tok::kFloat: advance(); return Type::float_();
    case Tok::kDouble: advance(); return Type::double_();
    case Tok::kBoolean: advance(); return Type::boolean();
    case Tok::kBit: advance(); return Type::bit();
    case Tok::kVoid: advance(); return Type::void_();
    case Tok::kIdent: {
      Token t = advance();
      return Type::class_(t.text);
    }
    default:
      error_here("expected a type");
      return nullptr;
  }
}

TypeRef Parser::parse_type() {
  TypeRef t = parse_base_type();
  if (!t) return nullptr;
  // Array suffixes: [] (mutable) and [[]] (value array, §2.2).
  for (;;) {
    if (check(Tok::kLBracket) && peek(1).is(Tok::kLBracket) &&
        peek(2).is(Tok::kRBracket) && peek(3).is(Tok::kRBracket)) {
      advance(); advance(); advance(); advance();
      t = Type::value_array(t);
    } else if (check(Tok::kLBracket) && peek(1).is(Tok::kRBracket)) {
      advance(); advance();
      t = Type::array(t);
    } else {
      break;
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

bool Parser::looks_like_var_decl() const {
  if (check(Tok::kVar)) return true;
  size_t i = 0;
  // Optional base type: primitive or identifier.
  if (is_primitive_type_tok(peek(i).kind)) {
    ++i;
  } else if (peek(i).is(Tok::kIdent)) {
    ++i;
  } else {
    return false;
  }
  // Array suffixes.
  for (;;) {
    if (peek(i).is(Tok::kLBracket) && peek(i + 1).is(Tok::kLBracket) &&
        peek(i + 2).is(Tok::kRBracket) && peek(i + 3).is(Tok::kRBracket)) {
      i += 4;
    } else if (peek(i).is(Tok::kLBracket) && peek(i + 1).is(Tok::kRBracket)) {
      i += 2;
    } else {
      break;
    }
  }
  // A declaration has an identifier next, then '=' or ';'.
  if (!peek(i).is(Tok::kIdent)) return false;
  return peek(i + 1).is(Tok::kAssign) || peek(i + 1).is(Tok::kSemi);
}

StmtPtr Parser::parse_stmt() {
  switch (current().kind) {
    case Tok::kLBrace: return parse_block();
    case Tok::kIf: return parse_if();
    case Tok::kWhile: return parse_while();
    case Tok::kFor: return parse_for();
    case Tok::kReturn: return parse_return();
    case Tok::kBreak: {
      auto s = std::make_unique<BreakStmt>();
      s->loc = advance().loc;
      expect(Tok::kSemi, "after 'break'");
      return s;
    }
    case Tok::kContinue: {
      auto s = std::make_unique<ContinueStmt>();
      s->loc = advance().loc;
      expect(Tok::kSemi, "after 'continue'");
      return s;
    }
    default:
      break;
  }
  if (looks_like_var_decl()) return parse_var_decl();

  auto s = std::make_unique<ExprStmt>();
  s->loc = current().loc;
  s->expr = parse_expr();
  expect(Tok::kSemi, "after expression statement");
  if (!s->expr) sync_to_stmt_boundary();
  return s;
}

std::unique_ptr<BlockStmt> Parser::parse_block() {
  auto b = std::make_unique<BlockStmt>();
  b->loc = current().loc;
  expect(Tok::kLBrace, "to open block");
  while (!check(Tok::kRBrace) && !check(Tok::kEof)) {
    size_t before = pos_;
    b->stmts.push_back(parse_stmt());
    if (pos_ == before) {
      // No progress (cascading error); skip a token to avoid livelock.
      advance();
    }
  }
  expect(Tok::kRBrace, "to close block");
  return b;
}

StmtPtr Parser::parse_var_decl() {
  auto s = std::make_unique<VarDeclStmt>();
  s->loc = current().loc;
  if (match(Tok::kVar)) {
    s->declared_type = nullptr;  // inferred
  } else {
    s->declared_type = parse_type();
  }
  Token n = expect(Tok::kIdent, "variable name");
  s->name = n.text;
  if (match(Tok::kAssign)) {
    s->init = parse_expr();
  } else if (!s->declared_type) {
    error_here("'var' declaration requires an initializer");
  }
  expect(Tok::kSemi, "after variable declaration");
  return s;
}

StmtPtr Parser::parse_if() {
  auto s = std::make_unique<IfStmt>();
  s->loc = advance().loc;  // 'if'
  expect(Tok::kLParen, "after 'if'");
  s->cond = parse_expr();
  expect(Tok::kRParen, "after if condition");
  s->then_stmt = parse_stmt();
  if (match(Tok::kElse)) s->else_stmt = parse_stmt();
  return s;
}

StmtPtr Parser::parse_while() {
  auto s = std::make_unique<WhileStmt>();
  s->loc = advance().loc;  // 'while'
  expect(Tok::kLParen, "after 'while'");
  s->cond = parse_expr();
  expect(Tok::kRParen, "after while condition");
  s->body = parse_stmt();
  return s;
}

StmtPtr Parser::parse_for() {
  auto s = std::make_unique<ForStmt>();
  s->loc = advance().loc;  // 'for'
  expect(Tok::kLParen, "after 'for'");
  if (!match(Tok::kSemi)) {
    if (looks_like_var_decl()) {
      s->init = parse_var_decl();  // consumes the ';'
    } else {
      auto e = std::make_unique<ExprStmt>();
      e->loc = current().loc;
      e->expr = parse_expr();
      s->init = std::move(e);
      expect(Tok::kSemi, "after for-init");
    }
  }
  if (!check(Tok::kSemi)) s->cond = parse_expr();
  expect(Tok::kSemi, "after for-condition");
  if (!check(Tok::kRParen)) s->update = parse_expr();
  expect(Tok::kRParen, "to close for header");
  s->body = parse_stmt();
  return s;
}

StmtPtr Parser::parse_return() {
  auto s = std::make_unique<ReturnStmt>();
  s->loc = advance().loc;  // 'return'
  if (!check(Tok::kSemi)) s->value = parse_expr();
  expect(Tok::kSemi, "after return");
  return s;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expression() { return parse_expr(); }

ExprPtr Parser::parse_expr() {
  ExprPtr e = parse_assign();
  // Connect chains are left-associative: a => b => c.
  while (check(Tok::kConnect)) {
    auto c = std::make_unique<ConnectExpr>();
    c->loc = advance().loc;
    c->lhs = std::move(e);
    c->rhs = parse_assign();
    e = std::move(c);
  }
  return e;
}

ExprPtr Parser::parse_assign() {
  ExprPtr lhs = parse_ternary();
  Tok t = current().kind;
  if (t == Tok::kAssign || t == Tok::kPlusAssign || t == Tok::kMinusAssign ||
      t == Tok::kStarAssign || t == Tok::kSlashAssign) {
    auto a = std::make_unique<AssignExpr>();
    a->loc = advance().loc;
    a->target = std::move(lhs);
    a->value = parse_assign();  // right-associative
    if (t != Tok::kAssign) {
      a->compound = true;
      a->op = t == Tok::kPlusAssign   ? BinOp::kAdd
              : t == Tok::kMinusAssign ? BinOp::kSub
              : t == Tok::kStarAssign  ? BinOp::kMul
                                       : BinOp::kDiv;
    }
    return a;
  }
  return lhs;
}

ExprPtr Parser::parse_ternary() {
  ExprPtr cond = parse_binary(1);
  if (!match(Tok::kQuestion)) return cond;
  auto t = std::make_unique<TernaryExpr>();
  t->loc = cond ? cond->loc : current().loc;
  t->cond = std::move(cond);
  t->then_expr = parse_expr();
  expect(Tok::kColon, "in ternary expression");
  t->else_expr = parse_ternary();
  return t;
}

ExprPtr Parser::parse_binary(int min_prec) {
  ExprPtr lhs = parse_unary();
  for (;;) {
    // The Lime map/reduce operators: `Class @ method(args)` and
    // `Class ! method(args)` (§2.2). Both are recognized only when the
    // operator is followed by `ident (`, so logical-not and != stay intact.
    if (check(Tok::kAt) && peek(1).is(Tok::kIdent) && peek(2).is(Tok::kLParen)) {
      auto m = std::make_unique<MapExpr>();
      m->loc = advance().loc;  // '@'
      if (lhs && lhs->kind == ExprKind::kName) {
        m->class_name = as<NameExpr>(*lhs).name;
      } else {
        diags_.error(m->loc, "left operand of '@' must be a class name");
      }
      m->method = advance().text;
      expect(Tok::kLParen, "after map method name");
      m->args = parse_args();
      expect(Tok::kRParen, "to close map arguments");
      lhs = std::move(m);
      continue;
    }
    if (check(Tok::kBang) && peek(1).is(Tok::kIdent) &&
        peek(2).is(Tok::kLParen)) {
      auto r = std::make_unique<ReduceExpr>();
      r->loc = advance().loc;  // '!'
      if (lhs && lhs->kind == ExprKind::kName) {
        r->class_name = as<NameExpr>(*lhs).name;
      } else {
        diags_.error(r->loc, "left operand of '!' must be a class name");
      }
      r->method = advance().text;
      expect(Tok::kLParen, "after reduce method name");
      r->args = parse_args();
      expect(Tok::kRParen, "to close reduce arguments");
      lhs = std::move(r);
      continue;
    }

    int prec = binop_prec(current().kind);
    if (prec < min_prec) return lhs;
    Tok op_tok = advance().kind;
    ExprPtr rhs = parse_binary(prec + 1);
    auto b = std::make_unique<BinaryExpr>();
    b->loc = lhs ? lhs->loc : current().loc;
    b->op = binop_for(op_tok);
    b->lhs = std::move(lhs);
    b->rhs = std::move(rhs);
    lhs = std::move(b);
  }
}

ExprPtr Parser::parse_unary() {
  if (check(Tok::kMinus) || check(Tok::kBang) || check(Tok::kTilde)) {
    auto u = std::make_unique<UnaryExpr>();
    Tok t = current().kind;
    u->loc = advance().loc;
    u->op = t == Tok::kMinus ? UnOp::kNeg
            : t == Tok::kBang ? UnOp::kNot
                              : UnOp::kBitNot;
    u->operand = parse_unary();
    return u;
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  for (;;) {
    if (match(Tok::kDot)) {
      // Optional explicit type argument: `.<bit>sink()` (Fig. 1 line 19).
      TypeRef type_arg;
      if (check(Tok::kLt)) {
        advance();
        type_arg = parse_type();
        expect(Tok::kGt, "to close type argument");
      }
      Token name = expect(Tok::kIdent, "member name after '.'");
      if (check(Tok::kLParen)) {
        advance();
        auto c = std::make_unique<CallExpr>();
        c->loc = name.loc;
        c->receiver = std::move(e);
        c->method = name.text;
        c->type_arg = type_arg;
        c->args = parse_args();
        expect(Tok::kRParen, "to close call arguments");
        e = std::move(c);
      } else {
        auto f = std::make_unique<FieldExpr>();
        f->loc = name.loc;
        f->object = std::move(e);
        f->name = name.text;
        e = std::move(f);
      }
    } else if (check(Tok::kLBracket)) {
      advance();
      auto ix = std::make_unique<IndexExpr>();
      ix->loc = current().loc;
      ix->array = std::move(e);
      ix->index = parse_expr();
      expect(Tok::kRBracket, "to close array index");
      e = std::move(ix);
    } else {
      return e;
    }
  }
}

std::vector<ExprPtr> Parser::parse_args() {
  std::vector<ExprPtr> args;
  if (check(Tok::kRParen)) return args;
  for (;;) {
    args.push_back(parse_expr());
    if (!match(Tok::kComma)) break;
  }
  return args;
}

ExprPtr Parser::parse_new() {
  SourceLoc loc = advance().loc;  // 'new'
  TypeRef base = parse_base_type();
  if (!base) return nullptr;

  auto n = std::make_unique<NewArrayExpr>();
  n->loc = loc;

  // `new T[[]](arr)` — freeze a mutable array into a value array
  // (Fig. 1 line 21: `new bit[[]](result)`).
  if (check(Tok::kLBracket) && peek(1).is(Tok::kLBracket) &&
      peek(2).is(Tok::kRBracket) && peek(3).is(Tok::kRBracket)) {
    advance(); advance(); advance(); advance();
    n->elem_type = base;
    n->is_value_array = true;
    expect(Tok::kLParen, "after value-array type in 'new'");
    n->from_array = parse_expr();
    expect(Tok::kRParen, "to close 'new' argument");
    return n;
  }

  // `new T[len]`.
  expect(Tok::kLBracket, "after type in 'new'");
  n->elem_type = base;
  n->length = parse_expr();
  expect(Tok::kRBracket, "to close array length");
  return n;
}

ExprPtr Parser::parse_task() {
  auto t = std::make_unique<TaskExpr>();
  t->loc = advance().loc;  // 'task'
  Token first = expect(Tok::kIdent, "method name after 'task'");
  if (match(Tok::kDot)) {
    Token second = expect(Tok::kIdent, "method name after '.'");
    t->class_name = first.text;
    t->method = second.text;
  } else {
    t->method = first.text;
  }
  return t;
}

ExprPtr Parser::parse_primary() {
  switch (current().kind) {
    case Tok::kIntLit: case Tok::kLongLit: {
      auto e = std::make_unique<IntLitExpr>();
      Token t = advance();
      e->loc = t.loc;
      e->value = t.int_value;
      e->is_long = t.kind == Tok::kLongLit;
      return e;
    }
    case Tok::kFloatLit: case Tok::kDoubleLit: {
      auto e = std::make_unique<FloatLitExpr>();
      Token t = advance();
      e->loc = t.loc;
      e->value = t.float_value;
      e->is_double = t.kind == Tok::kDoubleLit;
      return e;
    }
    case Tok::kBitLit: {
      auto e = std::make_unique<BitLitExpr>();
      Token t = advance();
      e->loc = t.loc;
      e->bits = BitVec::from_literal(t.text);
      return e;
    }
    case Tok::kTrue: case Tok::kFalse: {
      auto e = std::make_unique<BoolLitExpr>();
      Token t = advance();
      e->loc = t.loc;
      e->value = t.is(Tok::kTrue);
      return e;
    }
    case Tok::kThis: {
      auto e = std::make_unique<ThisExpr>();
      e->loc = advance().loc;
      return e;
    }
    case Tok::kNew:
      return parse_new();
    case Tok::kTask:
      return parse_task();
    case Tok::kLBracket: {
      // Relocation brackets around a task expression (§2.3).
      auto r = std::make_unique<RelocateExpr>();
      r->loc = advance().loc;
      r->inner = parse_expr();
      expect(Tok::kRBracket, "to close relocation brackets");
      return r;
    }
    case Tok::kLParen: {
      // Either a cast `(int) x` or a parenthesized expression.
      if (is_primitive_type_tok(peek(1).kind) && peek(2).is(Tok::kRParen)) {
        SourceLoc loc = advance().loc;  // '('
        auto c = std::make_unique<CastExpr>();
        c->loc = loc;
        c->target = parse_base_type();
        expect(Tok::kRParen, "to close cast");
        c->operand = parse_unary();
        return c;
      }
      advance();
      ExprPtr e = parse_expr();
      expect(Tok::kRParen, "to close parenthesized expression");
      return e;
    }
    case Tok::kIdent: {
      // Qualified static call `C.f(...)` is handled by postfix; here an
      // identifier may also be an unqualified call `f(...)`.
      Token t = advance();
      if (check(Tok::kLParen)) {
        advance();
        auto c = std::make_unique<CallExpr>();
        c->loc = t.loc;
        c->method = t.text;
        c->args = parse_args();
        expect(Tok::kRParen, "to close call arguments");
        return c;
      }
      auto e = std::make_unique<NameExpr>();
      e->loc = t.loc;
      e->name = t.text;
      return e;
    }
    // A primitive type in expression position: e.g. `bit.zero`.
    case Tok::kBit: case Tok::kInt: case Tok::kLong: case Tok::kFloat:
    case Tok::kDouble: case Tok::kBoolean: {
      Token t = advance();
      auto e = std::make_unique<NameExpr>();
      e->loc = t.loc;
      e->name = to_string(t.kind);
      // Strip the quotes from the token name ('bit' → bit).
      if (e->name.size() >= 2 && e->name.front() == '\'') {
        e->name = e->name.substr(1, e->name.size() - 2);
      }
      return e;
    }
    default:
      error_here(std::string("expected an expression, found ") +
                 to_string(current().kind));
      return nullptr;
  }
}

}  // namespace lm::lime
