// Hand-written lexer for the Lime subset.
#pragma once

#include <string>
#include <vector>

#include "lime/token.h"
#include "util/diagnostics.h"

namespace lm::lime {

class Lexer {
 public:
  Lexer(std::string source, DiagnosticEngine& diags);

  /// Tokenizes the whole buffer. The result always ends with a kEof token.
  std::vector<Token> lex();

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(size_t ahead = 0) const;
  char advance();
  bool match(char c);
  SourceLoc here() const;

  void skip_ws_and_comments();
  Token next_token();
  Token ident_or_keyword();
  Token number();
  Token make(Tok kind, SourceLoc loc, std::string text = {});

  std::string src_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t col_ = 1;
};

}  // namespace lm::lime
