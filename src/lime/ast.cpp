#include "lime/ast.h"

namespace lm::lime {

const char* to_string(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "-";
    case UnOp::kNot: return "!";
    case UnOp::kBitNot: return "~";
    case UnOp::kUserOp: return "<user-op>";
  }
  return "?";
}

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kRem: return "%";
    case BinOp::kAnd: return "&";
    case BinOp::kOr: return "|";
    case BinOp::kXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kLAnd: return "&&";
    case BinOp::kLOr: return "||";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
  }
  return "?";
}

bool is_comparison(BinOp op) {
  switch (op) {
    case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
    case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

std::string MethodDecl::qualified_name() const {
  return (owner ? owner->name : std::string("<anon>")) + "." + name;
}

const MethodDecl* ClassDecl::find_method(const std::string& n) const {
  for (const auto& m : methods) {
    if (m->name == n && !m->is_unary_op) return m.get();
  }
  return nullptr;
}

const FieldDecl* ClassDecl::find_field(const std::string& n) const {
  for (const auto& f : fields) {
    if (f->name == n) return f.get();
  }
  return nullptr;
}

const EnumConst* ClassDecl::find_enum_const(const std::string& n) const {
  for (const auto& c : enum_consts) {
    if (c.name == n) return &c;
  }
  return nullptr;
}

const MethodDecl* ClassDecl::find_unary_op(UnOp op) const {
  for (const auto& m : methods) {
    if (m->is_unary_op && m->op == op) return m.get();
  }
  return nullptr;
}

const ClassDecl* Program::find_class(const std::string& n) const {
  for (const auto& c : classes) {
    if (c->name == n) return c.get();
  }
  return nullptr;
}

}  // namespace lm::lime
