#include "lime/sema.h"

#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace lm::lime {

namespace {

bool is_builtin_bit_class(const ClassDecl& cls) { return cls.name == "bit"; }

/// Math intrinsic lookup: name → (builtin, arity).
struct MathIntrinsic {
  CallExpr::Builtin builtin;
  int arity;
};
const std::unordered_map<std::string, MathIntrinsic>& math_intrinsics() {
  static const auto* kMap = new std::unordered_map<std::string, MathIntrinsic>{
      {"sqrt", {CallExpr::Builtin::kSqrt, 1}},
      {"exp", {CallExpr::Builtin::kExp, 1}},
      {"log", {CallExpr::Builtin::kLog, 1}},
      {"sin", {CallExpr::Builtin::kSin, 1}},
      {"cos", {CallExpr::Builtin::kCos, 1}},
      {"pow", {CallExpr::Builtin::kPow, 2}},
      {"abs", {CallExpr::Builtin::kAbs, 1}},
      {"min", {CallExpr::Builtin::kMin, 2}},
      {"max", {CallExpr::Builtin::kMax, 2}},
      {"floor", {CallExpr::Builtin::kFloor, 1}},
  };
  return *kMap;
}

}  // namespace

bool is_task_capable(const MethodDecl& m) {
  if (!m.is_local && !(m.owner && m.owner->is_value)) return false;
  if (!m.return_type || !m.return_type->is_value()) return false;
  for (const auto& p : m.params) {
    if (!p.type || !p.type->is_value()) return false;
  }
  return true;
}

Sema::Sema(Program& program, DiagnosticEngine& diags)
    : program_(program), diags_(diags) {}

void Sema::error(SourceLoc loc, const std::string& msg) {
  diags_.error(loc, msg);
}

bool Sema::run() {
  register_classes();
  resolve_signatures();
  compute_purity();
  for (auto& cls : program_.classes) {
    if (is_builtin_bit_class(*cls)) continue;  // builtin, not re-analyzed
    analyze_class(*cls);
  }
  return !diags_.has_errors();
}

// ---------------------------------------------------------------------------
// Phase 1: class registration and signature resolution
// ---------------------------------------------------------------------------

void Sema::register_classes() {
  std::unordered_set<std::string> seen;
  for (auto& cls : program_.classes) {
    if (!seen.insert(cls->name).second) {
      error(cls->loc, "duplicate class '" + cls->name + "'");
    }
    if (cls->name == "Math") {
      error(cls->loc, "'Math' is a builtin class and cannot be redeclared");
    }
    if (is_builtin_bit_class(*cls)) {
      // The user restated the builtin `bit` enum (Fig. 1). Validate shape.
      if (!cls->is_enum || !cls->is_value || cls->enum_consts.size() != 2 ||
          cls->enum_consts[0].name != "zero" ||
          cls->enum_consts[1].name != "one") {
        error(cls->loc,
              "declaration of 'bit' must match the builtin value enum "
              "{ zero, one }");
      }
    }
    if (cls->is_enum && !cls->is_value) {
      // Java enums are mutable; only value enums are supported in the
      // subset because only they can cross task boundaries.
      error(cls->loc, "enum '" + cls->name + "' must be declared 'value'");
    }
    // Methods of value classes are local by default (§2.1).
    if (cls->is_value) {
      for (auto& m : cls->methods) m->is_local = true;
    }
    for (auto& m : cls->methods) m->owner = cls.get();
    int index = 0;
    for (auto& f : cls->fields) {
      f->owner = cls.get();
      f->index = index++;
    }
  }
}

TypeRef Sema::resolve_type(TypeRef t, SourceLoc loc) {
  if (!t) return Type::void_();
  switch (t->kind) {
    case TypeKind::kArray:
      return Type::array(resolve_type(t->elem, loc));
    case TypeKind::kValueArray: {
      TypeRef elem = resolve_type(t->elem, loc);
      if (!elem->is_value()) {
        error(loc, "value array element type '" + elem->to_string() +
                       "' is not a value type");
      }
      return Type::value_array(elem);
    }
    case TypeKind::kClass: {
      if (t->decl) return t;
      const ClassDecl* decl = program_.find_class(t->class_name);
      if (!decl) {
        error(loc, "unknown type '" + t->class_name + "'");
        return Type::void_();
      }
      if (is_builtin_bit_class(*decl)) return Type::bit();
      return Type::class_(t->class_name, decl);
    }
    default:
      return t;
  }
}

void Sema::resolve_signatures() {
  for (auto& cls : program_.classes) {
    for (auto& f : cls->fields) {
      f->type = resolve_type(f->type, f->loc);
      if (cls->is_value) {
        if (!f->type->is_value()) {
          error(f->loc, "field '" + f->name + "' of value class '" +
                            cls->name + "' must have a value type");
        }
      }
    }
    for (auto& m : cls->methods) {
      m->return_type = resolve_type(m->return_type, m->loc);
      for (auto& p : m->params) p.type = resolve_type(p.type, p.loc);
    }
  }
}

void Sema::compute_purity() {
  // §2.1: "a local method whose arguments are values is pure if it is
  // either a static method or an instance method of a value type."
  for (auto& cls : program_.classes) {
    for (auto& m : cls->methods) {
      if (m->is_ctor) continue;
      bool args_values = true;
      for (const auto& p : m->params) {
        if (!p.type->is_value()) args_values = false;
      }
      bool position_ok = m->is_static || cls->is_value;
      m->is_pure = m->is_local && args_values && position_ok &&
                   m->return_type->is_value();
    }
  }
}

// ---------------------------------------------------------------------------
// Phase 2: per-class and per-method analysis
// ---------------------------------------------------------------------------

void Sema::analyze_class(ClassDecl& cls) {
  cur_class_ = &cls;
  std::unordered_set<std::string> member_names;
  for (auto& f : cls.fields) {
    if (!member_names.insert(f->name).second) {
      error(f->loc, "duplicate member '" + f->name + "'");
    }
    if (f->is_static && !f->is_final) {
      // Mutable statics are global state; they would defeat isolation of
      // local methods, and the subset has no synchronization story for
      // them, so they are rejected outright.
      error(f->loc, "static field '" + f->name + "' must be final");
    }
    if (f->init) {
      cur_method_ = nullptr;
      TypeRef t = check_expr(*f->init);
      coerce(f->init, f->type, "field initializer");
      (void)t;
    } else if (f->is_static && f->is_final) {
      error(f->loc, "static final field '" + f->name +
                        "' requires an initializer");
    }
  }
  for (auto& m : cls.methods) {
    if (!m->is_unary_op && !member_names.insert(m->name).second &&
        !m->is_ctor) {
      error(m->loc, "duplicate member '" + m->name + "'");
    }
    analyze_method(cls, *m);
  }
  cur_class_ = nullptr;
}

void Sema::analyze_method(ClassDecl& cls, MethodDecl& m) {
  cur_method_ = &m;
  locals_.clear();
  scope_marks_.clear();
  next_slot_ = 0;
  max_slots_ = 0;
  loop_depth_ = 0;

  push_scope();
  if (!m.is_static) {
    // Slot 0 is `this` for instance methods (including operator methods).
    declare_local("this", Type::class_(cls.name, &cls), m.loc);
  }
  for (auto& p : m.params) {
    p.slot = declare_local(p.name, p.type, p.loc);
  }

  if (m.body) check_block(*m.body);
  pop_scope();

  m.num_slots = max_slots_;
  cur_method_ = nullptr;
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

void Sema::push_scope() { scope_marks_.push_back(locals_.size()); }

void Sema::pop_scope() {
  LM_CHECK(!scope_marks_.empty());
  size_t mark = scope_marks_.back();
  scope_marks_.pop_back();
  next_slot_ -= static_cast<int>(locals_.size() - mark);
  locals_.resize(mark);
}

int Sema::declare_local(const std::string& name, TypeRef type,
                        SourceLoc loc) {
  for (size_t i = scope_marks_.empty() ? 0 : scope_marks_.back();
       i < locals_.size(); ++i) {
    if (locals_[i].name == name) {
      error(loc, "redeclaration of '" + name + "'");
      return locals_[i].slot;
    }
  }
  int slot = next_slot_++;
  if (next_slot_ > max_slots_) max_slots_ = next_slot_;
  locals_.push_back({name, std::move(type), slot});
  return slot;
}

const Sema::LocalVar* Sema::lookup_local(const std::string& name) const {
  for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Sema::check_block(BlockStmt& b) {
  push_scope();
  for (auto& s : b.stmts) {
    if (s) check_stmt(*s);
  }
  pop_scope();
}

void Sema::check_stmt(Stmt& s) {
  switch (s.kind) {
    case StmtKind::kBlock:
      check_block(as<BlockStmt>(s));
      return;
    case StmtKind::kExpr: {
      auto& es = as<ExprStmt>(s);
      if (es.expr) check_expr(*es.expr);
      return;
    }
    case StmtKind::kVarDecl: {
      auto& vd = as<VarDeclStmt>(s);
      TypeRef declared =
          vd.declared_type ? resolve_type(vd.declared_type, vd.loc) : nullptr;
      if (vd.init) {
        TypeRef init_t = check_expr(*vd.init);
        if (declared) {
          coerce(vd.init, declared, "variable initializer");
        } else {
          if (init_t->kind == TypeKind::kVoid) {
            error(vd.loc, "cannot infer type for '" + vd.name +
                              "' from a void expression");
            init_t = Type::int_();
          }
          declared = init_t;
        }
      }
      if (!declared) declared = Type::int_();
      vd.declared_type = declared;
      vd.slot = declare_local(vd.name, declared, vd.loc);
      return;
    }
    case StmtKind::kIf: {
      auto& is = as<IfStmt>(s);
      check_expr(*is.cond);
      coerce(is.cond, Type::boolean(), "if condition");
      check_stmt(*is.then_stmt);
      if (is.else_stmt) check_stmt(*is.else_stmt);
      return;
    }
    case StmtKind::kWhile: {
      auto& ws = as<WhileStmt>(s);
      check_expr(*ws.cond);
      coerce(ws.cond, Type::boolean(), "while condition");
      ++loop_depth_;
      check_stmt(*ws.body);
      --loop_depth_;
      return;
    }
    case StmtKind::kFor: {
      auto& fs = as<ForStmt>(s);
      push_scope();
      if (fs.init) check_stmt(*fs.init);
      if (fs.cond) {
        check_expr(*fs.cond);
        coerce(fs.cond, Type::boolean(), "for condition");
      }
      if (fs.update) check_expr(*fs.update);
      ++loop_depth_;
      check_stmt(*fs.body);
      --loop_depth_;
      pop_scope();
      return;
    }
    case StmtKind::kReturn: {
      auto& rs = as<ReturnStmt>(s);
      LM_CHECK(cur_method_ != nullptr);
      TypeRef want = cur_method_->return_type;
      if (rs.value) {
        check_expr(*rs.value);
        if (want->kind == TypeKind::kVoid) {
          error(rs.loc, "void method cannot return a value");
        } else {
          coerce(rs.value, want, "return value");
        }
      } else if (want->kind != TypeKind::kVoid) {
        error(rs.loc, "non-void method must return a value");
      }
      return;
    }
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      if (loop_depth_ == 0) {
        error(s.loc, s.kind == StmtKind::kBreak
                         ? "'break' outside of a loop"
                         : "'continue' outside of a loop");
      }
      return;
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

TypeRef Sema::check_expr(Expr& e) {
  TypeRef t;
  switch (e.kind) {
    case ExprKind::kIntLit:
      t = as<IntLitExpr>(e).is_long ? Type::long_() : Type::int_();
      break;
    case ExprKind::kFloatLit:
      t = as<FloatLitExpr>(e).is_double ? Type::double_() : Type::float_();
      break;
    case ExprKind::kBoolLit:
      t = Type::boolean();
      break;
    case ExprKind::kBitLit:
      t = Type::value_array(Type::bit());
      break;
    case ExprKind::kName:
      t = check_name(as<NameExpr>(e));
      break;
    case ExprKind::kThis: {
      if (!cur_method_ || cur_method_->is_static || !cur_class_) {
        error(e.loc, "'this' used in a static context");
        t = Type::void_();
      } else {
        t = Type::class_(cur_class_->name, cur_class_);
      }
      break;
    }
    case ExprKind::kUnary:
      t = check_unary(as<UnaryExpr>(e));
      break;
    case ExprKind::kBinary:
      t = check_binary(as<BinaryExpr>(e));
      break;
    case ExprKind::kAssign:
      t = check_assign(as<AssignExpr>(e));
      break;
    case ExprKind::kTernary:
      t = check_ternary(as<TernaryExpr>(e));
      break;
    case ExprKind::kCall:
      t = check_call(as<CallExpr>(e));
      break;
    case ExprKind::kIndex:
      t = check_index(as<IndexExpr>(e));
      break;
    case ExprKind::kField:
      t = check_field(as<FieldExpr>(e));
      break;
    case ExprKind::kNewArray:
      t = check_new_array(as<NewArrayExpr>(e));
      break;
    case ExprKind::kCast:
      t = check_cast(as<CastExpr>(e));
      break;
    case ExprKind::kMap:
      t = check_map(as<MapExpr>(e));
      break;
    case ExprKind::kReduce:
      t = check_reduce(as<ReduceExpr>(e));
      break;
    case ExprKind::kTask:
      t = check_task(as<TaskExpr>(e));
      break;
    case ExprKind::kRelocate:
      t = check_relocate(as<RelocateExpr>(e));
      break;
    case ExprKind::kConnect:
      t = check_connect(as<ConnectExpr>(e));
      break;
  }
  if (!t) t = Type::void_();
  e.type = t;
  return t;
}

TypeRef Sema::check_name(NameExpr& e) {
  if (const LocalVar* lv = lookup_local(e.name)) {
    e.ref = NameRefKind::kLocal;
    e.slot = lv->slot;
    return lv->type;
  }
  // Enum constant of the enclosing enum (e.g. `zero` inside `bit`).
  if (cur_class_ && cur_class_->is_enum) {
    if (const EnumConst* c = cur_class_->find_enum_const(e.name)) {
      e.ref = NameRefKind::kEnumConst;
      e.class_ref = cur_class_;
      e.enum_ordinal = c->ordinal;
      return Type::class_(cur_class_->name, cur_class_);
    }
  }
  // Field of the enclosing class.
  if (cur_class_) {
    if (const FieldDecl* f = cur_class_->find_field(e.name)) {
      if (cur_method_ && cur_method_->is_static && !f->is_static) {
        error(e.loc, "instance field '" + e.name +
                         "' referenced from a static method");
      }
      if (cur_method_ && cur_method_->is_local && f->is_static &&
          !f->is_final) {
        error(e.loc, "local method may not read mutable static field '" +
                         e.name + "'");
      }
      e.ref = NameRefKind::kField;
      e.field = f;
      return f->type;
    }
  }
  // Class reference ("bit", "Math" or a user class) — usable as the
  // receiver of a static call, map/reduce, or a qualified enum constant.
  if (e.name == "bit" || e.name == "Math" || program_.find_class(e.name)) {
    e.ref = NameRefKind::kClassRef;
    e.class_ref = program_.find_class(e.name);
    return Type::void_();  // class refs have no value type of their own
  }
  error(e.loc, "unknown name '" + e.name + "'");
  return Type::void_();
}

TypeRef Sema::check_unary(UnaryExpr& e) {
  TypeRef t = check_expr(*e.operand);
  switch (e.op) {
    case UnOp::kNeg:
      if (!t->is_numeric()) {
        error(e.loc, "operand of '-' must be numeric, got " + t->to_string());
        return Type::void_();
      }
      return t;
    case UnOp::kNot:
      coerce(e.operand, Type::boolean(), "operand of '!'");
      return Type::boolean();
    case UnOp::kBitNot: {
      if (t->kind == TypeKind::kBit) return t;  // builtin bit flip (Fig. 1)
      if (t->kind == TypeKind::kInt || t->kind == TypeKind::kLong) return t;
      // User-defined operator method on a value class, e.g. `~this`.
      if (t->kind == TypeKind::kClass && t->decl) {
        if (const MethodDecl* m = t->decl->find_unary_op(UnOp::kBitNot)) {
          e.op = UnOp::kUserOp;
          e.user_method = m;
          return m->return_type;
        }
      }
      error(e.loc, "operand of '~' must be bit, int, long, or a value class "
                   "with an operator method; got " + t->to_string());
      return Type::void_();
    }
    case UnOp::kUserOp:
      LM_UNREACHABLE("parser never produces kUserOp");
  }
  return Type::void_();
}

TypeRef Sema::check_binary(BinaryExpr& e) {
  TypeRef lt = check_expr(*e.lhs);
  TypeRef rt = check_expr(*e.rhs);

  switch (e.op) {
    case BinOp::kLAnd:
    case BinOp::kLOr:
      coerce(e.lhs, Type::boolean(), "logical operand");
      coerce(e.rhs, Type::boolean(), "logical operand");
      return Type::boolean();

    case BinOp::kEq:
    case BinOp::kNe:
      // Equality over same class (enum ordinal compare), booleans, bits, or
      // promoted numerics.
      if (lt->kind == TypeKind::kClass && equal(lt, rt)) return Type::boolean();
      if (lt->kind == TypeKind::kBoolean && rt->kind == TypeKind::kBoolean)
        return Type::boolean();
      if (lt->kind == TypeKind::kBit && rt->kind == TypeKind::kBit)
        return Type::boolean();
      [[fallthrough]];

    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      TypeRef p = promote(lt, rt);
      if (!p) {
        error(e.loc, "cannot compare " + lt->to_string() + " and " +
                         rt->to_string());
        return Type::boolean();
      }
      coerce(e.lhs, p, "comparison operand");
      coerce(e.rhs, p, "comparison operand");
      return Type::boolean();
    }

    case BinOp::kAnd:
    case BinOp::kOr:
    case BinOp::kXor: {
      if (lt->kind == TypeKind::kBit && rt->kind == TypeKind::kBit)
        return Type::bit();
      if (lt->kind == TypeKind::kBoolean && rt->kind == TypeKind::kBoolean)
        return Type::boolean();
      if (lt->is_integral() && rt->is_integral()) {
        TypeRef p = promote(lt, rt);
        if (!p) p = Type::int_();
        coerce(e.lhs, p, "bitwise operand");
        coerce(e.rhs, p, "bitwise operand");
        return p;
      }
      error(e.loc, "bitwise operator requires integral operands, got " +
                       lt->to_string() + " and " + rt->to_string());
      return Type::void_();
    }

    case BinOp::kShl:
    case BinOp::kShr: {
      if (!lt->is_integral() || !rt->is_integral()) {
        error(e.loc, "shift requires integral operands");
        return Type::void_();
      }
      if (lt->kind == TypeKind::kBit) coerce(e.lhs, Type::int_(), "shift");
      // The shift amount adopts the operand's type so every backend sees
      // uniform operand widths (the amount is masked at execution anyway).
      coerce(e.rhs, e.lhs->type, "shift amount");
      return e.lhs->type;
    }

    default: {  // arithmetic: + - * / %
      TypeRef p = promote(lt, rt);
      if (!p) {
        error(e.loc, "cannot apply '" + std::string(to_string(e.op)) +
                         "' to " + lt->to_string() + " and " + rt->to_string());
        return Type::void_();
      }
      if (e.op == BinOp::kRem && p->is_floating()) {
        error(e.loc, "'%' requires integral operands");
      }
      coerce(e.lhs, p, "arithmetic operand");
      coerce(e.rhs, p, "arithmetic operand");
      return p;
    }
  }
}

void Sema::check_assign_target(Expr& target) {
  switch (target.kind) {
    case ExprKind::kName: {
      auto& n = as<NameExpr>(target);
      if (n.ref == NameRefKind::kLocal) return;
      if (n.ref == NameRefKind::kField) {
        const FieldDecl* f = n.field;
        if (f->is_final) {
          error(target.loc, "cannot assign to final field '" + f->name + "'");
        }
        if (f->owner && f->owner->is_value &&
            !(cur_method_ && cur_method_->is_ctor)) {
          error(target.loc, "cannot mutate field of value class '" +
                                f->owner->name + "'");
        }
        if (cur_method_ && cur_method_->is_local && f->is_static) {
          error(target.loc,
                "local method may not write static field '" + f->name + "'");
        }
        return;
      }
      error(target.loc, "cannot assign to '" + n.name + "'");
      return;
    }
    case ExprKind::kIndex: {
      auto& ix = as<IndexExpr>(target);
      TypeRef at = ix.array->type;
      if (at && at->kind == TypeKind::kValueArray) {
        error(target.loc,
              "value arrays are immutable; cannot assign to an element");
      } else if (at && at->kind != TypeKind::kArray) {
        error(target.loc, "indexed assignment requires an array");
      }
      return;
    }
    case ExprKind::kField: {
      auto& f = as<FieldExpr>(target);
      if (f.is_array_length) {
        error(target.loc, "cannot assign to array length");
        return;
      }
      if (f.field) {
        if (f.field->is_final) {
          error(target.loc,
                "cannot assign to final field '" + f.field->name + "'");
        }
        if (f.field->owner && f.field->owner->is_value &&
            !(cur_method_ && cur_method_->is_ctor)) {
          error(target.loc, "cannot mutate field of value class '" +
                                f.field->owner->name + "'");
        }
      } else {
        error(target.loc, "cannot assign to '" + f.name + "'");
      }
      return;
    }
    default:
      error(target.loc, "invalid assignment target");
  }
}

TypeRef Sema::check_assign(AssignExpr& e) {
  TypeRef tt = check_expr(*e.target);
  check_expr(*e.value);
  check_assign_target(*e.target);
  if (e.compound) {
    // `a += b` behaves as `a = a + b`; the value must promote back to the
    // target's type without narrowing.
    TypeRef p = promote(tt, e.value->type);
    if (!p || !widens_to(p, tt)) {
      if (!(tt && e.value->type && equal(tt, e.value->type))) {
        error(e.loc, "compound assignment would narrow from " +
                         (p ? p->to_string() : std::string("<error>")) +
                         " to " + (tt ? tt->to_string() : "<error>"));
      }
    }
    coerce(e.value, tt, "compound assignment");
  } else {
    coerce(e.value, tt, "assignment");
  }
  return tt;
}

TypeRef Sema::check_ternary(TernaryExpr& e) {
  check_expr(*e.cond);
  coerce(e.cond, Type::boolean(), "ternary condition");
  TypeRef a = check_expr(*e.then_expr);
  TypeRef b = check_expr(*e.else_expr);
  if (equal(a, b)) return a;
  TypeRef p = promote(a, b);
  if (p) {
    coerce(e.then_expr, p, "ternary branch");
    coerce(e.else_expr, p, "ternary branch");
    return p;
  }
  error(e.loc, "incompatible ternary branches: " + a->to_string() + " and " +
                   b->to_string());
  return a;
}

TypeRef Sema::check_call(CallExpr& e) {
  // 1. Builtin receivers: Math.<fn>(...).
  if (e.receiver && e.receiver->kind == ExprKind::kName &&
      as<NameExpr>(*e.receiver).name == "Math" && !lookup_local("Math")) {
    auto it = math_intrinsics().find(e.method);
    if (it == math_intrinsics().end()) {
      error(e.loc, "unknown Math intrinsic '" + e.method + "'");
      return Type::void_();
    }
    if (static_cast<int>(e.args.size()) != it->second.arity) {
      error(e.loc, "Math." + e.method + " expects " +
                       std::to_string(it->second.arity) + " argument(s)");
      return Type::void_();
    }
    e.builtin = it->second.builtin;
    as<NameExpr>(*e.receiver).ref = NameRefKind::kClassRef;
    TypeRef common = Type::float_();
    bool any_double = false, all_int = true;
    for (auto& a : e.args) {
      TypeRef t = check_expr(*a);
      if (!t->is_numeric()) {
        error(a->loc, "Math argument must be numeric, got " + t->to_string());
        return Type::void_();
      }
      if (t->kind == TypeKind::kDouble) any_double = true;
      if (t->kind != TypeKind::kInt && t->kind != TypeKind::kLong)
        all_int = false;
      if (t->kind == TypeKind::kLong) any_double = true;  // long → double
    }
    bool integral_ok = (e.builtin == CallExpr::Builtin::kAbs ||
                        e.builtin == CallExpr::Builtin::kMin ||
                        e.builtin == CallExpr::Builtin::kMax);
    if (integral_ok && all_int) {
      common = Type::int_();
      for (auto& a : e.args) {
        if (a->type->kind == TypeKind::kLong) common = Type::long_();
      }
    } else {
      common = any_double ? Type::double_() : Type::float_();
    }
    for (auto& a : e.args) coerce(a, common, "Math argument");
    return common;
  }

  // 2. Resolve receiver (if any) to classify the call.
  TypeRef recv_t;
  const ClassDecl* static_class = nullptr;
  if (e.receiver) {
    if (e.receiver->kind == ExprKind::kName &&
        !lookup_local(as<NameExpr>(*e.receiver).name)) {
      auto& n = as<NameExpr>(*e.receiver);
      const ClassDecl* cd = program_.find_class(n.name);
      if (cd && !is_builtin_bit_class(*cd)) {
        // Static call `C.f(...)`.
        static_class = cd;
        n.ref = NameRefKind::kClassRef;
        n.class_ref = cd;
        n.type = Type::void_();
        e.receiver_class = cd->name;
      }
    }
    if (!static_class) recv_t = check_expr(*e.receiver);
  }

  // 3. Builtin array/task-graph methods.
  if (recv_t && recv_t->is_array_like()) {
    if (e.method == "source") {
      // `arr.source(rate)` — a source task streaming the array's elements
      // (Fig. 1 line 17). Only value elements may flow (§2.2).
      if (!recv_t->elem->is_value()) {
        error(e.loc, "source element type '" + recv_t->elem->to_string() +
                         "' is not a value type; only values may flow "
                         "between tasks");
      }
      if (e.args.size() != 1) {
        error(e.loc, "source(rate) expects one argument");
      } else {
        check_expr(*e.args[0]);
        coerce(e.args[0], Type::int_(), "source rate");
      }
      e.builtin = CallExpr::Builtin::kSource;
      return Type::task_graph();
    }
    if (e.method == "sink") {
      // `arr.<T>sink()` — a sink task accumulating into `arr`
      // (Fig. 1 line 19). The array must be mutable.
      if (recv_t->kind != TypeKind::kArray) {
        error(e.loc, "sink target must be a mutable array");
      }
      if (e.type_arg) {
        TypeRef want = resolve_type(e.type_arg, e.loc);
        if (!equal(want, recv_t->elem)) {
          error(e.loc, "sink type argument " + want->to_string() +
                           " does not match element type " +
                           recv_t->elem->to_string());
        }
      }
      if (!e.args.empty()) error(e.loc, "sink() takes no arguments");
      e.builtin = CallExpr::Builtin::kSink;
      return Type::task_graph();
    }
  }
  if (recv_t && recv_t->kind == TypeKind::kTaskGraph) {
    if (e.method == "start") {
      e.builtin = CallExpr::Builtin::kStart;
      if (!e.args.empty()) error(e.loc, "start() takes no arguments");
      return Type::void_();
    }
    if (e.method == "finish") {
      e.builtin = CallExpr::Builtin::kFinish;
      if (!e.args.empty()) error(e.loc, "finish() takes no arguments");
      return Type::void_();
    }
    error(e.loc, "unknown task-graph method '" + e.method + "'");
    return Type::void_();
  }

  // 4. User method call: static (C.f / unqualified static), or instance.
  const ClassDecl* search = static_class;
  bool instance_call = false;
  if (!search) {
    if (recv_t) {
      if (recv_t->kind != TypeKind::kClass || !recv_t->decl) {
        error(e.loc, "cannot call method '" + e.method + "' on " +
                         recv_t->to_string());
        return Type::void_();
      }
      search = recv_t->decl;
      instance_call = true;
    } else {
      search = cur_class_;  // unqualified call
    }
  }
  if (!search) {
    error(e.loc, "cannot resolve call to '" + e.method + "'");
    return Type::void_();
  }
  const MethodDecl* m = search->find_method(e.method);
  if (!m) {
    error(e.loc, "class '" + search->name + "' has no method '" + e.method +
                     "'");
    return Type::void_();
  }
  if ((static_class || (!e.receiver && cur_method_ && cur_method_->is_static)) &&
      !m->is_static && !instance_call) {
    error(e.loc, "cannot call instance method '" + e.method +
                     "' without a receiver");
  }
  if (instance_call && m->is_static) {
    error(e.loc, "static method '" + e.method + "' called on an instance");
  }
  // Isolation: local methods only call local methods (§2.1).
  if (cur_method_ && cur_method_->is_local && !m->is_local) {
    error(e.loc, "local method '" + cur_method_->name +
                     "' may only call local methods; '" + m->qualified_name() +
                     "' is global");
  }
  if (e.args.size() != m->params.size()) {
    error(e.loc, m->qualified_name() + " expects " +
                     std::to_string(m->params.size()) + " argument(s), got " +
                     std::to_string(e.args.size()));
    return m->return_type;
  }
  for (size_t i = 0; i < e.args.size(); ++i) {
    check_expr(*e.args[i]);
    coerce(e.args[i], m->params[i].type, "call argument");
  }
  e.resolved = m;
  return m->return_type;
}

TypeRef Sema::check_index(IndexExpr& e) {
  TypeRef at = check_expr(*e.array);
  check_expr(*e.index);
  coerce(e.index, Type::int_(), "array index");
  if (!at->is_array_like()) {
    error(e.loc, "cannot index " + at->to_string());
    return Type::void_();
  }
  return at->elem;
}

TypeRef Sema::check_field(FieldExpr& e) {
  // Qualified enum constant or static field: `C.name` where C is a class.
  if (e.object->kind == ExprKind::kName &&
      !lookup_local(as<NameExpr>(*e.object).name)) {
    auto& n = as<NameExpr>(*e.object);
    if (n.name == "bit") {
      // Builtin bit enum constants (Fig. 1): bit.zero, bit.one.
      n.ref = NameRefKind::kClassRef;
      n.type = Type::void_();
      if (e.name == "zero" || e.name == "one") {
        e.enum_class = nullptr;
        e.enum_ordinal = e.name == "one" ? 1 : 0;
        return Type::bit();
      }
      error(e.loc, "bit has no member '" + e.name + "'");
      return Type::void_();
    }
    if (const ClassDecl* cd = program_.find_class(n.name)) {
      n.ref = NameRefKind::kClassRef;
      n.class_ref = cd;
      n.type = Type::void_();
      if (cd->is_enum) {
        if (const EnumConst* c = cd->find_enum_const(e.name)) {
          e.enum_class = cd;
          e.enum_ordinal = c->ordinal;
          return Type::class_(cd->name, cd);
        }
      }
      if (const FieldDecl* f = cd->find_field(e.name)) {
        if (!f->is_static) {
          error(e.loc, "field '" + e.name + "' is not static");
        }
        e.field = f;
        return f->type;
      }
      error(e.loc, "class '" + cd->name + "' has no member '" + e.name + "'");
      return Type::void_();
    }
  }

  TypeRef ot = check_expr(*e.object);
  if (ot->is_array_like() && e.name == "length") {
    e.is_array_length = true;
    return Type::int_();
  }
  if (ot->kind == TypeKind::kClass && ot->decl) {
    if (const FieldDecl* f = ot->decl->find_field(e.name)) {
      if (f->is_static) {
        error(e.loc, "static field '" + e.name +
                         "' accessed through an instance");
      }
      e.field = f;
      return f->type;
    }
  }
  error(e.loc, "no field '" + e.name + "' on " + ot->to_string());
  return Type::void_();
}

TypeRef Sema::check_new_array(NewArrayExpr& e) {
  e.elem_type = resolve_type(e.elem_type, e.loc);
  if (e.from_array) {
    // `new T[[]](arr)` — freeze a mutable array into a value array.
    TypeRef src = check_expr(*e.from_array);
    if (!src->is_array_like() || !equal(src->elem, e.elem_type)) {
      error(e.loc, "cannot freeze " + src->to_string() + " into " +
                       e.elem_type->to_string() + "[[]]");
    }
    if (!e.elem_type->is_value()) {
      error(e.loc, "value array element must be a value type");
    }
    return Type::value_array(e.elem_type);
  }
  check_expr(*e.length);
  coerce(e.length, Type::int_(), "array length");
  return Type::array(e.elem_type);
}

TypeRef Sema::check_cast(CastExpr& e) {
  e.target = resolve_type(e.target, e.loc);
  TypeRef src = check_expr(*e.operand);
  if (equal(src, e.target)) return e.target;
  if (src->is_numeric() && e.target->is_numeric()) return e.target;
  if (src->kind == TypeKind::kBit && e.target->is_numeric()) return e.target;
  if (src->is_integral() && e.target->kind == TypeKind::kBit) return e.target;
  error(e.loc, "invalid cast from " + src->to_string() + " to " +
                   e.target->to_string());
  return e.target;
}

TypeRef Sema::check_map(MapExpr& e) {
  const ClassDecl* cd = program_.find_class(e.class_name);
  if (!cd) {
    error(e.loc, "unknown class '" + e.class_name + "' in map expression");
    return Type::void_();
  }
  const MethodDecl* m = cd->find_method(e.method);
  if (!m) {
    error(e.loc, "class '" + cd->name + "' has no method '" + e.method + "'");
    return Type::void_();
  }
  if (!m->is_pure) {
    // §2.2: data-parallelism may only be inferred for pure methods.
    error(e.loc, "map operator requires a pure method; '" +
                     m->qualified_name() +
                     "' is not (must be local+static with value arguments)");
  }
  if (e.args.size() != m->params.size()) {
    error(e.loc, "map over " + m->qualified_name() + " expects " +
                     std::to_string(m->params.size()) + " argument(s)");
    return Type::void_();
  }
  bool any_array = false;
  for (size_t i = 0; i < e.args.size(); ++i) {
    TypeRef at = check_expr(*e.args[i]);
    TypeRef want = m->params[i].type;
    if (at->is_array_like() && equal(at->elem, want)) {
      if (at->kind != TypeKind::kValueArray) {
        error(e.args[i]->loc,
              "map argument arrays must be value arrays (T[[]])");
      }
      any_array = true;  // mapped elementwise
    } else {
      coerce(e.args[i], want, "map argument (broadcast scalar)");
    }
  }
  if (!any_array) {
    error(e.loc, "map expression needs at least one array argument");
  }
  e.resolved = m;
  return Type::value_array(m->return_type);
}

TypeRef Sema::check_reduce(ReduceExpr& e) {
  const ClassDecl* cd = program_.find_class(e.class_name);
  if (!cd) {
    error(e.loc, "unknown class '" + e.class_name + "' in reduce expression");
    return Type::void_();
  }
  const MethodDecl* m = cd->find_method(e.method);
  if (!m) {
    error(e.loc, "class '" + cd->name + "' has no method '" + e.method + "'");
    return Type::void_();
  }
  if (!m->is_pure) {
    error(e.loc, "reduce operator requires a pure method; '" +
                     m->qualified_name() + "' is not");
  }
  if (m->params.size() != 2 || !equal(m->params[0].type, m->params[1].type) ||
      !equal(m->return_type, m->params[0].type)) {
    error(e.loc, "reduce method must have signature T " + e.method +
                     "(T, T)");
    return Type::void_();
  }
  if (e.args.size() != 1) {
    error(e.loc, "reduce takes exactly one array argument");
    return m->return_type;
  }
  TypeRef at = check_expr(*e.args[0]);
  if (!at->is_array_like() || !equal(at->elem, m->return_type)) {
    error(e.loc, "reduce argument must be an array of " +
                     m->return_type->to_string());
  } else if (at->kind != TypeKind::kValueArray) {
    error(e.args[0]->loc, "reduce argument must be a value array (T[[]])");
  }
  e.resolved = m;
  return m->return_type;
}

TypeRef Sema::check_task(TaskExpr& e) {
  const ClassDecl* cd = e.class_name.empty()
                            ? cur_class_
                            : program_.find_class(e.class_name);
  if (!cd) {
    error(e.loc, "unknown class '" + e.class_name + "' in task expression");
    return Type::task_graph();
  }
  const MethodDecl* m = cd->find_method(e.method);
  if (!m) {
    error(e.loc, "class '" + cd->name + "' has no method '" + e.method + "'");
    return Type::task_graph();
  }
  if (!m->is_static) {
    error(e.loc, "the task operator currently applies to static methods");
  }
  if (!is_task_capable(*m)) {
    // §2.2: filters must be strongly isolated — local with value arguments.
    error(e.loc, "task operator requires a local method with value "
                 "arguments and a value result; '" +
                     m->qualified_name() + "' does not qualify");
  }
  if (m->params.empty()) {
    error(e.loc, "a filter task needs at least one input parameter");
  }
  e.resolved = m;
  return Type::task_graph();
}

TypeRef Sema::check_relocate(RelocateExpr& e) {
  TypeRef t = check_expr(*e.inner);
  if (t->kind != TypeKind::kTaskGraph) {
    error(e.loc, "relocation brackets must enclose a task expression");
  }
  return Type::task_graph();
}

TypeRef Sema::check_connect(ConnectExpr& e) {
  TypeRef lt = check_expr(*e.lhs);
  TypeRef rt = check_expr(*e.rhs);
  if (lt->kind != TypeKind::kTaskGraph) {
    error(e.lhs->loc, "left operand of '=>' must be a task");
  }
  if (rt->kind != TypeKind::kTaskGraph) {
    error(e.rhs->loc, "right operand of '=>' must be a task");
  }
  return Type::task_graph();
}

void Sema::coerce(ExprPtr& e, const TypeRef& target, const char* context) {
  if (!e || !e->type || !target) return;
  if (equal(e->type, target)) return;
  if (widens_to(e->type, target)) {
    auto cast = std::make_unique<CastExpr>();
    cast->loc = e->loc;
    cast->target = target;
    cast->type = target;
    cast->operand = std::move(e);
    e = std::move(cast);
    return;
  }
  error(e->loc, std::string("type mismatch in ") + context + ": expected " +
                    target->to_string() + ", got " + e->type->to_string());
}

}  // namespace lm::lime
