#include "lime/frontend.h"

#include "lime/lexer.h"
#include "lime/parser.h"
#include "lime/sema.h"

namespace lm::lime {

FrontendResult compile_source(const std::string& source) {
  FrontendResult result;
  Lexer lexer(source, result.diags);
  auto tokens = lexer.lex();
  Parser parser(std::move(tokens), result.diags);
  result.program = parser.parse_program();
  if (result.diags.has_errors()) return result;  // don't run sema on junk
  Sema sema(*result.program, result.diags);
  sema.run();
  return result;
}

}  // namespace lm::lime
