// Abstract syntax tree for the Lime subset.
//
// The tree is produced by the parser and annotated in place by semantic
// analysis (resolved symbols, types, purity). All downstream consumers —
// bytecode compiler, GPU kernel extractor, FPGA synthesizer, task-graph
// extractor — read this annotated AST.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lime/type.h"
#include "util/bitvec.h"
#include "util/source_location.h"

namespace lm::lime {

struct ClassDecl;
struct MethodDecl;
struct FieldDecl;

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

enum class UnOp { kNeg, kNot, kBitNot, kUserOp };

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kLAnd, kLOr,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

const char* to_string(UnOp op);
const char* to_string(BinOp op);
bool is_comparison(BinOp op);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kIntLit, kFloatLit, kBoolLit, kBitLit,
  kName, kThis,
  kUnary, kBinary, kAssign, kTernary,
  kCall, kIndex, kField,
  kNewArray, kCast,
  kMap, kReduce,
  kTask, kRelocate, kConnect,
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
  SourceLoc loc;
  TypeRef type;  // filled in by sema
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  IntLitExpr() : Expr(ExprKind::kIntLit) {}
  int64_t value = 0;
  bool is_long = false;
};

struct FloatLitExpr : Expr {
  FloatLitExpr() : Expr(ExprKind::kFloatLit) {}
  double value = 0;
  bool is_double = false;
};

struct BoolLitExpr : Expr {
  BoolLitExpr() : Expr(ExprKind::kBoolLit) {}
  bool value = false;
};

/// A Lime bit literal such as 100b — a value array of bit (§2.2).
struct BitLitExpr : Expr {
  BitLitExpr() : Expr(ExprKind::kBitLit) {}
  BitVec bits;
};

/// How a name resolved during sema.
enum class NameRefKind {
  kUnresolved,
  kLocal,       // local variable or parameter → slot
  kField,       // implicit this.field or static field of own class
  kEnumConst,   // e.g. `zero` inside `bit`, or via field access `bit.zero`
  kClassRef,    // a class name used as map/reduce/call receiver
};

struct NameExpr : Expr {
  NameExpr() : Expr(ExprKind::kName) {}
  std::string name;
  NameRefKind ref = NameRefKind::kUnresolved;
  int slot = -1;                       // for kLocal
  const FieldDecl* field = nullptr;    // for kField
  const ClassDecl* class_ref = nullptr;  // for kClassRef / kEnumConst
  int enum_ordinal = -1;               // for kEnumConst
};

struct ThisExpr : Expr {
  ThisExpr() : Expr(ExprKind::kThis) {}
};

struct UnaryExpr : Expr {
  UnaryExpr() : Expr(ExprKind::kUnary) {}
  UnOp op = UnOp::kNeg;
  ExprPtr operand;
  /// For `~` on a value class with a user-defined operator method (Fig. 1
  /// line 3), sema resolves to that method and sets op = kUserOp.
  const MethodDecl* user_method = nullptr;
};

struct BinaryExpr : Expr {
  BinaryExpr() : Expr(ExprKind::kBinary) {}
  BinOp op = BinOp::kAdd;
  ExprPtr lhs, rhs;
};

struct AssignExpr : Expr {
  AssignExpr() : Expr(ExprKind::kAssign) {}
  ExprPtr target;  // NameExpr, IndexExpr or FieldExpr
  ExprPtr value;
  /// For compound assignment (`+=` etc.) this holds the arithmetic op.
  bool compound = false;
  BinOp op = BinOp::kAdd;
};

struct TernaryExpr : Expr {
  TernaryExpr() : Expr(ExprKind::kTernary) {}
  ExprPtr cond, then_expr, else_expr;
};

/// Method invocation. Covers plain calls `f(x)`, qualified calls `C.f(x)`,
/// instance calls `o.f(x)`, and the builtin Lime array methods `source`,
/// `sink`, `length()` as well as task-graph `start`/`finish`.
struct CallExpr : Expr {
  CallExpr() : Expr(ExprKind::kCall) {}
  ExprPtr receiver;           // null for unqualified calls
  std::string receiver_class; // nonempty for `C.f(x)` static calls
  std::string method;
  TypeRef type_arg;           // for `result.<bit>sink()`
  std::vector<ExprPtr> args;

  enum class Builtin {
    kNone, kSource, kSink, kStart, kFinish,
    // Math intrinsics (pure; polymorphic over float/double):
    kSqrt, kExp, kLog, kSin, kCos, kPow, kAbs, kMin, kMax, kFloor,
  };
  Builtin builtin = Builtin::kNone;  // set by sema
  const MethodDecl* resolved = nullptr;
};

struct IndexExpr : Expr {
  IndexExpr() : Expr(ExprKind::kIndex) {}
  ExprPtr array, index;
};

struct FieldExpr : Expr {
  FieldExpr() : Expr(ExprKind::kField) {}
  ExprPtr object;
  std::string name;
  bool is_array_length = false;          // arr.length
  const FieldDecl* field = nullptr;
  // Qualified enum constant, e.g. bit.zero:
  const ClassDecl* enum_class = nullptr;
  int enum_ordinal = -1;
};

struct NewArrayExpr : Expr {
  NewArrayExpr() : Expr(ExprKind::kNewArray) {}
  TypeRef elem_type;
  ExprPtr length;        // for `new T[n]`
  ExprPtr from_array;    // for `new T[[]](arr)` — freeze a mutable array
  bool is_value_array = false;
};

struct CastExpr : Expr {
  CastExpr() : Expr(ExprKind::kCast) {}
  TypeRef target;
  ExprPtr operand;
};

/// The Lime map operator `C @ m(args)` (§2.2): applies m elementwise over
/// the array arguments, producing a new value array.
struct MapExpr : Expr {
  MapExpr() : Expr(ExprKind::kMap) {}
  std::string class_name;
  std::string method;
  std::vector<ExprPtr> args;
  const MethodDecl* resolved = nullptr;
};

/// The Lime reduce operator `C ! m(arr)`: folds the array with the binary
/// method m (which must be pure, associative use is the programmer's duty).
struct ReduceExpr : Expr {
  ReduceExpr() : Expr(ExprKind::kReduce) {}
  std::string class_name;
  std::string method;
  std::vector<ExprPtr> args;  // first arg is the array; any rest are seeds
  const MethodDecl* resolved = nullptr;
};

/// `task m` / `task C.m` — creates a dataflow actor that repeatedly applies
/// the named method (§2.2).
struct TaskExpr : Expr {
  TaskExpr() : Expr(ExprKind::kTask) {}
  std::string class_name;  // empty → enclosing class
  std::string method;
  const MethodDecl* resolved = nullptr;
};

/// Relocation brackets `[ expr ]` (§2.3): marks the enclosed task
/// (sub)graph as a candidate for co-execution on an accelerator.
struct RelocateExpr : Expr {
  RelocateExpr() : Expr(ExprKind::kRelocate) {}
  ExprPtr inner;
};

/// The connect operator `a => b` (§2.2): left-associative task composition.
struct ConnectExpr : Expr {
  ConnectExpr() : Expr(ExprKind::kConnect) {}
  ExprPtr lhs, rhs;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kExpr, kVarDecl, kIf, kWhile, kFor, kReturn, kBlock, kBreak, kContinue,
};

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  StmtKind kind;
  SourceLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct ExprStmt : Stmt {
  ExprStmt() : Stmt(StmtKind::kExpr) {}
  ExprPtr expr;
};

struct VarDeclStmt : Stmt {
  VarDeclStmt() : Stmt(StmtKind::kVarDecl) {}
  TypeRef declared_type;  // null for `var` — inferred by sema
  std::string name;
  ExprPtr init;           // may be null only when declared_type is set
  int slot = -1;          // assigned by sema
};

struct BlockStmt : Stmt {
  BlockStmt() : Stmt(StmtKind::kBlock) {}
  std::vector<StmtPtr> stmts;
};

struct IfStmt : Stmt {
  IfStmt() : Stmt(StmtKind::kIf) {}
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  // may be null
};

struct WhileStmt : Stmt {
  WhileStmt() : Stmt(StmtKind::kWhile) {}
  ExprPtr cond;
  StmtPtr body;
};

struct ForStmt : Stmt {
  ForStmt() : Stmt(StmtKind::kFor) {}
  StmtPtr init;    // VarDeclStmt or ExprStmt; may be null
  ExprPtr cond;    // may be null (infinite)
  ExprPtr update;  // may be null
  StmtPtr body;
};

struct ReturnStmt : Stmt {
  ReturnStmt() : Stmt(StmtKind::kReturn) {}
  ExprPtr value;  // null for `return;`
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::kBreak) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::kContinue) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct Param {
  TypeRef type;
  std::string name;
  int slot = -1;
  SourceLoc loc;
};

struct MethodDecl {
  std::string name;
  const ClassDecl* owner = nullptr;
  TypeRef return_type;
  std::vector<Param> params;
  std::unique_ptr<BlockStmt> body;  // null for the implicit enum methods
  SourceLoc loc;

  bool is_public = false;
  bool is_static = false;
  bool is_local = false;   // declared `local`, or defaulted for value types
  bool is_ctor = false;
  /// User-defined unary operator method, e.g. `public bit ~ this { ... }`.
  bool is_unary_op = false;
  UnOp op = UnOp::kBitNot;

  // Filled in by sema:
  bool is_pure = false;     // local + static (or value-instance) + value args
  int num_slots = 0;        // locals count incl. params (and `this` at slot 0)

  /// Fully-qualified name used as the task identifier in manifests,
  /// e.g. "Bitflip.flip".
  std::string qualified_name() const;
};

struct FieldDecl {
  TypeRef type;
  std::string name;
  const ClassDecl* owner = nullptr;
  bool is_static = false;
  bool is_final = false;
  ExprPtr init;  // may be null
  SourceLoc loc;
  int index = -1;  // field index within the class (for object layout)
};

struct EnumConst {
  std::string name;
  int ordinal = 0;
  SourceLoc loc;
};

struct ClassDecl {
  std::string name;
  bool is_public = false;
  bool is_value = false;
  bool is_enum = false;
  std::vector<EnumConst> enum_consts;
  std::vector<std::unique_ptr<FieldDecl>> fields;
  std::vector<std::unique_ptr<MethodDecl>> methods;
  SourceLoc loc;

  const MethodDecl* find_method(const std::string& n) const;
  const FieldDecl* find_field(const std::string& n) const;
  const EnumConst* find_enum_const(const std::string& n) const;
  /// The user-defined unary operator method for `op`, if any.
  const MethodDecl* find_unary_op(UnOp op) const;
};

struct Program {
  std::vector<std::unique_ptr<ClassDecl>> classes;

  const ClassDecl* find_class(const std::string& n) const;
};

// ---------------------------------------------------------------------------
// Casting helper
// ---------------------------------------------------------------------------

template <typename T>
T& as(Expr& e) {
  return static_cast<T&>(e);
}
template <typename T>
const T& as(const Expr& e) {
  return static_cast<const T&>(e);
}
template <typename T>
T& as(Stmt& s) {
  return static_cast<T&>(s);
}
template <typename T>
const T& as(const Stmt& s) {
  return static_cast<const T&>(s);
}

}  // namespace lm::lime
