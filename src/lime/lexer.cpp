#include "lime/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace lm::lime {

namespace {

const std::unordered_map<std::string, Tok>& keyword_map() {
  static const auto* kMap = new std::unordered_map<std::string, Tok>{
      {"class", Tok::kClass},     {"enum", Tok::kEnum},
      {"value", Tok::kValue},     {"local", Tok::kLocal},
      {"global", Tok::kGlobal},   {"static", Tok::kStatic},
      {"public", Tok::kPublic},   {"private", Tok::kPrivate},
      {"return", Tok::kReturn},   {"if", Tok::kIf},
      {"else", Tok::kElse},       {"for", Tok::kFor},
      {"while", Tok::kWhile},     {"break", Tok::kBreak},
      {"continue", Tok::kContinue}, {"var", Tok::kVar},
      {"new", Tok::kNew},         {"task", Tok::kTask},
      {"this", Tok::kThis},       {"true", Tok::kTrue},
      {"false", Tok::kFalse},     {"final", Tok::kFinal},
      {"int", Tok::kInt},         {"long", Tok::kLong},
      {"float", Tok::kFloat},     {"double", Tok::kDouble},
      {"boolean", Tok::kBoolean}, {"bit", Tok::kBit},
      {"void", Tok::kVoid},
  };
  return *kMap;
}

}  // namespace

const char* to_string(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "int literal";
    case Tok::kLongLit: return "long literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kDoubleLit: return "double literal";
    case Tok::kBitLit: return "bit literal";
    case Tok::kClass: return "'class'";
    case Tok::kEnum: return "'enum'";
    case Tok::kValue: return "'value'";
    case Tok::kLocal: return "'local'";
    case Tok::kGlobal: return "'global'";
    case Tok::kStatic: return "'static'";
    case Tok::kPublic: return "'public'";
    case Tok::kPrivate: return "'private'";
    case Tok::kReturn: return "'return'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kFor: return "'for'";
    case Tok::kWhile: return "'while'";
    case Tok::kBreak: return "'break'";
    case Tok::kContinue: return "'continue'";
    case Tok::kVar: return "'var'";
    case Tok::kNew: return "'new'";
    case Tok::kTask: return "'task'";
    case Tok::kThis: return "'this'";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kFinal: return "'final'";
    case Tok::kInt: return "'int'";
    case Tok::kLong: return "'long'";
    case Tok::kFloat: return "'float'";
    case Tok::kDouble: return "'double'";
    case Tok::kBoolean: return "'boolean'";
    case Tok::kBit: return "'bit'";
    case Tok::kVoid: return "'void'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kDot: return "'.'";
    case Tok::kColon: return "':'";
    case Tok::kQuestion: return "'?'";
    case Tok::kAssign: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kBang: return "'!'";
    case Tok::kAmpAmp: return "'&&'";
    case Tok::kPipePipe: return "'||'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kAt: return "'@'";
    case Tok::kConnect: return "'=>'";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kStarAssign: return "'*='";
    case Tok::kSlashAssign: return "'/='";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kMinusMinus: return "'--'";
  }
  return "<bad token>";
}

Lexer::Lexer(std::string source, DiagnosticEngine& diags)
    : src_(std::move(source)), diags_(diags) {}

char Lexer::peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char c) {
  if (at_end() || peek() != c) return false;
  advance();
  return true;
}

SourceLoc Lexer::here() const {
  return {line_, col_, static_cast<uint32_t>(pos_)};
}

void Lexer::skip_ws_and_comments() {
  while (!at_end()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      SourceLoc start = here();
      advance();
      advance();
      while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
      if (at_end()) {
        diags_.error(start, "unterminated block comment");
      } else {
        advance();
        advance();
      }
    } else {
      break;
    }
  }
}

Token Lexer::make(Tok kind, SourceLoc loc, std::string text) {
  Token t;
  t.kind = kind;
  t.loc = loc;
  t.text = std::move(text);
  return t;
}

Token Lexer::ident_or_keyword() {
  SourceLoc loc = here();
  std::string s;
  while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
    s.push_back(advance());
  }
  auto it = keyword_map().find(s);
  if (it != keyword_map().end()) return make(it->second, loc, s);
  return make(Tok::kIdent, loc, s);
}

Token Lexer::number() {
  SourceLoc loc = here();
  std::string s;
  bool is_float = false;
  bool all_binary = true;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    s.push_back(advance());
    s.push_back(advance());
    while (!at_end() && std::isxdigit(static_cast<unsigned char>(peek()))) {
      s.push_back(advance());
    }
    Token t = make(Tok::kIntLit, loc, s);
    t.int_value = static_cast<int64_t>(std::strtoull(s.c_str() + 2, nullptr, 16));
    if (match('L') || match('l')) t.kind = Tok::kLongLit;
    return t;
  }

  while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
    if (peek() != '0' && peek() != '1') all_binary = false;
    s.push_back(advance());
  }
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    s.push_back(advance());
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      s.push_back(advance());
    }
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t save = 1;
    if (peek(1) == '+' || peek(1) == '-') save = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(save)))) {
      is_float = true;
      for (size_t i = 0; i < save; ++i) s.push_back(advance());
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        s.push_back(advance());
      }
    }
  }

  if (is_float) {
    Token t = make(match('f') || match('F') ? Tok::kFloatLit : Tok::kDoubleLit,
                   loc, s);
    t.float_value = std::strtod(s.c_str(), nullptr);
    return t;
  }

  // A run of 0/1 digits immediately followed by 'b' is a Lime bit literal,
  // e.g. 100b (§2.2). The digits are kept verbatim; the MSB is leftmost.
  if (all_binary && peek() == 'b') {
    advance();
    return make(Tok::kBitLit, loc, s);
  }

  if (match('f') || match('F')) {
    Token t = make(Tok::kFloatLit, loc, s);
    t.float_value = std::strtod(s.c_str(), nullptr);
    return t;
  }

  Token t = make(match('L') || match('l') ? Tok::kLongLit : Tok::kIntLit, loc, s);
  t.int_value = static_cast<int64_t>(std::strtoull(s.c_str(), nullptr, 10));
  return t;
}

Token Lexer::next_token() {
  skip_ws_and_comments();
  SourceLoc loc = here();
  if (at_end()) return make(Tok::kEof, loc);

  char c = peek();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return ident_or_keyword();
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    return number();
  }

  advance();
  switch (c) {
    case '(': return make(Tok::kLParen, loc);
    case ')': return make(Tok::kRParen, loc);
    case '{': return make(Tok::kLBrace, loc);
    case '}': return make(Tok::kRBrace, loc);
    case '[': return make(Tok::kLBracket, loc);
    case ']': return make(Tok::kRBracket, loc);
    case ',': return make(Tok::kComma, loc);
    case ';': return make(Tok::kSemi, loc);
    case '.': return make(Tok::kDot, loc);
    case ':': return make(Tok::kColon, loc);
    case '?': return make(Tok::kQuestion, loc);
    case '@': return make(Tok::kAt, loc);
    case '~': return make(Tok::kTilde, loc);
    case '^': return make(Tok::kCaret, loc);
    case '%': return make(Tok::kPercent, loc);
    case '+':
      if (match('=')) return make(Tok::kPlusAssign, loc);
      if (match('+')) return make(Tok::kPlusPlus, loc);
      return make(Tok::kPlus, loc);
    case '-':
      if (match('=')) return make(Tok::kMinusAssign, loc);
      if (match('-')) return make(Tok::kMinusMinus, loc);
      return make(Tok::kMinus, loc);
    case '*':
      if (match('=')) return make(Tok::kStarAssign, loc);
      return make(Tok::kStar, loc);
    case '/':
      if (match('=')) return make(Tok::kSlashAssign, loc);
      return make(Tok::kSlash, loc);
    case '&':
      if (match('&')) return make(Tok::kAmpAmp, loc);
      return make(Tok::kAmp, loc);
    case '|':
      if (match('|')) return make(Tok::kPipePipe, loc);
      return make(Tok::kPipe, loc);
    case '!':
      if (match('=')) return make(Tok::kNe, loc);
      return make(Tok::kBang, loc);
    case '=':
      if (match('=')) return make(Tok::kEq, loc);
      if (match('>')) return make(Tok::kConnect, loc);
      return make(Tok::kAssign, loc);
    case '<':
      if (match('=')) return make(Tok::kLe, loc);
      if (match('<')) return make(Tok::kShl, loc);
      return make(Tok::kLt, loc);
    case '>':
      if (match('=')) return make(Tok::kGe, loc);
      if (match('>')) return make(Tok::kShr, loc);
      return make(Tok::kGt, loc);
    default:
      diags_.error(loc, std::string("unexpected character '") + c + "'");
      return next_token();
  }
}

std::vector<Token> Lexer::lex() {
  std::vector<Token> out;
  for (;;) {
    Token t = next_token();
    bool eof = t.is(Tok::kEof);
    out.push_back(std::move(t));
    if (eof) break;
  }
  return out;
}

}  // namespace lm::lime
