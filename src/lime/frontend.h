// Frontend driver: Lime source text → checked AST.
#pragma once

#include <memory>
#include <string>

#include "lime/ast.h"
#include "util/diagnostics.h"

namespace lm::lime {

struct FrontendResult {
  std::unique_ptr<Program> program;  // non-null even on error (may be partial)
  DiagnosticEngine diags;

  bool ok() const { return program != nullptr && !diags.has_errors(); }
};

/// Lexes, parses, and semantically checks a Lime compilation unit.
FrontendResult compile_source(const std::string& source);

}  // namespace lm::lime
