#include "lime/type.h"

#include "lime/ast.h"
#include "util/error.h"

namespace lm::lime {

namespace {
TypeRef make_prim(TypeKind k) {
  auto t = std::make_shared<Type>();
  t->kind = k;
  return t;
}
}  // namespace

TypeRef Type::void_() {
  static const TypeRef t = make_prim(TypeKind::kVoid);
  return t;
}
TypeRef Type::int_() {
  static const TypeRef t = make_prim(TypeKind::kInt);
  return t;
}
TypeRef Type::long_() {
  static const TypeRef t = make_prim(TypeKind::kLong);
  return t;
}
TypeRef Type::float_() {
  static const TypeRef t = make_prim(TypeKind::kFloat);
  return t;
}
TypeRef Type::double_() {
  static const TypeRef t = make_prim(TypeKind::kDouble);
  return t;
}
TypeRef Type::boolean() {
  static const TypeRef t = make_prim(TypeKind::kBoolean);
  return t;
}
TypeRef Type::bit() {
  static const TypeRef t = make_prim(TypeKind::kBit);
  return t;
}
TypeRef Type::task_graph() {
  static const TypeRef t = make_prim(TypeKind::kTaskGraph);
  return t;
}

TypeRef Type::array(TypeRef elem) {
  auto t = std::make_shared<Type>();
  t->kind = TypeKind::kArray;
  t->elem = std::move(elem);
  return t;
}

TypeRef Type::value_array(TypeRef elem) {
  auto t = std::make_shared<Type>();
  t->kind = TypeKind::kValueArray;
  t->elem = std::move(elem);
  return t;
}

TypeRef Type::class_(std::string name, const ClassDecl* decl) {
  auto t = std::make_shared<Type>();
  t->kind = TypeKind::kClass;
  t->class_name = std::move(name);
  t->decl = decl;
  return t;
}

bool Type::is_value() const {
  switch (kind) {
    case TypeKind::kVoid:
    case TypeKind::kTaskGraph:
      return false;
    case TypeKind::kArray:
      return false;  // mutable arrays are never values
    case TypeKind::kValueArray:
      return elem && elem->is_value();
    case TypeKind::kClass:
      return decl != nullptr && decl->is_value;
    default:
      return true;  // primitives
  }
}

std::string Type::to_string() const {
  switch (kind) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kInt: return "int";
    case TypeKind::kLong: return "long";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kBoolean: return "boolean";
    case TypeKind::kBit: return "bit";
    case TypeKind::kTaskGraph: return "taskgraph";
    case TypeKind::kArray: return elem->to_string() + "[]";
    case TypeKind::kValueArray: return elem->to_string() + "[[]]";
    case TypeKind::kClass: return class_name;
  }
  return "<bad type>";
}

bool equal(const TypeRef& a, const TypeRef& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case TypeKind::kArray:
    case TypeKind::kValueArray:
      return equal(a->elem, b->elem);
    case TypeKind::kClass:
      return a->class_name == b->class_name;
    default:
      return true;
  }
}

bool widens_to(const TypeRef& from, const TypeRef& to) {
  if (equal(from, to)) return true;
  if (!from || !to) return false;
  switch (from->kind) {
    case TypeKind::kBit:
      return to->kind == TypeKind::kInt || to->kind == TypeKind::kLong;
    case TypeKind::kInt:
      return to->kind == TypeKind::kLong || to->kind == TypeKind::kFloat ||
             to->kind == TypeKind::kDouble;
    case TypeKind::kLong:
      return to->kind == TypeKind::kDouble;
    case TypeKind::kFloat:
      return to->kind == TypeKind::kDouble;
    default:
      return false;
  }
}

TypeRef promote(const TypeRef& a, const TypeRef& b) {
  if (!a || !b) return nullptr;
  if (!a->is_numeric() || !b->is_numeric()) return nullptr;
  if (a->kind == TypeKind::kDouble || b->kind == TypeKind::kDouble)
    return Type::double_();
  if (a->kind == TypeKind::kFloat || b->kind == TypeKind::kFloat)
    return Type::float_();
  if (a->kind == TypeKind::kLong || b->kind == TypeKind::kLong)
    return Type::long_();
  return Type::int_();
}

}  // namespace lm::lime
