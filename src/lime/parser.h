// Recursive-descent parser for the Lime subset.
//
// Produces an unannotated AST; all name/type resolution happens in sema.
// On a syntax error the parser reports a diagnostic and attempts local
// recovery (skip to the next ';' or '}'), so one bad method does not hide
// errors elsewhere in the file.
#pragma once

#include <memory>
#include <vector>

#include "lime/ast.h"
#include "lime/token.h"
#include "util/diagnostics.h"

namespace lm::lime {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags);

  /// Parses a whole compilation unit (one or more class declarations).
  std::unique_ptr<Program> parse_program();

  /// Parses a single expression (used by tests).
  ExprPtr parse_expression();

 private:
  // -- token stream helpers --
  const Token& peek(size_t ahead = 0) const;
  const Token& current() const { return peek(0); }
  Token advance();
  bool check(Tok t) const { return current().is(t); }
  bool match(Tok t);
  Token expect(Tok t, const char* what);
  void error_here(const std::string& msg);
  void sync_to_stmt_boundary();

  // -- declarations --
  struct Mods {
    bool is_public = false, is_private = false, is_value = false;
    bool is_local = false, is_global = false, is_static = false;
    bool is_final = false;
  };
  Mods parse_mods();
  std::unique_ptr<ClassDecl> parse_class();
  void parse_enum_body(ClassDecl& cls);
  void parse_member(ClassDecl& cls);
  std::vector<Param> parse_params();

  // -- types --
  bool looks_like_type_start() const;
  TypeRef parse_type();
  TypeRef parse_base_type();

  /// True when the tokens at the cursor begin a local variable declaration
  /// rather than an expression statement.
  bool looks_like_var_decl() const;

  // -- statements --
  StmtPtr parse_stmt();
  std::unique_ptr<BlockStmt> parse_block();
  StmtPtr parse_var_decl();
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_for();
  StmtPtr parse_return();

  // -- expressions (precedence climbing) --
  ExprPtr parse_expr();        // connect level (lowest)
  ExprPtr parse_assign();
  ExprPtr parse_ternary();
  ExprPtr parse_binary(int min_prec);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
  std::vector<ExprPtr> parse_args();
  ExprPtr parse_new();
  ExprPtr parse_task();

  std::vector<Token> toks_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
};

}  // namespace lm::lime
