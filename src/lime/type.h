// The Lime type system (§2.1).
//
// The essential property the paper leans on is *value-ness*: a value type is
// recursively immutable, only values may flow across task connections, and
// purity of methods is judged from value-ness of arguments. Types here are
// immutable shared nodes compared structurally.
#pragma once

#include <memory>
#include <string>

namespace lm::lime {

struct ClassDecl;  // forward (ast.h)

enum class TypeKind {
  kVoid,
  kInt,      // 32-bit signed
  kLong,     // 64-bit signed
  kFloat,    // 32-bit IEEE
  kDouble,   // 64-bit IEEE
  kBoolean,
  kBit,      // the Lime 1-bit type; first-class for FPGA synthesis (§6)
  kArray,    // T[]  — mutable array (not a value)
  kValueArray,  // T[[]] — immutable value array
  kClass,    // user class or value enum
  kTaskGraph,  // result of task construction / connect (host-only)
};

struct Type;
using TypeRef = std::shared_ptr<const Type>;

struct Type {
  TypeKind kind = TypeKind::kVoid;
  TypeRef elem;             // for kArray / kValueArray
  std::string class_name;   // for kClass
  const ClassDecl* decl = nullptr;  // resolved by sema, for kClass

  // -- Factories (interned for primitives). --
  static TypeRef void_();
  static TypeRef int_();
  static TypeRef long_();
  static TypeRef float_();
  static TypeRef double_();
  static TypeRef boolean();
  static TypeRef bit();
  static TypeRef task_graph();
  static TypeRef array(TypeRef elem);
  static TypeRef value_array(TypeRef elem);
  static TypeRef class_(std::string name, const ClassDecl* decl = nullptr);

  bool is_primitive() const {
    switch (kind) {
      case TypeKind::kInt: case TypeKind::kLong: case TypeKind::kFloat:
      case TypeKind::kDouble: case TypeKind::kBoolean: case TypeKind::kBit:
        return true;
      default:
        return false;
    }
  }
  bool is_numeric() const {
    return kind == TypeKind::kInt || kind == TypeKind::kLong ||
           kind == TypeKind::kFloat || kind == TypeKind::kDouble;
  }
  bool is_integral() const {
    return kind == TypeKind::kInt || kind == TypeKind::kLong ||
           kind == TypeKind::kBit;
  }
  bool is_floating() const {
    return kind == TypeKind::kFloat || kind == TypeKind::kDouble;
  }
  bool is_array_like() const {
    return kind == TypeKind::kArray || kind == TypeKind::kValueArray;
  }

  /// Recursively immutable? Primitives are values (§2.1); T[[]] is a value
  /// iff its element type is; classes/enums are values iff declared `value`.
  bool is_value() const;

  std::string to_string() const;
};

bool equal(const TypeRef& a, const TypeRef& b);

/// Widening numeric conversion allowed implicitly (int→long, int→float,
/// int→double, long→double, float→double, bit→int, bit→long).
bool widens_to(const TypeRef& from, const TypeRef& to);

/// The common type two numeric operands promote to, or nullptr if none.
TypeRef promote(const TypeRef& a, const TypeRef& b);

}  // namespace lm::lime
