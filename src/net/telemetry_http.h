// HTTP/1.0 front-end for the telemetry hub (ISSUE 5 tentpole §2).
//
// A deliberately small HTTP server — GET only, Connection: close, loopback
// listener — that mounts an obs::TelemetryHub on three endpoints:
//
//   GET /metrics  → Prometheus text exposition (format 0.0.4)
//   GET /healthz  → {"status":"ok"|...}; 200 when healthy, 503 degraded
//   GET /flight   → the process-wide FlightRecorder as Chrome-trace JSON
//
// The split keeps the dependency arrow intact: obs renders, net serves.
// Mounted by `lmc --telemetry-port=N` (runtime side) and `tools/lmdev
// --telemetry-port=N` (device-server side); scraped by tools/lmtop, the
// tests, and the check.sh soak. Prometheus et al. speak HTTP/1.x, so any
// stock scraper can point at it directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "obs/telemetry.h"

namespace lm::net {

class TelemetryServer {
 public:
  struct Options {
    /// TCP port; 0 picks an ephemeral port (read it back from port()).
    uint16_t port = 0;
    /// Per-request deadline — a wedged scraper must not pin a thread.
    int request_timeout_ms = 2000;
  };

  /// The hub must outlive the server.
  explicit TelemetryServer(const obs::TelemetryHub& hub)
      : TelemetryServer(hub, Options{}) {}
  TelemetryServer(const obs::TelemetryHub& hub, Options opts);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1, listens and spawns the accept thread. Throws
  /// TransportError when the port cannot be bound.
  void start();
  /// Stops accepting, drops connections, joins. Idempotent.
  void stop();

  uint16_t port() const { return port_; }
  const std::string& endpoint() const { return endpoint_; }
  /// Requests answered so far (any status).
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    Socket sock;
    std::thread th;
    /// Set by the serve thread when it is finished with `sock`; the accept
    /// loop only joins/destroys (and thereby closes) conns that flagged
    /// done — it must never probe `sock` while serve still owns it.
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve(Conn* conn);
  /// Routes one request: fills `body` (cleared first) and returns the
  /// status line ingredients. `body` is a recycled scratch string so the
  /// steady-state scrape path reuses capacity instead of allocating.
  struct Route {
    int status;
    const char* reason;
    const char* content_type;
  };
  Route respond(const std::string& request_line, std::string& body);
  std::string acquire_scratch();
  void release_scratch(std::string&& s);

  const obs::TelemetryHub& hub_;
  Options opts_;
  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  uint16_t port_ = 0;
  std::string endpoint_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_{0};
  /// Retired body-scratch strings; capped. Response framing itself goes
  /// through serde::wire_pool(), so a warm scraper holds both counters
  /// flat (telemetry_test pins this).
  std::mutex scratch_mu_;
  std::vector<std::string> scratch_;
};

/// Minimal HTTP/1.0 GET for lmtop, the tests and the benches — the repo
/// adds no curl dependency. Returns the status code and fills *body.
/// Throws TransportError on connect/transport failure or a response that
/// is not HTTP.
int http_get(const std::string& host, uint16_t port, const std::string& path,
             std::string* body, int timeout_ms = 2000);

}  // namespace lm::net
