#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace lm::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

/// Remaining budget in ms for poll(); -1 = block, 0 = already expired.
int poll_budget_ms(Deadline deadline) {
  if (deadline == no_deadline()) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - std::chrono::steady_clock::now())
                  .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(left, 1 << 30));
}

/// Waits for `events` on fd or throws on deadline expiry.
void wait_ready(int fd, short events, Deadline deadline, const char* what) {
  for (;;) {
    int budget = poll_budget_ms(deadline);
    if (budget == 0) throw TransportError(std::string(what) + " timed out");
    pollfd p{fd, events, 0};
    int rc = ::poll(&p, 1, budget);
    if (rc > 0) return;  // ready (or error/hup — the next syscall reports it)
    if (rc == 0) throw TransportError(std::string(what) + " timed out");
    if (errno != EINTR) fail(what);
  }
}

void set_common_options(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_in make_addr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // "localhost" is the one name worth resolving without dragging in a
    // resolver; anything else must be a dotted quad.
    if (host == "localhost") {
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else {
      throw TransportError("cannot parse address '" + host +
                           "' (use a dotted-quad IPv4 address)");
    }
  }
  return addr;
}

}  // namespace

Deadline no_deadline() { return Deadline::max(); }

Deadline deadline_in_ms(int64_t ms) {
  if (ms <= 0) return no_deadline();
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
  }
  return *this;
}

Socket Socket::connect(const std::string& host, uint16_t port,
                       Deadline deadline) {
  sockaddr_in addr = make_addr(host, port);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  Socket s(fd);
  // Non-blocking connect so the deadline applies to the handshake too.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) fail("connect to " + host);
  if (rc != 0) {
    wait_ready(fd, POLLOUT, deadline, "connect");
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      errno = err;
      fail("connect to " + host + ":" + std::to_string(port));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; poll gates every op
  set_common_options(fd);
  return s;
}

void Socket::send_all(std::span<const uint8_t> data, Deadline deadline) {
  size_t off = 0;
  while (off < data.size()) {
    wait_ready(fd_, POLLOUT, deadline, "send");
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
    } else if (n < 0 && errno != EINTR && errno != EAGAIN) {
      fail("send");
    }
  }
}

void Socket::recv_all(std::span<uint8_t> out, Deadline deadline) {
  size_t off = 0;
  while (off < out.size()) {
    wait_ready(fd_, POLLIN, deadline, "recv");
    ssize_t n = ::recv(fd_, out.data() + off, out.size() - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
    } else if (n == 0) {
      throw TransportError("connection closed by peer");
    } else if (errno != EINTR && errno != EAGAIN) {
      fail("recv");
    }
  }
}

size_t Socket::recv_some(std::span<uint8_t> out, Deadline deadline) {
  if (out.empty()) return 0;
  for (;;) {
    wait_ready(fd_, POLLIN, deadline, "recv");
    ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno != EINTR && errno != EAGAIN) fail("recv");
  }
}

void Socket::set_nonblocking() {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

size_t Socket::send_nb(std::span<const uint8_t> data) {
  if (data.empty()) return 0;
  for (;;) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno != EINTR) fail("send");
  }
}

size_t Socket::recv_nb(std::span<uint8_t> out, bool* eof) {
  *eof = false;
  if (out.empty()) return 0;
  for (;;) {
    ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) {
      *eof = true;
      return 0;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno != EINTR) fail("recv");
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    int e = errno;
    ::close(fd);
    errno = e;
    fail("bind/listen 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  fd_.store(fd, std::memory_order_release);
}

Listener::~Listener() { close(); }

Socket Listener::accept() {
  for (;;) {
    int lfd = fd_.load(std::memory_order_acquire);
    if (lfd < 0) return Socket();  // listener closed: clean shutdown
    int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) {
      set_common_options(fd);
      return Socket(fd);
    }
    if (fd_.load(std::memory_order_acquire) < 0 || errno == EBADF ||
        errno == EINVAL) {
      return Socket();
    }
    if (errno != EINTR && errno != ECONNABORTED) fail("accept");
  }
}

void Listener::close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace lm::net
