#include "net/poll_loop.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "net/client.h"
#include "obs/trace.h"

namespace lm::net {

PollLoop::PollLoop(RemoteSession& session) : session_(session) {
  if (::pipe(wake_fds_) != 0) {
    throw TransportError(std::string("pipe: ") + std::strerror(errno));
  }
  // Both ends nonblocking: the loop drains reads without stalling, and a
  // full pipe on the write side just means a wake is already pending.
  for (int fd : wake_fds_) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  thread_ = std::thread([this] { loop(); });
}

PollLoop::~PollLoop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake();
  if (thread_.joinable()) thread_.join();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
}

void PollLoop::submit(std::unique_ptr<Op> op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    incoming_.push_back(std::move(op));
  }
  wake();
}

void PollLoop::wake() {
  uint8_t b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
}

int PollLoop::poll_timeout_ms() const {
  Deadline d = no_deadline();
  if (writing_) d = std::min(d, writing_->deadline);
  for (const auto& [id, op] : awaiting_) d = std::min(d, op->deadline);
  if (d == no_deadline()) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  d - std::chrono::steady_clock::now())
                  .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(left, 60'000));
}

void PollLoop::loop() {
  // Lazy per-iteration naming (cheap pointer compare): the recorder is
  // installed per run, after this thread already exists.
  uint64_t named_trace = 0;
  for (;;) {
    if (obs::TraceRecorder* rec = obs::TraceRecorder::current();
        rec && rec->trace_id() != named_trace) {
      rec->set_thread_name("poll-loop");
      named_trace = rec->trace_id();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (!incoming_.empty()) {
        to_write_.push_back(std::move(incoming_.front()));
        incoming_.pop_front();
      }
      if (stop_) break;
    }
    if (!connected_ &&
        (writing_ || !to_write_.empty() || !awaiting_.empty())) {
      try {
        // Blocking dial + hello (bounded by connect_timeout_ms inside
        // dial), then flip to nonblocking for the pipelined phase.
        Socket s =
            session_.dial(deadline_in_ms(session_.opts_.connect_timeout_ms));
        s.set_nonblocking();
        conn_ = std::move(s);
        parser_.reset();
        connected_ = true;
      } catch (const TransportError& e) {
        fail_connection(e.what(), /*charge_queued=*/true);
        continue;
      }
    }
    pollfd fds[2];
    fds[0] = {wake_fds_[0], POLLIN, 0};
    nfds_t nfds = 1;
    if (connected_) {
      short ev = POLLIN;
      if (writing_ || !to_write_.empty()) ev |= POLLOUT;
      fds[1] = {conn_.fd(), ev, 0};
      nfds = 2;
    }
    int rc = ::poll(fds, nfds, poll_timeout_ms());
    if (rc < 0 && errno == EINTR) continue;
    if (fds[0].revents & POLLIN) {
      uint8_t buf[256];
      while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
      }
    }
    if (connected_ && nfds == 2) {
      try {
        if (fds[1].revents & (POLLOUT | POLLERR | POLLHUP)) flush_writes();
        if (connected_ && (fds[1].revents & (POLLIN | POLLERR | POLLHUP))) {
          drain_reads();
        }
      } catch (const TransportError& e) {
        fail_connection(e.what(), /*charge_queued=*/false);
      }
    }
    scan_deadlines();
  }
  fail_shutdown();
}

void PollLoop::flush_writes() {
  for (;;) {
    if (!writing_) {
      if (to_write_.empty()) return;
      writing_ = std::move(to_write_.front());
      to_write_.pop_front();
      writing_->written = 0;
      // The attempt's deadline starts at write start, mirroring the
      // fresh per-attempt deadline of the blocking retry loop.
      writing_->t0 = std::chrono::steady_clock::now();
      writing_->deadline = deadline_in_ms(session_.opts_.request_timeout_ms);
    }
    std::span<const uint8_t> rest(writing_->encoded);
    size_t n = conn_.send_nb(rest.subspan(writing_->written));
    if (n == 0) return;  // kernel buffer full; poll() waits for POLLOUT
    writing_->written += n;
    if (session_.c_bytes_sent_) session_.c_bytes_sent_->add(n);
    if (writing_->written == writing_->encoded.size()) {
      uint64_t id = writing_->request.request_id;
      awaiting_.emplace(id, std::move(writing_));
    }
  }
}

void PollLoop::drain_reads() {
  uint8_t buf[64 * 1024];
  for (;;) {
    bool eof = false;
    size_t n = conn_.recv_nb(buf, &eof);
    if (eof) throw TransportError("connection closed by peer");
    if (n == 0) return;  // nothing buffered; poll() waits for POLLIN
    if (session_.c_bytes_recv_) session_.c_bytes_recv_->add(n);
    parser_.feed(buf, n);
    while (auto f = parser_.next()) {
      auto it = awaiting_.find(f->request_id);
      // A miss can only be a server answering an id it was never sent on
      // this connection (poisoned predecessors never share a socket with
      // their retries); drop it rather than kill live exchanges.
      if (it == awaiting_.end()) continue;
      auto op = std::move(it->second);
      awaiting_.erase(it);
      op->done(nullptr, std::move(*f), op->t0,
               std::chrono::steady_clock::now());
    }
  }
}

void PollLoop::scan_deadlines() {
  if (!connected_) return;
  auto now = std::chrono::steady_clock::now();
  auto expired = [&](const std::unique_ptr<Op>& op) {
    return op->deadline != no_deadline() && op->deadline <= now;
  };
  bool any = writing_ && expired(writing_);
  for (const auto& [id, op] : awaiting_) any = any || expired(op);
  if (any) {
    // The server answers in order, so one stuck reply stalls everything
    // behind it: poison the whole connection and retry the written ops.
    fail_connection("request timed out", /*charge_queued=*/false);
  }
}

void PollLoop::fail_connection(const std::string& why, bool charge_queued) {
  connected_ = false;
  conn_.close();
  parser_.reset();
  std::vector<std::unique_ptr<Op>> victims;
  if (writing_) victims.push_back(std::move(writing_));
  for (auto& [id, op] : awaiting_) victims.push_back(std::move(op));
  awaiting_.clear();
  if (charge_queued) {
    for (auto& op : to_write_) victims.push_back(std::move(op));
    to_write_.clear();
  }
  for (auto& op : victims) {
    if (--op->attempts_left > 0) {
      if (session_.c_retries_) session_.c_retries_->add();
      op->written = 0;
      to_write_.push_back(std::move(op));
    } else {
      if (session_.c_failures_) session_.c_failures_->add();
      session_.mark_down(why);
      int attempts = 1 + std::max(0, session_.opts_.max_retries);
      op->done(std::make_exception_ptr(TransportError(
                   "request to " + session_.endpoint_ + " failed after " +
                   std::to_string(attempts) + " attempt(s): " + why)),
               Frame{}, {}, {});
    }
  }
}

void PollLoop::fail_shutdown() {
  std::vector<std::unique_ptr<Op>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& op : incoming_) victims.push_back(std::move(op));
    incoming_.clear();
  }
  for (auto& op : to_write_) victims.push_back(std::move(op));
  to_write_.clear();
  if (writing_) victims.push_back(std::move(writing_));
  for (auto& [id, op] : awaiting_) victims.push_back(std::move(op));
  awaiting_.clear();
  for (auto& op : victims) {
    op->done(std::make_exception_ptr(TransportError(
                 "request to " + session_.endpoint_ +
                 " abandoned: session shutting down")),
             Frame{}, {}, {});
  }
}

}  // namespace lm::net
