#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "net/poll_loop.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/byte_buffer.h"

namespace lm::net {

namespace {

std::string trace_id_hex(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string error_message(const Frame& f) {
  try {
    ByteReader r(f.payload);
    return r.str();
  } catch (...) {
    return "(malformed error payload)";
  }
}

}  // namespace

void parse_endpoint(const std::string& spec, std::string* host,
                    uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    throw TransportError("bad endpoint '" + spec + "' (expected host:port)");
  }
  *host = spec.substr(0, colon);
  int p = 0;
  try {
    p = std::stoi(spec.substr(colon + 1));
  } catch (...) {
    p = -1;
  }
  if (p <= 0 || p > 65535) {
    throw TransportError("bad port in endpoint '" + spec + "'");
  }
  *port = static_cast<uint16_t>(p);
}

RemoteSession::RemoteSession(std::string host, uint16_t port,
                             uint64_t fingerprint, SessionOptions opts,
                             obs::MetricsRegistry* metrics)
    : host_(std::move(host)),
      port_(port),
      endpoint_(host_ + ":" + std::to_string(port_)),
      fingerprint_(fingerprint),
      opts_(std::move(opts)) {
  if (metrics) {
    c_requests_ = &metrics->counter("net.requests");
    c_retries_ = &metrics->counter("net.request_retries");
    c_failures_ = &metrics->counter("net.request_failures");
    c_connects_ = &metrics->counter("net.connects");
    c_bytes_sent_ = &metrics->counter("net.bytes_sent");
    c_bytes_recv_ = &metrics->counter("net.bytes_received");
    c_pings_ = &metrics->counter("net.pings");
    c_ping_failures_ = &metrics->counter("net.ping_failures");
    c_endpoint_down_ = &metrics->counter("net.endpoint_down");
    c_heartbeat_misses_ = &metrics->counter("net.heartbeat_misses");
  }
}

RemoteSession::~RemoteSession() {
  // Stop the poll loop first: it dials and marks the session down through
  // machinery the rest of the teardown dismantles.
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    poll_loop_.reset();
  }
  stop_heartbeat_.store(true, std::memory_order_release);
  hb_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
}

PollLoop* RemoteSession::ensure_poll_loop() {
  std::lock_guard<std::mutex> lock(poll_mu_);
  if (!poll_loop_) poll_loop_ = std::make_unique<PollLoop>(*this);
  return poll_loop_.get();
}

Socket RemoteSession::dial(Deadline deadline) {
  // The whole retry loop is bounded by connect_timeout_ms (not the caller's
  // request deadline): when connects fail *instantly* — port closed, host
  // unreachable — backing off until a 30 s request deadline would make every
  // degradation path (attach to a dead endpoint, mid-stream fallback) stall
  // for the full request timeout.
  deadline = std::min(deadline, deadline_in_ms(opts_.connect_timeout_ms));
  int backoff = opts_.backoff_initial_ms;
  for (;;) {
    try {
      Socket s = Socket::connect(host_, port_, deadline);
      // Handshake: prove both ends compiled the same program before any
      // batch crosses.
      Frame hello = roundtrip(s, FrameType::kHello,
                              encode_hello({opts_.client_name, fingerprint_}),
                              deadline);
      if (hello.type != FrameType::kHelloOk) {
        throw RemoteError(endpoint_ + ": " + error_message(hello));
      }
      if (c_connects_) c_connects_->add();
      {
        std::lock_guard<std::mutex> lock(pool_mu_);
        if (ever_connected_) {
          reconnects_.fetch_add(1, std::memory_order_relaxed);
        }
        ever_connected_ = true;
      }
      return s;
    } catch (const RemoteError&) {
      // The server answered and said no (fingerprint mismatch, protocol
      // refusal) — redialing cannot change its mind.
      throw;
    } catch (const TransportError&) {
      if (std::chrono::steady_clock::now() +
              std::chrono::milliseconds(backoff) >=
          deadline) {
        throw;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, opts_.backoff_max_ms);
    }
  }
}

Socket RemoteSession::acquire(Deadline deadline) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      Socket s = std::move(pool_.back());
      pool_.pop_back();
      return s;
    }
  }
  return dial(deadline);
}

void RemoteSession::release(Socket s) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_.size() < opts_.pool_size) pool_.push_back(std::move(s));
  // else: s destructs, closing the surplus connection.
}

Frame RemoteSession::roundtrip(Socket& s, FrameType type,
                               std::vector<uint8_t> payload,
                               Deadline deadline, ExchangeInfo* info) {
  Frame req;
  req.type = type;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
    req.trace_id = rec->trace_id();  // trace context crosses the wire
  }
  req.payload = std::move(payload);
  auto t0 = std::chrono::steady_clock::now();
  write_frame(s, req, deadline);
  if (c_bytes_sent_) c_bytes_sent_->add(wire_size(req));
  Frame reply = read_frame(s, deadline);
  auto t1 = std::chrono::steady_clock::now();
  if (c_bytes_recv_) c_bytes_recv_->add(wire_size(reply));
  if (reply.request_id != req.request_id) {
    throw TransportError(endpoint_ + ": response id mismatch (got " +
                         std::to_string(reply.request_id) + ", expected " +
                         std::to_string(req.request_id) + ")");
  }
  handle_reply_telemetry(reply, t0, t1, info);
  return reply;
}

void RemoteSession::handle_reply_telemetry(
    const Frame& reply, std::chrono::steady_clock::time_point t0,
    std::chrono::steady_clock::time_point t1, ExchangeInfo* info) {
  if (reply.aux.empty()) return;
  ReplyTelemetry tele;
  try {
    tele = decode_telemetry(reply.aux);
  } catch (const std::exception&) {
    return;  // telemetry is advisory; never fail an exchange over it
  }
  clock_.update(session_us(t0), session_us(t1), tele.recv_ts_us,
                tele.send_ts_us);
  if (info) {
    info->has_telemetry = true;
    for (const auto& sp : tele.spans) {
      if (sp.name == "execute") info->server_execute_us = sp.dur_us;
    }
  }
  obs::TraceRecorder* rec = obs::TraceRecorder::current();
  if (!rec || reply.trace_id != rec->trace_id() || tele.spans.empty()) {
    return;
  }
  // Import the server spans into a per-endpoint lane of the client trace,
  // shifted by *this exchange's* midpoint offset. Using the same
  // exchange's offset (not the session-best estimate) is what guarantees
  // the aligned spans nest inside [t0, t1]: the server cannot have spent
  // longer processing than the client observed round-trip (see
  // obs::ClockOffsetEstimator).
  double offset = obs::ClockOffsetEstimator::offset_from(
      rec->to_us(t0), rec->to_us(t1), tele.recv_ts_us, tele.send_ts_us);
  uint32_t lane = rec->lane("remote " + endpoint_);
  std::string id_hex = trace_id_hex(reply.trace_id);
  for (const auto& sp : tele.spans) {
    rec->complete_lane(lane, "remote", "srv:" + sp.name, sp.ts_us - offset,
                       sp.dur_us,
                       obs::JsonArgs()
                           .add("endpoint", endpoint_)
                           .add("trace_id", id_hex)
                           .add("request_id", reply.request_id)
                           .str());
  }
}

std::vector<ArtifactListing> RemoteSession::list() {
  Deadline dl = deadline_in_ms(opts_.request_timeout_ms);
  Socket s = acquire(dl);
  Frame reply = roundtrip(s, FrameType::kList, {}, dl);
  if (reply.type != FrameType::kListOk) {
    throw RemoteError(endpoint_ + ": " + error_message(reply));
  }
  auto listing = decode_listing(reply.payload);
  release(std::move(s));
  return listing;
}

void RemoteSession::note_success(double rtt_us) {
  rtt_hist_.record_ns(static_cast<uint64_t>(rtt_us * 1e3));
  std::lock_guard<std::mutex> lock(rtt_mu_);
  rtt_ewma_us_ = rtt_ewma_us_ == 0 ? rtt_us
                                   : 0.75 * rtt_ewma_us_ + 0.25 * rtt_us;
  down_.store(false, std::memory_order_release);
  ping_misses_.store(0, std::memory_order_relaxed);
}

double RemoteSession::rtt_ewma_us() const {
  std::lock_guard<std::mutex> lock(rtt_mu_);
  return rtt_ewma_us_;
}

void RemoteSession::mark_down(const std::string& why) {
  bool was_down = down_.exchange(true, std::memory_order_acq_rel);
  if (!was_down) {
    if (c_endpoint_down_) c_endpoint_down_->add();
    obs::FlightRecorder::instance().record("fault", "endpoint-down",
                                           endpoint_ + ": " + why);
  }
  // Pooled connections to a dead endpoint are poison; drop them so the
  // next attempt dials fresh.
  std::lock_guard<std::mutex> lock(pool_mu_);
  pool_.clear();
}

std::vector<uint8_t> RemoteSession::process(const std::string& task_id,
                                            runtime::DeviceKind device,
                                            std::span<const uint8_t> batch,
                                            ExchangeInfo* info) {
  if (down_.load(std::memory_order_acquire)) {
    if (c_failures_) c_failures_->add();
    throw TransportError(endpoint_ + " is down (heartbeat)");
  }
  if (c_requests_) c_requests_->add();
  ProcessRequest p;
  p.task_id = task_id;
  p.device = device;
  p.batch.assign(batch.begin(), batch.end());
  std::vector<uint8_t> encoded = encode_process(p);

  const int attempts = 1 + std::max(0, opts_.max_retries);
  std::string last_error;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && c_retries_) c_retries_->add();
    Deadline dl = deadline_in_ms(opts_.request_timeout_ms);
    try {
      Socket s = acquire(dl);
      auto t0 = std::chrono::steady_clock::now();
      Frame reply = roundtrip(s, FrameType::kProcess, encoded, dl, info);
      auto t1 = std::chrono::steady_clock::now();
      if (reply.type != FrameType::kProcessOk) {
        if (c_failures_) c_failures_->add();
        throw RemoteError(endpoint_ + ": " + error_message(reply));
      }
      note_success(std::chrono::duration<double, std::micro>(t1 - t0).count());
      release(std::move(s));
      return std::move(reply.payload);
    } catch (const RemoteError&) {
      throw;  // the server answered; retrying cannot change the outcome
    } catch (const TransportError& e) {
      last_error = e.what();
    }
  }
  if (c_failures_) c_failures_->add();
  mark_down(last_error);
  throw TransportError("request to " + endpoint_ + " failed after " +
                       std::to_string(attempts) + " attempt(s): " +
                       last_error);
}

std::shared_ptr<PendingRpc> RemoteSession::process_async(
    const std::string& task_id, runtime::DeviceKind device,
    std::span<const uint8_t> batch, std::function<void()> on_done) {
  auto rpc = std::make_shared<PendingRpc>();
  if (down_.load(std::memory_order_acquire)) {
    // Fast-fail like process(), but through the pending handle so the
    // caller's completion path is the same as for in-flight failures.
    if (c_failures_) c_failures_->add();
    rpc->error = std::make_exception_ptr(
        TransportError(endpoint_ + " is down (heartbeat)"));
    on_done();
    return rpc;
  }
  if (c_requests_) c_requests_->add();
  ProcessRequest p;
  p.task_id = task_id;
  p.device = device;
  p.batch.assign(batch.begin(), batch.end());

  auto op = std::make_unique<PollLoop::Op>();
  op->request.type = FrameType::kProcess;
  op->request.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
    op->request.trace_id = rec->trace_id();
  }
  op->request.payload = encode_process(p);
  op->encoded = encode_frame(op->request);
  op->attempts_left = 1 + std::max(0, opts_.max_retries);
  op->done = [rpc, cb = std::move(on_done)](
                 std::exception_ptr err, Frame reply,
                 std::chrono::steady_clock::time_point t0,
                 std::chrono::steady_clock::time_point t1) {
    rpc->error = err;
    rpc->reply = std::move(reply);
    rpc->t0 = t0;
    rpc->t1 = t1;
    cb();
  };
  ensure_poll_loop()->submit(std::move(op));
  return rpc;
}

std::vector<uint8_t> RemoteSession::take(PendingRpc& rpc,
                                         ExchangeInfo* info) {
  if (rpc.error) std::rethrow_exception(rpc.error);
  if (rpc.reply.type != FrameType::kProcessOk) {
    if (c_failures_) c_failures_->add();
    throw RemoteError(endpoint_ + ": " + error_message(rpc.reply));
  }
  note_success(
      std::chrono::duration<double, std::micro>(rpc.t1 - rpc.t0).count());
  // Telemetry is handled here — on the worker that collects the batch —
  // rather than on the poll thread, so span import sees the worker's
  // installed TraceRecorder just like the blocking path.
  handle_reply_telemetry(rpc.reply, rpc.t0, rpc.t1, info);
  return std::move(rpc.reply.payload);
}

std::vector<std::vector<uint8_t>> RemoteSession::process_pipelined(
    const std::string& task_id, runtime::DeviceKind device,
    const std::vector<std::vector<uint8_t>>& batches) {
  Deadline dl = deadline_in_ms(opts_.request_timeout_ms);
  Socket s = acquire(dl);
  uint64_t trace_id = 0;
  if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
    trace_id = rec->trace_id();
  }
  std::vector<uint64_t> ids;
  std::vector<std::chrono::steady_clock::time_point> sent_at;
  ids.reserve(batches.size());
  sent_at.reserve(batches.size());
  for (const auto& b : batches) {
    ProcessRequest p;
    p.task_id = task_id;
    p.device = device;
    p.batch = b;
    Frame req;
    req.type = FrameType::kProcess;
    req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    req.trace_id = trace_id;
    req.payload = encode_process(p);
    sent_at.push_back(std::chrono::steady_clock::now());
    write_frame(s, req, dl);
    if (c_bytes_sent_) c_bytes_sent_->add(wire_size(req));
    ids.push_back(req.request_id);
  }
  std::vector<std::vector<uint8_t>> out;
  out.reserve(batches.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    Frame reply = read_frame(s, dl);
    auto t1 = std::chrono::steady_clock::now();
    if (c_bytes_recv_) c_bytes_recv_->add(wire_size(reply));
    if (reply.request_id != ids[i]) {
      throw TransportError(endpoint_ + ": pipelined response out of order");
    }
    if (reply.type != FrameType::kProcessOk) {
      throw RemoteError(endpoint_ + ": " + error_message(reply));
    }
    // The exchange window of a pipelined request is its own write → its
    // own read: later requests were written before this reply arrived, so
    // each reply still brackets its server spans.
    handle_reply_telemetry(reply, sent_at[i], t1, nullptr);
    out.push_back(std::move(reply.payload));
  }
  if (c_requests_) c_requests_->add(ids.size());
  release(std::move(s));
  return out;
}

void RemoteSession::collect_telemetry(
    std::vector<obs::GaugeSample>& out) const {
  std::vector<std::pair<std::string, std::string>> labels = {
      {"endpoint", endpoint_}};
  out.emplace_back("remote.alive", alive() ? 1.0 : 0.0, labels);
  out.emplace_back("remote.rtt_ewma_us", rtt_ewma_us(), labels);
  out.emplace_back("remote.reconnects", static_cast<double>(reconnects()),
                   labels);
  out.emplace_back("remote.ping_misses",
                   static_cast<double>(
                       ping_misses_.load(std::memory_order_relaxed)),
                   labels);
  out.emplace_back("remote.clock_offset_us", clock_.offset_us(), labels);
  out.emplace_back("remote.clock_rtt_us", clock_.best_rtt_us(), labels);
  size_t idle;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    idle = pool_.size();
  }
  out.emplace_back("remote.pool_idle", static_cast<double>(idle), labels);
}

void RemoteSession::collect_histograms(
    std::vector<obs::HistogramSample>& out) const {
  out.push_back(obs::HistogramSample::from("remote.rtt_us", rtt_hist_,
                                           {{"endpoint", endpoint_}}));
}

void RemoteSession::start_heartbeat() {
  if (heartbeat_.joinable()) return;
  stop_heartbeat_.store(false, std::memory_order_release);
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

void RemoteSession::heartbeat_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock,
                      std::chrono::milliseconds(opts_.heartbeat_interval_ms),
                      [this] {
                        return stop_heartbeat_.load(std::memory_order_acquire);
                      });
    }
    if (stop_heartbeat_.load(std::memory_order_acquire)) return;
    if (c_pings_) c_pings_->add();
    try {
      // Short deadline: a ping is tiny, so anything slower than the
      // heartbeat interval is as bad as down.
      Deadline dl = deadline_in_ms(opts_.heartbeat_interval_ms);
      Socket s = acquire(dl);
      auto t0 = std::chrono::steady_clock::now();
      Frame reply = roundtrip(s, FrameType::kPing, {}, dl);
      auto t1 = std::chrono::steady_clock::now();
      if (reply.type != FrameType::kPong) {
        throw TransportError("unexpected ping reply");
      }
      note_success(std::chrono::duration<double, std::micro>(t1 - t0).count());
      release(std::move(s));
    } catch (const TransportError& e) {
      if (c_ping_failures_) c_ping_failures_->add();
      // Counted separately from ping_failures: the exporter's
      // net.heartbeat_misses series is the "how close to being declared
      // down" signal, and it must never silently under-report.
      if (c_heartbeat_misses_) c_heartbeat_misses_->add();
      int misses = ping_misses_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (misses >= opts_.heartbeat_misses) mark_down(e.what());
    }
  }
}

}  // namespace lm::net
