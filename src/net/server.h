// DeviceServer: hosts a compiled program's device artifacts over TCP.
//
// The server side of the remote-device transport (DESIGN.md §9). It owns a
// listener plus one thread per connection; each connection is served
// sequentially in request order (responses echo the request id, so a
// pipelining client can stuff many kProcess frames down one connection and
// read the replies back in sequence). Artifacts live in the program's
// store; a per-artifact mutex serializes concurrent batches from different
// connections because device simulators (the RTL filter in particular) are
// stateful across process() calls.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "runtime/liquid_compiler.h"

namespace lm::net {

class DeviceServer {
 public:
  struct Options {
    /// TCP port; 0 picks an ephemeral port (read it back from port()).
    uint16_t port = 0;
    std::string name = "lmdev";
    /// Fault injection: after serving this many kProcess requests the
    /// server abruptly drops every connection and stops accepting — the
    /// deterministic stand-in for kill -9 mid-stream. 0 disables.
    uint64_t fail_after = 0;
  };

  /// The program must outlive the server. (Two overloads, not a default
  /// `= {}` argument: nested-class member initializers are not usable in
  /// default arguments of the enclosing class.)
  explicit DeviceServer(const runtime::CompiledProgram& program)
      : DeviceServer(program, Options{}) {}
  DeviceServer(const runtime::CompiledProgram& program, Options opts);
  ~DeviceServer();

  DeviceServer(const DeviceServer&) = delete;
  DeviceServer& operator=(const DeviceServer&) = delete;

  /// Binds, listens and spawns the accept thread. Throws TransportError
  /// when the port cannot be bound.
  void start();

  /// Stops accepting, drops every connection and joins all threads.
  /// Idempotent.
  void stop();

  /// Simulated crash: closes the listener and every connection socket
  /// *without* joining — in-flight requests die mid-exchange exactly as
  /// they would under SIGKILL. stop() (or the destructor) joins later.
  void abrupt_stop();

  uint16_t port() const { return port_; }
  const std::string& endpoint() const { return endpoint_; }
  uint64_t fingerprint() const { return fingerprint_; }
  size_t artifact_count() const { return listing_.size(); }
  /// Artifacts addressable by content key over kArtifactGet (the compile
  /// service): populated from the program's artifact_keys map, so it is
  /// empty unless the program was compiled with caching active.
  size_t compile_service_entries() const { return artifact_payloads_.size(); }
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  /// True once abrupt_stop() ran (including via fail_after).
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Server-local metrics (requests, errors, bytes). Safe to scrape from
  /// another thread while connections are being served.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Device-execute latency across every served batch (the time under the
  /// artifact lock, excluding decode/queue/encode).
  const obs::LatencyHistogram& exec_histogram() const { return exec_hist_; }
  int64_t active_connections() const {
    return active_conns_.load(std::memory_order_relaxed);
  }
  /// Live gauges for a TelemetryHub collector (lmdev's exporter).
  /// `compat` re-emits the pre-ISSUE-10 `server.exec_p50_us`/
  /// `server.exec_p99_us` opaque gauges alongside the native histogram —
  /// one release of overlap for dashboards pinned to the old names
  /// (lmdev --telemetry-compat), then they go away.
  void collect_telemetry(std::vector<obs::GaugeSample>& out,
                         bool compat = false) const;
  /// Native-histogram series for TelemetryHub::add_histograms:
  /// `server.exec_us` — fleet-side percentile math needs real buckets,
  /// not pre-baked percentile gauges that cannot be merged.
  void collect_histograms(std::vector<obs::HistogramSample>& out) const;

 private:
  struct Conn {
    Socket sock;
    std::thread th;
  };

  void accept_loop();
  void serve(Conn* conn);
  /// Builds the reply to one request frame (never throws; artifact
  /// failures become kError frames). Fills `tele` with server-side spans
  /// for traced kProcess requests; serve() adds the receive/send
  /// timestamps and piggybacks the block on the reply.
  Frame handle(const Frame& req, ReplyTelemetry& tele);
  void drop_all_connections();
  /// Microseconds since this server was constructed — the "server clock"
  /// every ReplyTelemetry timestamp is expressed in.
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  const runtime::CompiledProgram& program_;
  Options opts_;
  uint64_t fingerprint_ = 0;
  std::vector<ArtifactListing> listing_;
  /// Compile-service inventory: content key → (backend, serialized
  /// artifact payload), pre-serialized at construction so kArtifactGet is
  /// a map lookup under no lock (the map is immutable once built).
  std::unordered_map<uint64_t, std::pair<std::string, std::vector<uint8_t>>>
      artifact_payloads_;
  /// One lock per served artifact (see file comment).
  std::unordered_map<runtime::Artifact*, std::unique_ptr<std::mutex>> locks_;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  uint16_t port_ = 0;
  std::string endpoint_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> served_{0};
  std::atomic<int64_t> active_conns_{0};

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  obs::MetricsRegistry metrics_;
  obs::MetricsRegistry::Counter& c_requests_ =
      metrics_.counter("server.requests");
  obs::MetricsRegistry::Counter& c_errors_ = metrics_.counter("server.errors");
  obs::MetricsRegistry::Counter& c_bytes_in_ =
      metrics_.counter("server.bytes_received");
  obs::MetricsRegistry::Counter& c_bytes_out_ =
      metrics_.counter("server.bytes_sent");
  obs::MetricsRegistry::Counter& c_artifact_fetches_ =
      metrics_.counter("server.artifact_fetches");
  obs::LatencyHistogram exec_hist_;
};

}  // namespace lm::net
