#include "net/scraper.h"

#include <chrono>
#include <cstdlib>

#include "net/client.h"
#include "net/socket.h"
#include "net/telemetry_http.h"

namespace lm::net {

std::vector<std::string> split_endpoint_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',' || c == ' ' || c == '\t' || c == '\n') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

TelemetryScraper::TelemetryScraper(std::vector<std::string> endpoints,
                                   Options opts)
    : endpoints_(std::move(endpoints)),
      opts_(opts),
      view_([&] {
        obs::FleetView::Options vo;
        vo.staleness_us =
            opts.staleness_factor * static_cast<double>(opts.interval_ms) *
            1e3;
        return vo;
      }()) {
  for (const std::string& ep : endpoints_) view_.track(ep);
}

TelemetryScraper::~TelemetryScraper() { stop(); }

void TelemetryScraper::start() {
  stopping_.store(false, std::memory_order_release);
  poll_thread_ = std::thread([this] { poll_loop(); });
}

void TelemetryScraper::stop() {
  stopping_.store(true, std::memory_order_release);
  if (poll_thread_.joinable()) poll_thread_.join();
}

void TelemetryScraper::poll_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    scrape_once();
    // Sleep in small slices so stop() is prompt even at slow intervals.
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(opts_.interval_ms);
    while (!stopping_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

void TelemetryScraper::scrape_once() {
  std::vector<std::thread> workers;
  workers.reserve(endpoints_.size());
  for (const std::string& ep : endpoints_) {
    workers.emplace_back([this, &ep] {
      // Each worker ingests its own reading immediately: one wedged
      // endpoint delays only its own row, never the others'.
      view_.ingest(scrape_endpoint(ep));
    });
  }
  for (std::thread& w : workers) w.join();
  cycles_.fetch_add(1, std::memory_order_relaxed);
}

obs::FleetView::Reading TelemetryScraper::scrape_endpoint(
    const std::string& endpoint) {
  obs::FleetView::Reading r;
  r.endpoint = endpoint;
  r.now_us = obs::FleetView::now_us();

  std::string host;
  uint16_t port = 0;
  try {
    parse_endpoint(endpoint, &host, &port);
  } catch (const std::exception& e) {
    r.error = e.what();
    return r;
  }

  double t0 = obs::FleetView::now_us();
  std::string body;
  try {
    int status = http_get(host, port, "/metrics", &body, opts_.timeout_ms);
    if (status != 200) {
      r.error = "/metrics returned " + std::to_string(status);
      r.now_us = obs::FleetView::now_us();
      return r;
    }
  } catch (const TransportError& e) {
    r.error = e.what();
    r.now_us = obs::FleetView::now_us();
    return r;
  }
  r.rtt_us = obs::FleetView::now_us() - t0;

  std::string perr;
  if (!obs::parse_exposition(body, &r.scrape, &perr)) {
    r.error = "bad exposition: " + perr;
    r.scrape = obs::ParsedScrape{};
    r.now_us = obs::FleetView::now_us();
    return r;
  }

  // /healthz: a 503 is a *successful* scrape of an unhealthy server — the
  // health score drops but the data is live. Only transport failure makes
  // the endpoint down.
  try {
    std::string hbody;
    int status = http_get(host, port, "/healthz", &hbody, opts_.timeout_ms);
    r.healthy = status == 200;
  } catch (const TransportError& e) {
    r.error = std::string("healthz: ") + e.what();
    r.scrape = obs::ParsedScrape{};
    r.now_us = obs::FleetView::now_us();
    return r;
  }

  r.ok = true;
  r.now_us = obs::FleetView::now_us();
  return r;
}

FleetCheckResult run_fleet_check(const std::vector<std::string>& endpoints,
                                 obs::SloWatchdog* watchdog, int cycles,
                                 TelemetryScraper::Options opts) {
  if (cycles < 2) cycles = 2;  // rates need two scrapes
  TelemetryScraper scraper(endpoints, opts);
  FleetCheckResult result;
  for (int i = 0; i < cycles; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.interval_ms));
    }
    scraper.scrape_once();
    obs::FleetSnapshot snap = scraper.snapshot();
    if (watchdog) {
      std::vector<obs::SloViolation> v = watchdog->evaluate(snap);
      result.violations.insert(result.violations.end(), v.begin(), v.end());
    }
    if (i + 1 == cycles) result.snapshot = std::move(snap);
  }
  return result;
}

}  // namespace lm::net
