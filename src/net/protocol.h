// Payload codecs for the remote-device protocol (DESIGN.md §9).
//
// Payloads ride inside frames (frame.h) and are encoded with the same
// ByteWriter/ByteReader primitives as the universal wire format — strings
// are u32-length-prefixed, integers little-endian. Batches of stream
// elements are serde value arrays (serde/batch.h), so the bytes a batch
// occupies on the socket are exactly the bytes it occupies crossing the
// in-process native boundary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/store.h"

namespace lm::net {

/// kHello payload: who is calling and what program they compiled.
struct HelloRequest {
  std::string client;
  /// FNV-1a over the sorted CPU-artifact manifests (program_fingerprint).
  /// Client and server must agree or substitution would be unsound — the
  /// artifacts would implement different tasks.
  uint64_t fingerprint = 0;
};

/// kHelloOk payload.
struct HelloReply {
  std::string server;
  uint32_t artifact_count = 0;
};

/// One artifact the server offers (kListOk payload holds a u32 count then
/// this record per artifact).
struct ArtifactListing {
  std::string task_id;
  runtime::DeviceKind device = runtime::DeviceKind::kCpu;
  int arity = 1;
  /// The manifest's to_string() — a human-readable signature used for
  /// listings and a belt-and-braces compatibility check.
  std::string signature;
};

/// kProcess payload: run one batch through (task_id, device).
struct ProcessRequest {
  std::string task_id;
  runtime::DeviceKind device = runtime::DeviceKind::kCpu;
  /// serde::pack_batch of the input elements.
  std::vector<uint8_t> batch;
};

std::vector<uint8_t> encode_hello(const HelloRequest& h);
HelloRequest decode_hello(std::span<const uint8_t> payload);

std::vector<uint8_t> encode_hello_reply(const HelloReply& h);
HelloReply decode_hello_reply(std::span<const uint8_t> payload);

std::vector<uint8_t> encode_listing(const std::vector<ArtifactListing>& ls);
std::vector<ArtifactListing> decode_listing(std::span<const uint8_t> payload);

std::vector<uint8_t> encode_process(const ProcessRequest& p);
ProcessRequest decode_process(std::span<const uint8_t> payload);

/// kArtifactGet payload: the compile-service request (DESIGN.md §14). The
/// content key is the cache::artifact_key of the canonical IR — it fully
/// determines the artifact bytes, so no IR ships over the wire. backend and
/// task_id ride along for validation and server-side logging.
struct ArtifactGetRequest {
  uint64_t key = 0;
  std::string backend;  // cache::kBackendBytecode / kBackendGpu / kBackendFpga
  std::string task_id;
};

std::vector<uint8_t> encode_artifact_get(const ArtifactGetRequest& a);
ArtifactGetRequest decode_artifact_get(std::span<const uint8_t> payload);

/// One server-side span, timestamped on the *server's* clock in
/// microseconds since the DeviceServer's construction. The client shifts
/// it onto its own timeline with the NTP-midpoint offset of the same
/// exchange (obs::ClockOffsetEstimator).
struct ServerSpan {
  std::string name;  // "decode" | "queue" | "execute" | "encode"
  double ts_us = 0;
  double dur_us = 0;
};

/// The aux telemetry block a server piggybacks on replies (frame.h flags
/// bit 0). Every reply carries the receive/send timestamps — two f64s that
/// feed the clock-offset estimator from ordinary heartbeats; spans are
/// only populated for traced (trace_id != 0) kProcess requests.
struct ReplyTelemetry {
  double recv_ts_us = 0;  // request fully read off the socket
  double send_ts_us = 0;  // reply about to be written
  std::vector<ServerSpan> spans;
};

std::vector<uint8_t> encode_telemetry(const ReplyTelemetry& t);
ReplyTelemetry decode_telemetry(std::span<const uint8_t> aux);

/// The program identity both ends hash at hello time: FNV-1a64 over every
/// CPU artifact manifest (sorted by task id). CPU artifacts exist for every
/// task on both sides regardless of --no-gpu/--no-fpga flags, so the
/// fingerprint is device-configuration-independent.
uint64_t program_fingerprint(const runtime::ArtifactStore& store);

/// The listing a server built from its store: every non-CPU artifact (the
/// CPU ones are not worth a network hop — every client already has them).
std::vector<ArtifactListing> store_listing(
    const runtime::ArtifactStore& store);

}  // namespace lm::net
