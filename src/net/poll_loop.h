// PollLoop: the nonblocking half of the remote transport.
//
// One poll thread per RemoteSession services asynchronous exchanges. Ops
// arrive pre-encoded with a completion callback; the loop dials lazily
// (blocking dial + hello, then O_NONBLOCK), pipelines writes down a single
// connection, reassembles replies with FrameParser, and matches them to
// in-flight ops by request id (the server answers in request order, so one
// connection carries any number of overlapping exchanges). A runtime
// worker that issues an RPC therefore parks a *continuation*, not a
// thread: the executor keeps stepping other tasks on the same pool while
// the reply is in flight.
//
// Failure semantics mirror the blocking path (RemoteSession::process):
// a connection error — hard socket error, malformed stream, peer EOF, or
// an expired per-op deadline — poisons the connection and charges one
// attempt to every op written on it; survivors are re-sent on a freshly
// dialed connection (artifacts are pure, so at-least-once re-execution is
// safe), and exhausted ops complete with TransportError and mark the
// endpoint down. A dial failure additionally charges the ops queued
// behind it, matching the sync path where acquire() is part of the
// attempt. kError replies complete normally — the caller raises
// RemoteError, and a deterministic refusal is never retried.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"

namespace lm::net {

class RemoteSession;

class PollLoop {
 public:
  /// Completion callback: fired exactly once from the poll thread, either
  /// with a reply frame (err == nullptr) or with the transport failure.
  /// t0/t1 bracket a successful exchange (write start / reply arrival).
  using Done = std::function<void(std::exception_ptr err, Frame reply,
                                  std::chrono::steady_clock::time_point t0,
                                  std::chrono::steady_clock::time_point t1)>;

  struct Op {
    Frame request;                 // request_id must already be assigned
    std::vector<uint8_t> encoded;  // encode_frame(request)
    int attempts_left = 1;         // 1 + max_retries at submission
    Done done;

    // Poll-thread state.
    Deadline deadline{};  // set when the write starts (per-attempt budget)
    std::chrono::steady_clock::time_point t0{};
    size_t written = 0;
  };

  /// Starts the poll thread. The session must outlive the loop (it owns
  /// it) — dial, mark_down and the metrics counters are borrowed from it.
  explicit PollLoop(RemoteSession& session);
  /// Fails every outstanding op ("session shutting down") and joins.
  ~PollLoop();

  PollLoop(const PollLoop&) = delete;
  PollLoop& operator=(const PollLoop&) = delete;

  /// Hands one op to the poll thread. Never blocks on the network.
  void submit(std::unique_ptr<Op> op);

 private:
  void loop();
  void flush_writes();
  void drain_reads();
  void scan_deadlines();
  /// Tears down the connection and charges an attempt to every op written
  /// on it (plus the queued ops when `charge_queued` — a dial failure).
  void fail_connection(const std::string& why, bool charge_queued);
  void fail_shutdown();
  int poll_timeout_ms() const;
  void wake();

  RemoteSession& session_;

  std::mutex mu_;
  std::deque<std::unique_ptr<Op>> incoming_;
  bool stop_ = false;
  /// Self-pipe: submit()/~PollLoop write a byte to interrupt poll().
  int wake_fds_[2] = {-1, -1};

  // Poll-thread-only state.
  Socket conn_;
  bool connected_ = false;
  std::deque<std::unique_ptr<Op>> to_write_;  // queued, not yet on the wire
  std::unique_ptr<Op> writing_;               // partially written
  std::map<uint64_t, std::unique_ptr<Op>> awaiting_;  // written, by id
  FrameParser parser_;

  std::thread thread_;  // last member: joined before the state it uses dies
};

}  // namespace lm::net
