// Compile-service client: fetch compiled artifacts by content key.
//
// The client half of the kArtifactGet/kArtifactOk exchange (DESIGN.md §14).
// An lmc that is about to compile a program asks an lmdev peer for each
// artifact's content key first; a hit ships the serialized artifact bytes
// and the local backend compile is skipped entirely. The service is an
// accelerator, never a dependency: every failure mode — refused
// connection, unknown key, timeout, malformed reply — returns std::nullopt
// and the caller compiles locally.
//
// The connection handshakes with fingerprint 0 (the compile-service
// wildcard): this client has not compiled anything, so there is no program
// fingerprint to present, and none is needed — content keys self-validate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.h"

namespace lm::net {

/// One lazily-connected compile-service session. Not thread-safe — the
/// compiler driver fetches sequentially. A transport error drops the
/// connection; the next fetch reconnects once.
class CompileServiceClient {
 public:
  CompileServiceClient(std::string host, uint16_t port,
                       int64_t timeout_ms = 2000);

  /// The serialized artifact for (key, backend), or std::nullopt on any
  /// failure (the caller falls back to compiling locally).
  std::optional<std::vector<uint8_t>> fetch(uint64_t key,
                                            const std::string& backend,
                                            const std::string& task_id);

  uint64_t fetched() const { return fetched_; }
  uint64_t failed() const { return failed_; }
  const std::string& endpoint() const { return endpoint_; }

 private:
  bool ensure_connected();

  std::string host_;
  uint16_t port_;
  int64_t timeout_ms_;
  std::string endpoint_;
  Socket sock_;
  bool connected_ = false;
  uint64_t next_id_ = 1;
  uint64_t fetched_ = 0;
  uint64_t failed_ = 0;
};

}  // namespace lm::net
