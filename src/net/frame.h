// Length-prefixed framing for the remote-device protocol (DESIGN.md §9).
//
// Every message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic       'LMRP' (0x4C 0x4D 0x52 0x50 on the wire)
//   4       1     version     kProtocolVersion
//   5       1     type        FrameType
//   6       2     flags       bit 0: aux telemetry block follows payload;
//                             all other bits reserved, must be 0
//   8       8     request_id  echoed verbatim in the response
//   16      8     trace_id    client trace context (0 = untraced); echoed
//                             in the response so imported spans can be
//                             matched to the trace that caused them
//   24      4     payload_len bytes of payload that follow
//   28      …     payload     type-specific (see protocol.h)
//   …       4     aux_len     only when flags bit 0 is set
//   …       …     aux         telemetry block (protocol.h ReplyTelemetry)
//
// All integers little-endian (the byte order of every serde scalar — one
// endianness for the whole stack). request_id lets a client pipeline many
// requests down one connection and match responses by id; the server
// answers in request order, so ids double as a sequencing check.
//
// v2 (this layout) added trace_id and the aux block; v1 peers are
// rejected by the version check with an explicit mismatch error — the
// client and server ship from one tree, so there is no mixed-version
// deployment to stay compatible with.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/socket.h"

namespace lm::net {

inline constexpr uint32_t kFrameMagic = 0x504D524C;  // "LMRP" little-endian
inline constexpr uint8_t kProtocolVersion = 2;
inline constexpr size_t kFrameHeaderSize = 28;
/// Upper bound on a frame payload. Generous (a 4096-element batch of f64
/// is 32 KiB) but finite, so a corrupt or hostile length prefix cannot make
/// the receiver allocate unbounded memory.
inline constexpr uint32_t kMaxPayload = 64u << 20;
/// Upper bound on the aux telemetry block — a handful of spans, never
/// batch-sized.
inline constexpr uint32_t kMaxAux = 1u << 20;

/// flags bit 0: a u32-length-prefixed aux telemetry block follows the
/// payload. Telemetry rides out-of-band so every payload codec keeps its
/// exact PR-4 layout.
inline constexpr uint16_t kFlagAuxTelemetry = 0x1;

enum class FrameType : uint8_t {
  kHello = 1,      // client → server: name + program fingerprint
  kHelloOk = 2,    // server → client: server name + artifact count
  kList = 3,       // client → server: enumerate served artifacts
  kListOk = 4,     // server → client: the listing
  kProcess = 5,    // client → server: run one batch through an artifact
  kProcessOk = 6,  // server → client: the output batch
  kError = 7,      // server → client: str message (request failed)
  kPing = 8,       // liveness probe, empty payload
  kPong = 9,       // liveness reply, empty payload
  // Compile service (DESIGN.md §14): fetch a compiled artifact by content
  // key instead of recompiling it locally.
  kArtifactGet = 10,  // client → server: key + backend + task id
  kArtifactOk = 11,   // server → client: the serialized artifact payload
};

const char* to_string(FrameType t);

struct Frame {
  FrameType type = FrameType::kError;
  uint64_t request_id = 0;
  /// Client trace context. Requests carry the installed TraceRecorder's
  /// id (or 0); replies echo the request's.
  uint64_t trace_id = 0;
  std::vector<uint8_t> payload;
  /// Optional telemetry block (empty = absent). Encoded/decoded by
  /// protocol.h's ReplyTelemetry codec.
  std::vector<uint8_t> aux;
};

/// Bytes this frame occupies on the wire (header + payload + aux framing).
size_t wire_size(const Frame& f);

/// Serializes one frame to its wire bytes (the buffer write_frame sends).
/// Throws TransportError when payload/aux exceed the protocol caps.
std::vector<uint8_t> encode_frame(const Frame& f);

/// Sends one frame (header + payload [+ aux]) before `deadline`.
void write_frame(Socket& s, const Frame& f, Deadline deadline);

/// Receives one frame, validating magic/version/flags/lengths. Throws
/// TransportError on timeout, EOF, or a malformed header.
Frame read_frame(Socket& s, Deadline deadline);

/// Incremental frame decoder for nonblocking transports. feed() raw bytes
/// as they arrive off the socket; next() yields completed frames, applying
/// exactly read_frame's validation. A malformed stream throws
/// TransportError from next() — the connection must then be discarded
/// (there is no way to resynchronize a byte stream).
class FrameParser {
 public:
  void feed(const uint8_t* data, size_t n);
  /// The next complete frame, or nullopt until more bytes arrive.
  std::optional<Frame> next();
  /// Drops buffered bytes (a fresh connection starts mid-stream clean).
  void reset();

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix of buf_, compacted opportunistically
};

}  // namespace lm::net
