// Wires remote device servers into a runtime: dials every endpoint in
// RuntimeConfig::remote_endpoints, lists the artifacts each serves, and
// registers a RemoteArtifact proxy per listing so they join the
// substitution candidate pool. Lives here — not in the runtime — so
// lm_runtime never depends on lm_net; tools that want remote devices link
// lm_net and call this once after constructing the runtime.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/liquid_compiler.h"
#include "runtime/liquid_runtime.h"

namespace lm::net {

class RemoteSession;

struct AttachResult {
  /// Remote artifacts registered across all endpoints.
  size_t artifacts = 0;
  /// Endpoints that answered the hello + list exchange.
  std::vector<std::string> endpoints_ok;
  /// One "endpoint: what went wrong" line per endpoint that did not.
  std::vector<std::string> errors;
  /// The live sessions behind endpoints_ok, in the same order. Tools that
  /// mount a telemetry exporter register each session's gauge collector
  /// (RTT, reconnects, clock offset) and health component from here; the
  /// proxies co-own the sessions, so holding this does not extend their
  /// lifetime obligations.
  std::vector<std::shared_ptr<RemoteSession>> sessions;
};

/// Attaches every configured endpoint. Per-endpoint failures (unreachable,
/// fingerprint mismatch) are collected, not thrown — a missing device
/// server degrades to local execution, it doesn't abort the program.
/// `program` must be the same compiled program `rt` was built over (its
/// store supplies the parameter/return types remote proxies serialize
/// with, and its fingerprint must match the server's).
AttachResult attach_remote_devices(runtime::LiquidRuntime& rt,
                                   const runtime::CompiledProgram& program);

}  // namespace lm::net
