#include "net/compile_client.h"

#include "net/frame.h"
#include "net/protocol.h"
#include "obs/trace.h"

namespace lm::net {

CompileServiceClient::CompileServiceClient(std::string host, uint16_t port,
                                           int64_t timeout_ms)
    : host_(std::move(host)),
      port_(port),
      timeout_ms_(timeout_ms),
      endpoint_(host_ + ":" + std::to_string(port_)) {}

bool CompileServiceClient::ensure_connected() {
  if (connected_) return true;
  try {
    sock_ = Socket::connect(host_, port_, deadline_in_ms(timeout_ms_));
    Frame hello;
    hello.type = FrameType::kHello;
    hello.request_id = next_id_++;
    hello.payload = encode_hello({"lmc-compile-client", /*fingerprint=*/0});
    write_frame(sock_, hello, deadline_in_ms(timeout_ms_));
    Frame reply = read_frame(sock_, deadline_in_ms(timeout_ms_));
    if (reply.type != FrameType::kHelloOk) return false;
    connected_ = true;
    return true;
  } catch (const TransportError&) {
    sock_.close();
    return false;
  }
}

std::optional<std::vector<uint8_t>> CompileServiceClient::fetch(
    uint64_t key, const std::string& backend, const std::string& task_id) {
  if (!ensure_connected()) {
    ++failed_;
    return std::nullopt;
  }
  try {
    Frame req;
    req.type = FrameType::kArtifactGet;
    req.request_id = next_id_++;
    req.payload = encode_artifact_get({key, backend, task_id});
    write_frame(sock_, req, deadline_in_ms(timeout_ms_));
    Frame reply = read_frame(sock_, deadline_in_ms(timeout_ms_));
    if (reply.type != FrameType::kArtifactOk ||
        reply.request_id != req.request_id) {
      // kError (unknown key) keeps the connection usable for the next ask.
      ++failed_;
      return std::nullopt;
    }
    ++fetched_;
    if (auto* rec = obs::TraceRecorder::current()) {
      rec->instant("net", "artifact-fetch",
                   obs::JsonArgs()
                       .add("backend", backend)
                       .add("task", task_id)
                       .add("bytes",
                            static_cast<uint64_t>(reply.payload.size()))
                       .str());
    }
    return std::move(reply.payload);
  } catch (const TransportError&) {
    sock_.close();
    connected_ = false;
    ++failed_;
    return std::nullopt;
  }
}

}  // namespace lm::net
