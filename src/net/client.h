// RemoteSession: the client side of the remote-device transport.
//
// One session per endpoint, shared by every RemoteArtifact proxying to it.
// Provides:
//   * a connection pool — process() borrows a connection, uses it
//     exclusively for one request/response exchange, and returns it;
//   * per-request deadlines — every exchange (send + receive, however many
//     syscalls) shares one absolute deadline;
//   * retry with reconnect — a transport failure discards the borrowed
//     connection and retries the request on a freshly dialed one
//     (artifacts are pure functions of their input batch, so at-least-once
//     re-execution is safe);
//   * exponential-backoff dialing — reconnect attempts back off
//     10ms → 20ms → … → backoff_max_ms;
//   * heartbeat liveness — a background thread pings the endpoint; after
//     `heartbeat_misses` consecutive failures the endpoint is marked down
//     and process() fails fast with TransportError instead of waiting out
//     a full request timeout. A later successful ping revives it.
//
// Failures always surface as lm::TransportError — the one exception type
// the runtime's drain loop converts into bytecode fallback.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace lm::net {

/// The server answered with a kError frame: the transport works but the
/// request itself failed (unknown artifact, fingerprint mismatch, artifact
/// fault). Still a TransportError — the runtime's fallback path catches the
/// base type — but never retried, since a deterministic failure would just
/// fail again.
class RemoteError : public TransportError {
 public:
  explicit RemoteError(const std::string& what) : TransportError(what) {}
};

class PollLoop;

/// A pending asynchronous exchange (RemoteSession::process_async). The
/// poll thread fills the fields and then fires the submission's on_done
/// callback exactly once; afterwards any thread ordered after that
/// callback resolves the exchange with RemoteSession::take().
struct PendingRpc {
  std::exception_ptr error;  // set on transport failure, else null
  Frame reply;
  std::chrono::steady_clock::time_point t0{};  // write start
  std::chrono::steady_clock::time_point t1{};  // reply arrival
};

struct SessionOptions {
  int connect_timeout_ms = 2000;
  /// Deadline for one full request/response exchange. The default is
  /// generous because the server runs cycle-accurate simulators; tests
  /// that provoke timeouts dial it down.
  int request_timeout_ms = 30000;
  /// Extra attempts after a failed exchange (each on a fresh connection).
  int max_retries = 1;
  int backoff_initial_ms = 10;
  int backoff_max_ms = 500;
  int heartbeat_interval_ms = 250;
  int heartbeat_misses = 2;
  /// Idle connections kept for reuse (beyond this they are closed).
  size_t pool_size = 4;
  std::string client_name = "lm-client";
};

class RemoteSession {
 public:
  /// `fingerprint` is the local program_fingerprint(); the server rejects
  /// the hello when it serves a different program.
  RemoteSession(std::string host, uint16_t port, uint64_t fingerprint,
                SessionOptions opts = {},
                obs::MetricsRegistry* metrics = nullptr);
  ~RemoteSession();

  RemoteSession(const RemoteSession&) = delete;
  RemoteSession& operator=(const RemoteSession&) = delete;

  const std::string& endpoint() const { return endpoint_; }

  /// Dials (if needed) and fetches the server's artifact listing.
  std::vector<ArtifactListing> list();

  /// What the server's piggybacked telemetry said about one exchange.
  struct ExchangeInfo {
    bool has_telemetry = false;
    /// Duration of the server's "execute" span (device time under the
    /// artifact lock), µs; 0 when the request was untraced or the reply
    /// carried no spans. Feeds RemoteArtifact's server-side histogram.
    double server_execute_us = 0;
  };

  /// One batch through (task_id, device) on the server: sends the packed
  /// input batch, returns the packed output batch. `info`, when non-null,
  /// receives the server-side telemetry of the successful exchange.
  std::vector<uint8_t> process(const std::string& task_id,
                               runtime::DeviceKind device,
                               std::span<const uint8_t> batch,
                               ExchangeInfo* info = nullptr);

  /// Asynchronous process(): encodes the request, hands it to the
  /// session's poll loop (started lazily) and returns immediately.
  /// `on_done` fires exactly once — from the poll thread on completion,
  /// or inline when the endpoint is already marked down — after which
  /// take() resolves the exchange. Transport failures never throw from
  /// here; they surface from take() so callers keep one fallback path.
  std::shared_ptr<PendingRpc> process_async(const std::string& task_id,
                                            runtime::DeviceKind device,
                                            std::span<const uint8_t> batch,
                                            std::function<void()> on_done);

  /// Resolves a completed async exchange: rethrows its transport failure,
  /// or validates the reply and feeds RTT/clock/telemetry exactly like
  /// process(), returning the packed output batch. Only call after the
  /// exchange's on_done has fired (and with ordering to that callback).
  std::vector<uint8_t> take(PendingRpc& rpc, ExchangeInfo* info = nullptr);

  /// Pipelined variant: all requests are written down one connection
  /// before any reply is read (request ids sequence them). Used by the RPC
  /// bench to measure what batching buys over lock-step request/response.
  std::vector<std::vector<uint8_t>> process_pipelined(
      const std::string& task_id, runtime::DeviceKind device,
      const std::vector<std::vector<uint8_t>>& batches);

  /// Starts the background liveness pinger (idempotent).
  void start_heartbeat();
  /// Last heartbeat verdict (true until proven otherwise).
  bool alive() const { return !down_.load(std::memory_order_acquire); }

  /// Smoothed round-trip time over completed exchanges, µs (0 until the
  /// first exchange). Feeds the substitution cost model: a remote
  /// candidate's measured score inherently includes this.
  double rtt_ewma_us() const;
  const obs::LatencyHistogram& rtt_histogram() const { return rtt_hist_; }

  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

  /// NTP-midpoint estimate of (server clock − session clock), fed by every
  /// exchange including heartbeats. The *session* clock is µs since this
  /// session's construction.
  const obs::ClockOffsetEstimator& clock_offset() const { return clock_; }

  /// Live gauges for a TelemetryHub collector: RTT EWMA, liveness,
  /// reconnect/backoff state, clock offset — all labeled with the
  /// endpoint.
  void collect_telemetry(std::vector<obs::GaugeSample>& out) const;
  /// Native histogram for TelemetryHub::add_histograms: `remote.rtt_us`
  /// {endpoint} — the full RTT distribution, mergeable fleet-side.
  void collect_histograms(std::vector<obs::HistogramSample>& out) const;

 private:
  /// The poll loop drives async exchanges with the session's dial,
  /// failure-marking and metrics machinery.
  friend class PollLoop;

  /// Starts the poll thread on first use (idempotent).
  PollLoop* ensure_poll_loop();
  /// Borrows a connection: pooled if available, freshly dialed otherwise.
  Socket acquire(Deadline deadline);
  void release(Socket s);
  /// Dials + hellos with exponential backoff until `deadline`.
  Socket dial(Deadline deadline);
  /// One request/response on a borrowed connection.
  Frame roundtrip(Socket& s, FrameType type, std::vector<uint8_t> payload,
                  Deadline deadline, ExchangeInfo* info = nullptr);
  /// Decodes a reply's aux block: feeds the clock-offset estimator,
  /// imports server spans into the installed recorder's per-endpoint lane
  /// (aligned with this exchange's own midpoint offset) and fills `info`.
  void handle_reply_telemetry(const Frame& reply,
                              std::chrono::steady_clock::time_point t0,
                              std::chrono::steady_clock::time_point t1,
                              ExchangeInfo* info);
  double session_us(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
  }
  void heartbeat_loop();
  void note_success(double rtt_us);
  void mark_down(const std::string& why);

  std::string host_;
  uint16_t port_;
  std::string endpoint_;
  uint64_t fingerprint_;
  SessionOptions opts_;
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  obs::ClockOffsetEstimator clock_;

  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<bool> down_{false};
  std::atomic<int> ping_misses_{0};
  std::atomic<uint64_t> reconnects_{0};

  mutable std::mutex pool_mu_;
  std::vector<Socket> pool_;
  bool ever_connected_ = false;

  std::mutex poll_mu_;
  std::unique_ptr<PollLoop> poll_loop_;

  mutable std::mutex rtt_mu_;
  double rtt_ewma_us_ = 0;
  obs::LatencyHistogram rtt_hist_;

  std::thread heartbeat_;
  std::atomic<bool> stop_heartbeat_{false};
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;

  // Optional instrumentation (pointers cached once; registry outlives us).
  obs::MetricsRegistry::Counter* c_requests_ = nullptr;
  obs::MetricsRegistry::Counter* c_retries_ = nullptr;
  obs::MetricsRegistry::Counter* c_failures_ = nullptr;
  obs::MetricsRegistry::Counter* c_connects_ = nullptr;
  obs::MetricsRegistry::Counter* c_bytes_sent_ = nullptr;
  obs::MetricsRegistry::Counter* c_bytes_recv_ = nullptr;
  obs::MetricsRegistry::Counter* c_pings_ = nullptr;
  obs::MetricsRegistry::Counter* c_ping_failures_ = nullptr;
  obs::MetricsRegistry::Counter* c_endpoint_down_ = nullptr;
  obs::MetricsRegistry::Counter* c_heartbeat_misses_ = nullptr;
};

/// Parses "host:port" (host may be a dotted quad or "localhost"). Throws
/// TransportError on malformed input.
void parse_endpoint(const std::string& spec, std::string* host,
                    uint16_t* port);

}  // namespace lm::net
