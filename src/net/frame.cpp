#include "net/frame.h"

#include "util/byte_buffer.h"

namespace lm::net {

namespace {
constexpr size_t kHeaderSize = 20;
}

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloOk: return "hello-ok";
    case FrameType::kList: return "list";
    case FrameType::kListOk: return "list-ok";
    case FrameType::kProcess: return "process";
    case FrameType::kProcessOk: return "process-ok";
    case FrameType::kError: return "error";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
  }
  return "?";
}

void write_frame(Socket& s, const Frame& f, Deadline deadline) {
  if (f.payload.size() > kMaxPayload) {
    throw TransportError("frame payload too large: " +
                         std::to_string(f.payload.size()) + " bytes");
  }
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<uint8_t>(f.type));
  w.u16(0);  // flags
  w.u64(f.request_id);
  w.u32(static_cast<uint32_t>(f.payload.size()));
  w.raw(f.payload.data(), f.payload.size());
  s.send_all(w.bytes(), deadline);
}

Frame read_frame(Socket& s, Deadline deadline) {
  uint8_t header[kHeaderSize];
  s.recv_all(header, deadline);
  ByteReader r(header);
  uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    throw TransportError("bad frame magic (not an lmdev peer?)");
  }
  uint8_t version = r.u8();
  if (version != kProtocolVersion) {
    throw TransportError("protocol version mismatch: peer speaks v" +
                         std::to_string(version) + ", this build v" +
                         std::to_string(kProtocolVersion));
  }
  Frame f;
  f.type = static_cast<FrameType>(r.u8());
  uint16_t flags = r.u16();
  if (flags != 0) throw TransportError("nonzero frame flags");
  f.request_id = r.u64();
  uint32_t len = r.u32();
  if (len > kMaxPayload) {
    throw TransportError("frame payload too large: " + std::to_string(len) +
                         " bytes");
  }
  f.payload.resize(len);
  s.recv_all(f.payload, deadline);
  return f;
}

}  // namespace lm::net
