#include "net/frame.h"

#include <cstring>

#include "util/byte_buffer.h"

namespace lm::net {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloOk: return "hello-ok";
    case FrameType::kList: return "list";
    case FrameType::kListOk: return "list-ok";
    case FrameType::kProcess: return "process";
    case FrameType::kProcessOk: return "process-ok";
    case FrameType::kError: return "error";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kArtifactGet: return "artifact-get";
    case FrameType::kArtifactOk: return "artifact-ok";
  }
  return "?";
}

size_t wire_size(const Frame& f) {
  size_t n = kFrameHeaderSize + f.payload.size();
  if (!f.aux.empty()) n += 4 + f.aux.size();
  return n;
}

std::vector<uint8_t> encode_frame(const Frame& f) {
  if (f.payload.size() > kMaxPayload) {
    throw TransportError("frame payload too large: " +
                         std::to_string(f.payload.size()) + " bytes");
  }
  if (f.aux.size() > kMaxAux) {
    throw TransportError("frame aux block too large: " +
                         std::to_string(f.aux.size()) + " bytes");
  }
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<uint8_t>(f.type));
  w.u16(f.aux.empty() ? 0 : kFlagAuxTelemetry);
  w.u64(f.request_id);
  w.u64(f.trace_id);
  w.u32(static_cast<uint32_t>(f.payload.size()));
  w.raw(f.payload.data(), f.payload.size());
  if (!f.aux.empty()) {
    w.u32(static_cast<uint32_t>(f.aux.size()));
    w.raw(f.aux.data(), f.aux.size());
  }
  return w.take();
}

void write_frame(Socket& s, const Frame& f, Deadline deadline) {
  s.send_all(encode_frame(f), deadline);
}

Frame read_frame(Socket& s, Deadline deadline) {
  uint8_t header[kFrameHeaderSize];
  s.recv_all(header, deadline);
  ByteReader r(header);
  uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    throw TransportError("bad frame magic (not an lmdev peer?)");
  }
  uint8_t version = r.u8();
  if (version != kProtocolVersion) {
    throw TransportError("protocol version mismatch: peer speaks v" +
                         std::to_string(version) + ", this build v" +
                         std::to_string(kProtocolVersion));
  }
  Frame f;
  f.type = static_cast<FrameType>(r.u8());
  uint16_t flags = r.u16();
  if ((flags & ~kFlagAuxTelemetry) != 0) {
    throw TransportError("unknown frame flags");
  }
  f.request_id = r.u64();
  f.trace_id = r.u64();
  uint32_t len = r.u32();
  if (len > kMaxPayload) {
    throw TransportError("frame payload too large: " + std::to_string(len) +
                         " bytes");
  }
  f.payload.resize(len);
  s.recv_all(f.payload, deadline);
  if (flags & kFlagAuxTelemetry) {
    uint8_t lenbuf[4];
    s.recv_all(lenbuf, deadline);
    ByteReader lr(lenbuf);
    uint32_t aux_len = lr.u32();
    if (aux_len > kMaxAux) {
      throw TransportError("frame aux block too large: " +
                           std::to_string(aux_len) + " bytes");
    }
    f.aux.resize(aux_len);
    s.recv_all(f.aux, deadline);
  }
  return f;
}

void FrameParser::feed(const uint8_t* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

void FrameParser::reset() {
  buf_.clear();
  pos_ = 0;
}

std::optional<Frame> FrameParser::next() {
  size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return std::nullopt;
  ByteReader r(std::span<const uint8_t>(buf_.data() + pos_, avail));
  uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    throw TransportError("bad frame magic (not an lmdev peer?)");
  }
  uint8_t version = r.u8();
  if (version != kProtocolVersion) {
    throw TransportError("protocol version mismatch: peer speaks v" +
                         std::to_string(version) + ", this build v" +
                         std::to_string(kProtocolVersion));
  }
  Frame f;
  f.type = static_cast<FrameType>(r.u8());
  uint16_t flags = r.u16();
  if ((flags & ~kFlagAuxTelemetry) != 0) {
    throw TransportError("unknown frame flags");
  }
  f.request_id = r.u64();
  f.trace_id = r.u64();
  uint32_t len = r.u32();
  if (len > kMaxPayload) {
    throw TransportError("frame payload too large: " + std::to_string(len) +
                         " bytes");
  }
  // Lengths are validated before being waited on, so a corrupt prefix is
  // rejected here instead of stalling the parser on bytes that never come.
  size_t need = kFrameHeaderSize + len;
  uint32_t aux_len = 0;
  if (flags & kFlagAuxTelemetry) {
    if (avail < need + 4) return std::nullopt;
    std::memcpy(&aux_len, buf_.data() + pos_ + need, 4);
    if (aux_len > kMaxAux) {
      throw TransportError("frame aux block too large: " +
                           std::to_string(aux_len) + " bytes");
    }
    need += 4 + aux_len;
  }
  if (avail < need) return std::nullopt;
  const uint8_t* body = buf_.data() + pos_ + kFrameHeaderSize;
  f.payload.assign(body, body + len);
  if (aux_len > 0) {
    const uint8_t* aux = body + len + 4;
    f.aux.assign(aux, aux + aux_len);
  }
  pos_ += need;
  // Compact once the consumed prefix dominates, keeping the buffer from
  // growing without bound across a long-lived pipelined connection.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return f;
}

}  // namespace lm::net
