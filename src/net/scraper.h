// Fleet telemetry scraper (ISSUE 10 tentpole).
//
// The client half of the telemetry plane: polls N lmdev/lmc `/metrics` +
// `/healthz` endpoints on an interval, parses the exposition with
// obs::parse_exposition and feeds obs::FleetView — which turns the raw
// scrapes into the ranked cluster snapshot lmtop renders and ROADMAP
// item 3's balancer will route on.
//
// Fan-out is parallel: every cycle spawns one short-lived scrape per
// endpoint, each of which ingests its own reading the moment it lands, so
// one wedged server costs the fleet view nothing but its own row (the
// cycle itself still waits for the per-request timeout at worst —
// bench_fleet's E13 measures the fan-out latency staying near-flat in
// endpoint count). A failed connect, a non-200, or a body that fails the
// hostile-input parser all become a clean per-endpoint error reading;
// nothing crosses into other endpoints' state.
//
// Layering: obs parses and aggregates (no I/O), this file owns sockets
// and threads, tools render.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/fleet.h"
#include "obs/slo.h"

namespace lm::net {

/// Splits "host:port,host:port,…" (commas or whitespace) into endpoint
/// specs; empty pieces are dropped.
std::vector<std::string> split_endpoint_list(const std::string& csv);

class TelemetryScraper {
 public:
  struct Options {
    /// Poll period. The FleetView staleness deadline defaults to
    /// `staleness_factor ×` this, so a kill -9'd server turns stale/down
    /// within one deadline.
    int interval_ms = 1000;
    /// Per-request deadline (connect + GET), each endpoint independently.
    int timeout_ms = 2000;
    double staleness_factor = 2.0;
  };

  explicit TelemetryScraper(std::vector<std::string> endpoints)
      : TelemetryScraper(std::move(endpoints), Options{}) {}
  TelemetryScraper(std::vector<std::string> endpoints, Options opts);
  ~TelemetryScraper();

  TelemetryScraper(const TelemetryScraper&) = delete;
  TelemetryScraper& operator=(const TelemetryScraper&) = delete;

  /// Spawns the poll loop (one fan-out cycle per interval).
  void start();
  /// Stops and joins. Idempotent.
  void stop();

  /// One synchronous fan-out cycle: scrapes every endpoint in parallel,
  /// ingests into the view, returns when all are done. This is what the
  /// poll loop runs; `--check` modes call it directly for deterministic
  /// cycle counts.
  void scrape_once();

  /// Scrapes one endpoint synchronously (no ingest) — the building block
  /// scrape_once fans out; exposed for tests and the bench.
  obs::FleetView::Reading scrape_endpoint(const std::string& endpoint);

  obs::FleetView& view() { return view_; }
  const std::vector<std::string>& endpoints() const { return endpoints_; }
  const Options& options() const { return opts_; }
  obs::FleetSnapshot snapshot() const {
    return view_.snapshot(obs::FleetView::now_us());
  }
  uint64_t cycles() const { return cycles_.load(std::memory_order_relaxed); }

 private:
  void poll_loop();

  std::vector<std::string> endpoints_;
  Options opts_;
  obs::FleetView view_;
  std::thread poll_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> cycles_{0};
};

/// One-shot check-mode driver shared by `lmtop --fleet --check` and
/// `lmc --fleet-snapshot`: runs `cycles` fan-out rounds `interval` apart
/// (at least two, so counter rates exist), evaluates the watchdog (when
/// given) against the snapshot after every round, and returns the final
/// snapshot plus every violation seen. Exit policy belongs to the caller:
/// nonzero when violations is non-empty (or, for strict callers, when any
/// endpoint is not up).
struct FleetCheckResult {
  obs::FleetSnapshot snapshot;
  std::vector<obs::SloViolation> violations;
};

FleetCheckResult run_fleet_check(const std::vector<std::string>& endpoints,
                                 obs::SloWatchdog* watchdog, int cycles,
                                 TelemetryScraper::Options opts);

}  // namespace lm::net
