#include "net/protocol.h"

#include <algorithm>

#include "util/byte_buffer.h"
#include "util/error.h"
#include "util/hash.h"

namespace lm::net {

namespace {

runtime::DeviceKind device_from_wire(uint8_t b) {
  switch (b) {
    case 0: return runtime::DeviceKind::kCpu;
    case 1: return runtime::DeviceKind::kGpu;
    case 2: return runtime::DeviceKind::kFpga;
  }
  throw TransportError("bad device kind on wire: " + std::to_string(b));
}

uint8_t device_to_wire(runtime::DeviceKind d) {
  switch (d) {
    case runtime::DeviceKind::kCpu: return 0;
    case runtime::DeviceKind::kGpu: return 1;
    case runtime::DeviceKind::kFpga: return 2;
  }
  return 0;
}

}  // namespace

std::vector<uint8_t> encode_hello(const HelloRequest& h) {
  ByteWriter w;
  w.str(h.client);
  w.u64(h.fingerprint);
  return w.take();
}

HelloRequest decode_hello(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  HelloRequest h;
  h.client = r.str();
  h.fingerprint = r.u64();
  return h;
}

std::vector<uint8_t> encode_hello_reply(const HelloReply& h) {
  ByteWriter w;
  w.str(h.server);
  w.u32(h.artifact_count);
  return w.take();
}

HelloReply decode_hello_reply(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  HelloReply h;
  h.server = r.str();
  h.artifact_count = r.u32();
  return h;
}

std::vector<uint8_t> encode_listing(const std::vector<ArtifactListing>& ls) {
  ByteWriter w;
  w.u32(static_cast<uint32_t>(ls.size()));
  for (const auto& l : ls) {
    w.str(l.task_id);
    w.u8(device_to_wire(l.device));
    w.u32(static_cast<uint32_t>(l.arity));
    w.str(l.signature);
  }
  return w.take();
}

std::vector<ArtifactListing> decode_listing(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  uint32_t n = r.u32();
  std::vector<ArtifactListing> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ArtifactListing l;
    l.task_id = r.str();
    l.device = device_from_wire(r.u8());
    l.arity = static_cast<int>(r.u32());
    l.signature = r.str();
    out.push_back(std::move(l));
  }
  return out;
}

std::vector<uint8_t> encode_process(const ProcessRequest& p) {
  ByteWriter w;
  w.str(p.task_id);
  w.u8(device_to_wire(p.device));
  w.u32(static_cast<uint32_t>(p.batch.size()));
  w.raw(p.batch.data(), p.batch.size());
  return w.take();
}

ProcessRequest decode_process(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  ProcessRequest p;
  p.task_id = r.str();
  p.device = device_from_wire(r.u8());
  uint32_t n = r.u32();
  p.batch.resize(n);
  r.raw(p.batch.data(), n);
  return p;
}

std::vector<uint8_t> encode_artifact_get(const ArtifactGetRequest& a) {
  ByteWriter w;
  w.u64(a.key);
  w.str(a.backend);
  w.str(a.task_id);
  return w.take();
}

ArtifactGetRequest decode_artifact_get(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  ArtifactGetRequest a;
  a.key = r.u64();
  a.backend = r.str();
  a.task_id = r.str();
  return a;
}

std::vector<uint8_t> encode_telemetry(const ReplyTelemetry& t) {
  ByteWriter w;
  w.f64(t.recv_ts_us);
  w.f64(t.send_ts_us);
  w.u32(static_cast<uint32_t>(t.spans.size()));
  for (const auto& s : t.spans) {
    w.str(s.name);
    w.f64(s.ts_us);
    w.f64(s.dur_us);
  }
  return w.take();
}

ReplyTelemetry decode_telemetry(std::span<const uint8_t> aux) {
  ByteReader r(aux);
  ReplyTelemetry t;
  t.recv_ts_us = r.f64();
  t.send_ts_us = r.f64();
  uint32_t n = r.u32();
  t.spans.reserve(std::min<uint32_t>(n, 1024));
  for (uint32_t i = 0; i < n; ++i) {
    ServerSpan s;
    s.name = r.str();
    s.ts_us = r.f64();
    s.dur_us = r.f64();
    t.spans.push_back(std::move(s));
  }
  return t;
}

uint64_t program_fingerprint(const runtime::ArtifactStore& store) {
  std::vector<std::string> lines;
  for (const auto* m : store.manifests()) {
    if (m->device != runtime::DeviceKind::kCpu) continue;
    lines.push_back(m->to_string());
  }
  std::sort(lines.begin(), lines.end());
  // Shared FNV-1a facility (util/hash.h) — digests are pinned by util_test
  // so this stays byte-compatible with the PR-4 wire format.
  util::Fnv1a h;
  for (const auto& line : lines) {
    h.mix(line).mix_byte('\n');
  }
  return h.digest();
}

std::vector<ArtifactListing> store_listing(
    const runtime::ArtifactStore& store) {
  std::vector<ArtifactListing> out;
  for (const auto* m : store.manifests()) {
    if (m->device == runtime::DeviceKind::kCpu) continue;
    out.push_back({m->task_id, m->device, m->arity, m->to_string()});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.task_id != b.task_id ? a.task_id < b.task_id
                                  : a.signature < b.signature;
  });
  return out;
}

}  // namespace lm::net
