#include "net/remote_artifact.h"

#include <cstdio>

#include "obs/trace.h"
#include "serde/batch.h"
#include "util/error.h"

namespace lm::net {

using bc::Value;

RemoteArtifact::RemoteArtifact(runtime::ArtifactManifest manifest,
                               std::shared_ptr<RemoteSession> session)
    : Artifact(std::move(manifest)), session_(std::move(session)) {
  LM_CHECK(session_ != nullptr);
  LM_CHECK_MSG(!manifest_.param_types.empty(),
               "remote artifact needs a parameter type for serialization");
}

std::vector<Value> RemoteArtifact::process(std::span<const Value> inputs) {
  size_t k = static_cast<size_t>(manifest_.arity);
  LM_CHECK(inputs.size() % k == 0);
  ++transfer_.batches;
  transfer_.elements_in += inputs.size();

  obs::TraceSpan span;
  std::string trace_id_hex;
  if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
    span.begin(rec, "net", "rpc:" + manifest_.task_id);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(rec->trace_id()));
    trace_id_hex = buf;
    // Set identifying args up front so an exchange that throws still leaves
    // an attributable span in the trace (the crash casualty keeps its
    // endpoint and trace id; only the byte counts are success-path data).
    span.set_args(obs::JsonArgs()
                      .add("endpoint", session_->endpoint())
                      .add("trace_id", trace_id_hex)
                      .str());
  }

  // Stream elements all share one type (only values of the upstream
  // element type flow through a connection).
  auto wire = serde::pack_batch(inputs, manifest_.param_types[0]);
  transfer_.bytes_to_device += wire.size();

  RemoteSession::ExchangeInfo info;
  auto reply =
      session_->process(manifest_.task_id, manifest_.device, wire, &info);
  transfer_.bytes_from_device += reply.size();
  if (info.server_execute_us > 0) {
    server_exec_.record_ns(
        static_cast<uint64_t>(info.server_execute_us * 1e3));
  }

  auto out = serde::unpack_batch(reply, manifest_.return_type);
  transfer_.elements_out += out.size();
  if (span.active()) {
    span.set_args(obs::JsonArgs()
                      .add("endpoint", session_->endpoint())
                      .add("trace_id", trace_id_hex)
                      .add("elements", static_cast<uint64_t>(inputs.size()))
                      .add("bytes_out", static_cast<uint64_t>(wire.size()))
                      .add("bytes_in", static_cast<uint64_t>(reply.size()))
                      .str());
  }
  return out;
}

}  // namespace lm::net
