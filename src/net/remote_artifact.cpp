#include "net/remote_artifact.h"

#include <cstdio>

#include "obs/trace.h"
#include "serde/batch.h"
#include "util/error.h"

namespace lm::net {

using bc::Value;

RemoteArtifact::RemoteArtifact(runtime::ArtifactManifest manifest,
                               std::shared_ptr<RemoteSession> session)
    : Artifact(std::move(manifest)), session_(std::move(session)) {
  LM_CHECK(session_ != nullptr);
  LM_CHECK_MSG(!manifest_.param_types.empty(),
               "remote artifact needs a parameter type for serialization");
}

std::vector<Value> RemoteArtifact::process(std::span<const Value> inputs) {
  size_t k = static_cast<size_t>(manifest_.arity);
  LM_CHECK(inputs.size() % k == 0);
  ++transfer_.batches;
  transfer_.elements_in += inputs.size();

  obs::TraceSpan span;
  std::string trace_id_hex;
  if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
    span.begin(rec, "net", "rpc:" + manifest_.task_id);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(rec->trace_id()));
    trace_id_hex = buf;
    // Set identifying args up front so an exchange that throws still leaves
    // an attributable span in the trace (the crash casualty keeps its
    // endpoint and trace id; only the byte counts are success-path data).
    span.set_args(obs::JsonArgs()
                      .add("endpoint", session_->endpoint())
                      .add("trace_id", trace_id_hex)
                      .str());
  }

  // Stream elements all share one type (only values of the upstream
  // element type flow through a connection). The encode buffer is recycled
  // through the wire pool — one RPC per firing makes this a hot path.
  auto wire =
      serde::pack_batch(inputs, manifest_.param_types[0], serde::wire_pool());
  const size_t wire_bytes = wire.size();
  transfer_.bytes_to_device += wire_bytes;

  RemoteSession::ExchangeInfo info;
  auto reply =
      session_->process(manifest_.task_id, manifest_.device, wire, &info);
  serde::wire_pool().release(std::move(wire));
  transfer_.bytes_from_device += reply.size();
  if (info.server_execute_us > 0) {
    server_exec_.record_ns(
        static_cast<uint64_t>(info.server_execute_us * 1e3));
  }

  auto out = serde::unpack_batch(reply, manifest_.return_type);
  transfer_.elements_out += out.size();
  if (span.active()) {
    span.set_args(obs::JsonArgs()
                      .add("endpoint", session_->endpoint())
                      .add("trace_id", trace_id_hex)
                      .add("elements", static_cast<uint64_t>(inputs.size()))
                      .add("bytes_out", static_cast<uint64_t>(wire_bytes))
                      .add("bytes_in", static_cast<uint64_t>(reply.size()))
                      .str());
  }
  return out;
}

/// The pending half of RemoteArtifact::process_async. Captures the
/// issue-time trace context so the deferred "rpc:" span covers the full
/// issue → collect window even when a different worker collects it.
class RemoteAsyncBatch final : public runtime::AsyncBatch {
 public:
  RemoteAsyncBatch(RemoteArtifact* owner, std::shared_ptr<PendingRpc> rpc,
                   size_t elements, size_t wire_bytes, obs::TraceRecorder* rec,
                   double t0_us)
      : owner_(owner),
        rpc_(std::move(rpc)),
        elements_(elements),
        wire_bytes_(wire_bytes),
        rec_(rec),
        t0_us_(t0_us) {}

  std::vector<Value> take_results() override {
    return owner_->resolve_async(*this);
  }

 private:
  friend class RemoteArtifact;
  RemoteArtifact* owner_;
  std::shared_ptr<PendingRpc> rpc_;
  size_t elements_;
  size_t wire_bytes_;
  obs::TraceRecorder* rec_;
  double t0_us_ = 0;
};

std::unique_ptr<runtime::AsyncBatch> RemoteArtifact::process_async(
    std::span<const Value> inputs, std::function<void()> on_done) {
  size_t k = static_cast<size_t>(manifest_.arity);
  LM_CHECK(inputs.size() % k == 0);
  ++transfer_.batches;
  transfer_.elements_in += inputs.size();
  auto wire =
      serde::pack_batch(inputs, manifest_.param_types[0], serde::wire_pool());
  const size_t wire_bytes = wire.size();
  transfer_.bytes_to_device += wire_bytes;
  // Stamp the rpc span's start *before* submitting: the poll thread may
  // write the request (starting the wire exchange whose window the aligned
  // server spans must nest inside) the instant the op is queued.
  obs::TraceRecorder* rec = obs::TraceRecorder::current();
  double t0_us = rec ? rec->to_us(std::chrono::steady_clock::now()) : 0;
  auto rpc = session_->process_async(manifest_.task_id, manifest_.device,
                                     wire, std::move(on_done));
  serde::wire_pool().release(std::move(wire));
  return std::make_unique<RemoteAsyncBatch>(this, std::move(rpc), inputs.size(),
                                            wire_bytes, rec, t0_us);
}

std::vector<Value> RemoteArtifact::resolve_async(RemoteAsyncBatch& b) {
  auto emit_span = [&](const std::vector<uint8_t>* reply) {
    if (!b.rec_) return;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(b.rec_->trace_id()));
    obs::JsonArgs args;
    args.add("endpoint", session_->endpoint()).add("trace_id", buf);
    if (reply) {
      args.add("elements", static_cast<uint64_t>(b.elements_))
          .add("bytes_out", static_cast<uint64_t>(b.wire_bytes_))
          .add("bytes_in", static_cast<uint64_t>(reply->size()));
    }
    double now_us = b.rec_->to_us(std::chrono::steady_clock::now());
    b.rec_->complete("net", "rpc:" + manifest_.task_id, b.t0_us_,
                     now_us - b.t0_us_, args.str());
  };

  RemoteSession::ExchangeInfo info;
  std::vector<uint8_t> reply;
  try {
    reply = session_->take(*b.rpc_, &info);
  } catch (...) {
    // A failed exchange still leaves an attributable span, like the
    // crash-casualty span of the blocking path.
    emit_span(nullptr);
    throw;
  }
  transfer_.bytes_from_device += reply.size();
  if (info.server_execute_us > 0) {
    server_exec_.record_ns(
        static_cast<uint64_t>(info.server_execute_us * 1e3));
  }
  auto out = serde::unpack_batch(reply, manifest_.return_type);
  transfer_.elements_out += out.size();
  emit_span(&reply);
  return out;
}

}  // namespace lm::net
