#include "net/attach.h"

#include <memory>

#include "net/client.h"
#include "net/protocol.h"
#include "net/remote_artifact.h"
#include "util/error.h"

namespace lm::net {

AttachResult attach_remote_devices(runtime::LiquidRuntime& rt,
                                   const runtime::CompiledProgram& program) {
  AttachResult res;
  const runtime::RuntimeConfig& cfg = rt.config();
  const uint64_t fp = program_fingerprint(program.store);
  for (const std::string& spec : cfg.remote_endpoints) {
    try {
      std::string host;
      uint16_t port = 0;
      parse_endpoint(spec, &host, &port);
      SessionOptions opts;
      opts.request_timeout_ms = cfg.remote_timeout_ms;
      opts.max_retries = cfg.remote_retries;
      auto session = std::make_shared<RemoteSession>(host, port, fp, opts,
                                                     &rt.metrics());
      size_t added = 0;
      for (const ArtifactListing& l : session->list()) {
        // The local program supplies the serialization schema. Prefer the
        // same-device manifest; fall back to the CPU one (always present
        // for plain tasks — a client compiled without a device backend can
        // still use that device remotely). A fused segment with no local
        // artifact at all has no type source and is skipped.
        const runtime::Artifact* local = program.store.find(l.task_id,
                                                            l.device);
        if (!local) {
          local = program.store.find(l.task_id, runtime::DeviceKind::kCpu);
        }
        if (!local) continue;
        runtime::ArtifactManifest m;
        m.task_id = l.task_id;
        m.device = l.device;
        m.param_types = local->manifest().param_types;
        m.return_type = local->manifest().return_type;
        m.arity = l.arity;
        m.artifact_text = std::string("// remote ") +
                          runtime::to_string(l.device) + " @ " +
                          session->endpoint();
        rt.add_remote_artifact(
            std::make_unique<RemoteArtifact>(std::move(m), session));
        ++added;
      }
      if (added > 0) session->start_heartbeat();
      res.artifacts += added;
      res.endpoints_ok.push_back(session->endpoint());
      res.sessions.push_back(std::move(session));
    } catch (const RuntimeError& e) {
      res.errors.push_back(spec + ": " + e.what());
    }
  }
  return res;
}

}  // namespace lm::net
