// RemoteArtifact: a device artifact whose process() crosses a socket.
//
// The proxy satisfies the exact Artifact contract the runtime substitutes
// against — consume n*arity stream elements, return n outputs — so a GPU
// or FPGA artifact served by a remote `lmdev` is a drop-in substitution
// candidate. The wire format is the same serde batch encoding the
// in-process native boundary uses (Fig. 3's byte stream, now over TCP),
// which is what makes remote results bit-identical to local ones.
#pragma once

#include <memory>

#include "net/client.h"
#include "obs/histogram.h"
#include "runtime/artifact.h"

namespace lm::net {

class RemoteAsyncBatch;

class RemoteArtifact final : public runtime::Artifact {
 public:
  /// `manifest.device` is the *remote* device kind; param/return types are
  /// copied from a local manifest for the same task (the serialization
  /// schema — both ends agree on it via the hello fingerprint).
  RemoteArtifact(runtime::ArtifactManifest manifest,
                 std::shared_ptr<RemoteSession> session);

  std::vector<bc::Value> process(std::span<const bc::Value> inputs) override;

  /// The async path: the batch is packed here (on the issuing worker) and
  /// handed to the session's poll loop; decoding and telemetry accounting
  /// run in take_results() on whichever worker collects the batch.
  bool supports_async() const override { return true; }
  std::unique_ptr<runtime::AsyncBatch> process_async(
      std::span<const bc::Value> inputs,
      std::function<void()> on_done) override;

  bool is_remote() const override { return true; }
  std::string location() const override { return session_->endpoint(); }
  std::string cost_label() const override {
    return std::string(runtime::to_string(manifest_.device)) + "@" +
           session_->endpoint();
  }

  RemoteSession& session() { return *session_; }

  /// Device time on the *server* (the reply telemetry's execute span),
  /// merged into the client PerfReport via LatencyHistogram::merge().
  const obs::LatencyHistogram* server_histogram() const override {
    return server_exec_.count() ? &server_exec_ : nullptr;
  }

 private:
  friend class RemoteAsyncBatch;
  /// take_results() body: resolves the exchange, records transfer and
  /// server-time stats, unpacks the reply, emits the deferred rpc span.
  std::vector<bc::Value> resolve_async(RemoteAsyncBatch& batch);

  std::shared_ptr<RemoteSession> session_;
  obs::LatencyHistogram server_exec_;
};

}  // namespace lm::net
