#include "net/server.h"

#include "obs/trace.h"
#include "serde/batch.h"
#include "util/byte_buffer.h"

namespace lm::net {

using runtime::Artifact;
using runtime::DeviceKind;

namespace {

Frame error_frame(uint64_t request_id, const std::string& message) {
  Frame f;
  f.type = FrameType::kError;
  f.request_id = request_id;
  ByteWriter w;
  w.str(message);
  f.payload = w.take();
  return f;
}

}  // namespace

DeviceServer::DeviceServer(const runtime::CompiledProgram& program,
                           Options opts)
    : program_(program), opts_(std::move(opts)) {
  fingerprint_ = program_fingerprint(program_.store);
  listing_ = store_listing(program_.store);
  for (const auto& l : listing_) {
    Artifact* a = program_.store.find(l.task_id, l.device);
    if (a && !locks_.count(a)) {
      locks_.emplace(a, std::make_unique<std::mutex>());
    }
  }
}

DeviceServer::~DeviceServer() { stop(); }

void DeviceServer::start() {
  listener_ = std::make_unique<Listener>(opts_.port);
  port_ = listener_->port();
  endpoint_ = "127.0.0.1:" + std::to_string(port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void DeviceServer::accept_loop() {
  for (;;) {
    Socket s = listener_->accept();
    if (!s.valid()) return;  // listener closed
    if (stopping_.load(std::memory_order_acquire)) return;
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(s);
    Conn* raw = conn.get();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
    conns_.back()->th = std::thread([this, raw] { serve(raw); });
  }
}

void DeviceServer::serve(Conn* conn) {
  try {
    for (;;) {
      Frame req = read_frame(conn->sock, no_deadline());
      Frame reply = handle(req);
      write_frame(conn->sock, reply, no_deadline());
      if (opts_.fail_after != 0 && req.type == FrameType::kProcess &&
          served_.load(std::memory_order_relaxed) >= opts_.fail_after) {
        abrupt_stop();  // fault injection: die after the Nth batch
        return;
      }
    }
  } catch (const TransportError&) {
    // Peer went away (or we were stopped): this connection is done.
  }
}

Frame DeviceServer::handle(const Frame& req) {
  try {
    switch (req.type) {
      case FrameType::kPing: {
        Frame f;
        f.type = FrameType::kPong;
        f.request_id = req.request_id;
        return f;
      }
      case FrameType::kHello: {
        HelloRequest h = decode_hello(req.payload);
        if (h.fingerprint != fingerprint_) {
          return error_frame(
              req.request_id,
              "program fingerprint mismatch: client compiled a different "
              "program than this server (client " +
                  std::to_string(h.fingerprint) + ", server " +
                  std::to_string(fingerprint_) + ")");
        }
        Frame f;
        f.type = FrameType::kHelloOk;
        f.request_id = req.request_id;
        f.payload = encode_hello_reply(
            {opts_.name, static_cast<uint32_t>(listing_.size())});
        return f;
      }
      case FrameType::kList: {
        Frame f;
        f.type = FrameType::kListOk;
        f.request_id = req.request_id;
        f.payload = encode_listing(listing_);
        return f;
      }
      case FrameType::kProcess: {
        ProcessRequest p = decode_process(req.payload);
        Artifact* a = program_.store.find(p.task_id, p.device);
        if (!a) {
          return error_frame(req.request_id,
                             "no artifact for " + p.task_id + " on " +
                                 runtime::to_string(p.device));
        }
        obs::TraceSpan span;
        if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
          span.begin(rec, "net", "serve:" + p.task_id);
        }
        const auto& mf = a->manifest();
        std::vector<bc::Value> in =
            serde::unpack_batch(p.batch, mf.param_types[0]);
        std::vector<bc::Value> out;
        {
          // Serialize batches per artifact: device simulators are stateful.
          std::lock_guard<std::mutex> lock(*locks_.at(a));
          out = a->process(in);
        }
        Frame f;
        f.type = FrameType::kProcessOk;
        f.request_id = req.request_id;
        f.payload = serde::pack_batch(out, mf.return_type);
        served_.fetch_add(1, std::memory_order_relaxed);
        if (span.active()) {
          span.set_args(obs::JsonArgs()
                            .add("elements", static_cast<uint64_t>(in.size()))
                            .add("bytes_in",
                                 static_cast<uint64_t>(p.batch.size()))
                            .str());
        }
        return f;
      }
      default:
        return error_frame(req.request_id,
                           std::string("unexpected frame type: ") +
                               to_string(req.type));
    }
  } catch (const std::exception& e) {
    // Artifact faults and malformed payloads surface as protocol errors;
    // the connection stays up.
    return error_frame(req.request_id, e.what());
  }
}

void DeviceServer::drop_all_connections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& c : conns_) c->sock.shutdown_both();
}

void DeviceServer::abrupt_stop() {
  crashed_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  if (listener_) listener_->close();
  drop_all_connections();
}

void DeviceServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  drop_all_connections();
  // No new connections can appear now (accept thread joined), so the list
  // is stable without the lock — but hold it anyway for clarity.
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->th.joinable()) {
      // A serve thread that called abrupt_stop() is in this list; joining
      // it from itself would deadlock — but abrupt_stop() returns out of
      // serve() immediately, so by the time stop() runs on another thread
      // the serve thread is exiting. Self-join cannot happen because
      // stop() is never called from a serve thread.
      c->th.join();
    }
  }
}

}  // namespace lm::net
