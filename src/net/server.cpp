#include "net/server.h"

#include "cache/artifact_cache.h"
#include "cache/serialize.h"
#include "obs/trace.h"
#include "runtime/artifact.h"
#include "serde/batch.h"
#include "util/byte_buffer.h"

namespace lm::net {

using runtime::Artifact;
using runtime::DeviceKind;

namespace {

Frame error_frame(uint64_t request_id, const std::string& message) {
  Frame f;
  f.type = FrameType::kError;
  f.request_id = request_id;
  ByteWriter w;
  w.str(message);
  f.payload = w.take();
  return f;
}

}  // namespace

DeviceServer::DeviceServer(const runtime::CompiledProgram& program,
                           Options opts)
    : program_(program), opts_(std::move(opts)) {
  fingerprint_ = program_fingerprint(program_.store);
  listing_ = store_listing(program_.store);
  for (const auto& l : listing_) {
    Artifact* a = program_.store.find(l.task_id, l.device);
    if (a && !locks_.count(a)) {
      locks_.emplace(a, std::make_unique<std::mutex>());
    }
  }
  // Compile-service inventory: re-serialize every artifact the compiler
  // keyed, so clients can fetch compiled bytes by content key instead of
  // compiling locally. Empty when the program was compiled without caching.
  for (const auto& [label, key] : program_.artifact_keys) {
    auto colon = label.find(':');
    if (colon == std::string::npos) continue;
    std::string backend = label.substr(0, colon);
    std::string task = label.substr(colon + 1);
    try {
      if (backend == cache::kBackendBytecode) {
        if (program_.bytecode) {
          artifact_payloads_[key] = {
              backend, cache::encode_bytecode_module(*program_.bytecode)};
        }
      } else if (backend == cache::kBackendGpu) {
        auto* g = dynamic_cast<runtime::GpuKernelArtifact*>(
            program_.store.find(task, DeviceKind::kGpu));
        if (g) {
          artifact_payloads_[key] = {
              backend, cache::encode_kernel_program(g->program())};
        }
      } else if (backend == cache::kBackendFpga) {
        auto* fa = dynamic_cast<runtime::FpgaModuleArtifact*>(
            program_.store.find(task, DeviceKind::kFpga));
        if (fa) {
          fpga::FpgaFilter& filt = fa->filter();
          artifact_payloads_[key] = {
              backend, cache::encode_fpga_parts(filt.module(), filt.verilog(),
                                                filt.ports())};
        }
      }
    } catch (const std::exception&) {
      // An artifact that cannot be re-serialized is simply not served.
    }
  }
}

DeviceServer::~DeviceServer() { stop(); }

void DeviceServer::start() {
  listener_ = std::make_unique<Listener>(opts_.port);
  port_ = listener_->port();
  endpoint_ = "127.0.0.1:" + std::to_string(port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void DeviceServer::accept_loop() {
  for (;;) {
    Socket s = listener_->accept();
    if (!s.valid()) return;  // listener closed
    if (stopping_.load(std::memory_order_acquire)) return;
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(s);
    Conn* raw = conn.get();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
    conns_.back()->th = std::thread([this, raw] { serve(raw); });
  }
}

void DeviceServer::serve(Conn* conn) {
  active_conns_.fetch_add(1, std::memory_order_relaxed);
  try {
    for (;;) {
      Frame req = read_frame(conn->sock, no_deadline());
      ReplyTelemetry tele;
      tele.recv_ts_us = now_us();
      c_requests_.add();
      c_bytes_in_.add(wire_size(req));
      Frame reply = handle(req, tele);
      reply.trace_id = req.trace_id;
      if (reply.type == FrameType::kError) c_errors_.add();
      // Every reply carries the server receive/send timestamps — they cost
      // two f64s and let heartbeats feed the client's clock-offset
      // estimator; spans ride along only for traced requests.
      tele.send_ts_us = now_us();
      reply.aux = encode_telemetry(tele);
      c_bytes_out_.add(wire_size(reply));
      write_frame(conn->sock, reply, no_deadline());
      if (reply.type == FrameType::kProcessOk) {
        // The batch payload came out of the wire pool (handle()'s kProcess
        // case); recycle its storage now that the bytes are on the socket.
        serde::wire_pool().release(std::move(reply.payload));
      }
      if (opts_.fail_after != 0 && req.type == FrameType::kProcess &&
          served_.load(std::memory_order_relaxed) >= opts_.fail_after) {
        abrupt_stop();  // fault injection: die after the Nth batch
        break;
      }
    }
  } catch (const TransportError&) {
    // Peer went away (or we were stopped): this connection is done.
  }
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

Frame DeviceServer::handle(const Frame& req, ReplyTelemetry& tele) {
  try {
    switch (req.type) {
      case FrameType::kPing: {
        Frame f;
        f.type = FrameType::kPong;
        f.request_id = req.request_id;
        return f;
      }
      case FrameType::kHello: {
        HelloRequest h = decode_hello(req.payload);
        // fingerprint 0 is the compile-service wildcard: the client has not
        // compiled anything yet (it is here to *avoid* compiling), so there
        // is no program identity to check — content keys self-validate.
        if (h.fingerprint != 0 && h.fingerprint != fingerprint_) {
          return error_frame(
              req.request_id,
              "program fingerprint mismatch: client compiled a different "
              "program than this server (client " +
                  std::to_string(h.fingerprint) + ", server " +
                  std::to_string(fingerprint_) + ")");
        }
        Frame f;
        f.type = FrameType::kHelloOk;
        f.request_id = req.request_id;
        f.payload = encode_hello_reply(
            {opts_.name, static_cast<uint32_t>(listing_.size())});
        return f;
      }
      case FrameType::kList: {
        Frame f;
        f.type = FrameType::kListOk;
        f.request_id = req.request_id;
        f.payload = encode_listing(listing_);
        return f;
      }
      case FrameType::kArtifactGet: {
        ArtifactGetRequest a = decode_artifact_get(req.payload);
        auto it = artifact_payloads_.find(a.key);
        if (it == artifact_payloads_.end() || it->second.first != a.backend) {
          return error_frame(req.request_id,
                             "no artifact for key " + cache::key_hex(a.key) +
                                 " (" + a.backend + ":" + a.task_id + ")");
        }
        Frame f;
        f.type = FrameType::kArtifactOk;
        f.request_id = req.request_id;
        f.payload = it->second.second;
        c_artifact_fetches_.add();
        if (auto* rec = obs::TraceRecorder::current()) {
          rec->instant("net", "artifact-get",
                       obs::JsonArgs()
                           .add("key", cache::key_hex(a.key))
                           .add("backend", a.backend)
                           .add("task", a.task_id)
                           .str());
        }
        return f;
      }
      case FrameType::kProcess: {
        const bool traced = req.trace_id != 0;
        double t_decode0 = now_us();
        ProcessRequest p = decode_process(req.payload);
        Artifact* a = program_.store.find(p.task_id, p.device);
        if (!a) {
          return error_frame(req.request_id,
                             "no artifact for " + p.task_id + " on " +
                                 runtime::to_string(p.device));
        }
        obs::TraceSpan span;
        if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
          span.begin(rec, "net", "serve:" + p.task_id);
        }
        const auto& mf = a->manifest();
        std::vector<bc::Value> in =
            serde::unpack_batch(p.batch, mf.param_types[0]);
        double t_queue0 = now_us();  // decode done, start waiting
        std::vector<bc::Value> out;
        double t_exec0 = 0, t_exec1 = 0;
        {
          // Serialize batches per artifact: device simulators are stateful.
          std::lock_guard<std::mutex> lock(*locks_.at(a));
          t_exec0 = now_us();  // lock acquired: queue wait is over
          out = a->process(in);
          t_exec1 = now_us();
        }
        Frame f;
        f.type = FrameType::kProcessOk;
        f.request_id = req.request_id;
        f.payload = serde::pack_batch(out, mf.return_type,
                                      serde::wire_pool());
        double t_encode1 = now_us();
        exec_hist_.record_ns(
            static_cast<uint64_t>((t_exec1 - t_exec0) * 1e3));
        if (traced) {
          // The four phases a client RTT hides, on the server clock. The
          // client shifts them onto its timeline with the same exchange's
          // NTP-midpoint offset and renders them in a per-endpoint lane.
          tele.spans.push_back({"decode", t_decode0, t_queue0 - t_decode0});
          tele.spans.push_back({"queue", t_queue0, t_exec0 - t_queue0});
          tele.spans.push_back({"execute", t_exec0, t_exec1 - t_exec0});
          tele.spans.push_back({"encode", t_exec1, t_encode1 - t_exec1});
        }
        served_.fetch_add(1, std::memory_order_relaxed);
        if (span.active()) {
          span.set_args(obs::JsonArgs()
                            .add("elements", static_cast<uint64_t>(in.size()))
                            .add("bytes_in",
                                 static_cast<uint64_t>(p.batch.size()))
                            .str());
        }
        return f;
      }
      default:
        return error_frame(req.request_id,
                           std::string("unexpected frame type: ") +
                               to_string(req.type));
    }
  } catch (const std::exception& e) {
    // Artifact faults and malformed payloads surface as protocol errors;
    // the connection stays up.
    return error_frame(req.request_id, e.what());
  }
}

void DeviceServer::collect_telemetry(std::vector<obs::GaugeSample>& out,
                                     bool compat) const {
  out.emplace_back("server.active_connections",
                   static_cast<double>(active_connections()));
  out.emplace_back("server.requests_served",
                   static_cast<double>(requests_served()));
  out.emplace_back("server.artifacts",
                   static_cast<double>(listing_.size()));
  out.emplace_back("server.exec_batches",
                   static_cast<double>(exec_hist_.count()));
  if (compat) {
    out.emplace_back("server.exec_p50_us", exec_hist_.percentile_us(50));
    out.emplace_back("server.exec_p99_us", exec_hist_.percentile_us(99));
  }
}

void DeviceServer::collect_histograms(
    std::vector<obs::HistogramSample>& out) const {
  out.push_back(obs::HistogramSample::from("server.exec_us", exec_hist_));
}

void DeviceServer::drop_all_connections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& c : conns_) c->sock.shutdown_both();
}

void DeviceServer::abrupt_stop() {
  crashed_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  if (listener_) listener_->close();
  drop_all_connections();
}

void DeviceServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  drop_all_connections();
  // No new connections can appear now (accept thread joined), so the list
  // is stable without the lock — but hold it anyway for clarity.
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->th.joinable()) {
      // A serve thread that called abrupt_stop() is in this list; joining
      // it from itself would deadlock — but abrupt_stop() returns out of
      // serve() immediately, so by the time stop() runs on another thread
      // the serve thread is exiting. Self-join cannot happen because
      // stop() is never called from a serve thread.
      c->th.join();
    }
  }
}

}  // namespace lm::net
