#include "net/telemetry_http.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/flight_recorder.h"
#include "serde/buffer_pool.h"

namespace lm::net {

namespace {

constexpr size_t kMaxRequestBytes = 8192;
constexpr size_t kMaxScratchStrings = 8;

/// Frames status line + headers + body into `out` (appended; the caller
/// hands in a cleared pooled buffer). snprintf into a stack buffer keeps
/// the header free of std::to_string temporaries.
void frame_http(int status, const char* reason, const char* content_type,
                const std::string& body, std::vector<uint8_t>& out) {
  char head[192];
  int n = std::snprintf(head, sizeof(head),
                        "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
                        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                        status, reason, content_type, body.size());
  out.insert(out.end(), head, head + (n < 0 ? 0 : n));
  out.insert(out.end(), body.begin(), body.end());
}

}  // namespace

TelemetryServer::TelemetryServer(const obs::TelemetryHub& hub, Options opts)
    : hub_(hub), opts_(opts) {}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::start() {
  listener_ = std::make_unique<Listener>(opts_.port);
  port_ = listener_->port();
  endpoint_ = "127.0.0.1:" + std::to_string(port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TelemetryServer::accept_loop() {
  for (;;) {
    Socket s = listener_->accept();
    if (!s.valid()) return;  // listener closed
    if (stopping_.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(conns_mu_);
    // Reap finished connections first: a 10 Hz scraper over a long soak
    // would otherwise accumulate one dead thread per request.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->th.joinable()) (*it)->th.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(s);
    Conn* raw = conn.get();
    conns_.push_back(std::move(conn));
    conns_.back()->th = std::thread([this, raw] { serve(raw); });
  }
}

void TelemetryServer::serve(Conn* conn) {
  Deadline dl = deadline_in_ms(opts_.request_timeout_ms);
  try {
    // Read until the end of the request head (blank line) or the cap; the
    // request line is all we route on.
    std::string head;
    uint8_t buf[512];
    while (head.size() < kMaxRequestBytes &&
           head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos) {
      size_t n = conn->sock.recv_some(buf, dl);
      if (n == 0) break;  // peer closed early
      head.append(reinterpret_cast<const char*>(buf), n);
    }
    size_t eol = head.find_first_of("\r\n");
    std::string request_line =
        eol == std::string::npos ? head : head.substr(0, eol);
    // Scrape hot path: body scratch and response bytes both come from
    // pools, so a 10 Hz scraper settles into zero allocations per request
    // once warm.
    std::string body = acquire_scratch();
    Route route = respond(request_line, body);
    std::vector<uint8_t> response = serde::wire_pool().acquire();
    frame_http(route.status, route.reason, route.content_type, body,
               response);
    release_scratch(std::move(body));
    requests_.fetch_add(1, std::memory_order_relaxed);
    try {
      conn->sock.send_all({response.data(), response.size()}, dl);
    } catch (const TransportError&) {
      serde::wire_pool().release(std::move(response));
      throw;
    }
    serde::wire_pool().release(std::move(response));
  } catch (const TransportError&) {
    // Scraper went away or wedged past the deadline: drop the connection.
  }
  // Connection: close — the peer reads until EOF, so end the stream here.
  // The fd itself is released when the Conn is destroyed (reap or stop(),
  // both after joining this thread): shutdown only reads the fd, so it
  // cannot race with stop() waking a wedged connection the same way.
  conn->sock.shutdown_both();
  conn->done.store(true, std::memory_order_release);
}

TelemetryServer::Route TelemetryServer::respond(
    const std::string& request_line, std::string& body) {
  body.clear();
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  std::string method =
      sp1 == std::string::npos ? "" : request_line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? ""
                         : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    body = "only GET is served\n";
    return {405, "Method Not Allowed", "text/plain"};
  }
  if (size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);
  }
  if (path == "/metrics") {
    hub_.render_prometheus(body);
    return {200, "OK", "text/plain; version=0.0.4; charset=utf-8"};
  }
  if (path == "/healthz") {
    bool healthy = true;
    body = hub_.health_json(&healthy);
    body += '\n';
    return healthy
               ? Route{200, "OK", "application/json"}
               : Route{503, "Service Unavailable", "application/json"};
  }
  if (path == "/flight") {
    body =
        obs::FlightRecorder::instance().chrome_trace_json("telemetry-pull");
    return {200, "OK", "application/json"};
  }
  body = "no such endpoint (try /metrics, /healthz, /flight)\n";
  return {404, "Not Found", "text/plain"};
}

std::string TelemetryServer::acquire_scratch() {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  if (scratch_.empty()) return {};
  std::string s = std::move(scratch_.back());
  scratch_.pop_back();
  return s;
}

void TelemetryServer::release_scratch(std::string&& s) {
  if (s.capacity() == 0) return;
  std::lock_guard<std::mutex> lock(scratch_mu_);
  if (scratch_.size() >= kMaxScratchStrings) return;
  s.clear();
  scratch_.push_back(std::move(s));
}

void TelemetryServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    c->sock.shutdown_both();
    if (c->th.joinable()) c->th.join();
  }
}

int http_get(const std::string& host, uint16_t port, const std::string& path,
             std::string* body, int timeout_ms) {
  Deadline dl = deadline_in_ms(timeout_ms);
  Socket s = Socket::connect(host, port, dl);
  std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                    "\r\nConnection: close\r\n\r\n";
  s.send_all({reinterpret_cast<const uint8_t*>(req.data()), req.size()}, dl);
  std::string raw;
  uint8_t buf[4096];
  for (;;) {
    size_t n = s.recv_some(buf, dl);
    if (n == 0) break;  // Connection: close — EOF ends the response
    raw.append(reinterpret_cast<const char*>(buf), n);
    if (raw.size() > (64u << 20)) {
      throw TransportError("telemetry response too large");
    }
  }
  if (raw.compare(0, 5, "HTTP/") != 0) {
    throw TransportError("not an HTTP response from " + host + ":" +
                         std::to_string(port));
  }
  size_t sp = raw.find(' ');
  int status = 0;
  if (sp != std::string::npos) {
    status = std::atoi(raw.c_str() + sp + 1);
  }
  if (status == 0) {
    throw TransportError("malformed HTTP status line");
  }
  if (body) {
    size_t sep = raw.find("\r\n\r\n");
    size_t skip = 4;
    if (sep == std::string::npos) {
      sep = raw.find("\n\n");
      skip = 2;
    }
    *body = sep == std::string::npos ? "" : raw.substr(sep + skip);
  }
  return status;
}

}  // namespace lm::net
