// Thin RAII wrapper over POSIX TCP sockets for the remote-device transport.
//
// Deliberately minimal: blocking sockets with poll()-enforced deadlines.
// Every read/write takes an absolute deadline so a whole request — however
// many syscalls it spans — shares one timeout budget, which is what the
// per-request deadline semantics of RemoteSession need. All failures throw
// lm::TransportError; the runtime catches exactly that type to trigger
// bytecode fallback.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "util/error.h"

namespace lm::net {

using Deadline = std::chrono::steady_clock::time_point;

/// A deadline that never fires (blocking semantics).
Deadline no_deadline();
/// Now + ms (ms <= 0 → no_deadline()).
Deadline deadline_in_ms(int64_t ms);

/// A connected TCP stream. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& o) noexcept;
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port, throwing TransportError on failure or when the
  /// deadline passes mid-connect.
  static Socket connect(const std::string& host, uint16_t port,
                        Deadline deadline);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all of `data` or throws. MSG_NOSIGNAL: a peer that died mid-
  /// write yields a TransportError, never SIGPIPE.
  void send_all(std::span<const uint8_t> data, Deadline deadline);

  /// Reads exactly `out.size()` bytes or throws. A clean EOF before any
  /// byte of this read throws TransportError("connection closed by peer").
  void recv_all(std::span<uint8_t> out, Deadline deadline);

  /// Reads up to `out.size()` bytes; returns how many arrived, 0 on a
  /// clean EOF. For protocols whose message end is the connection end
  /// (HTTP/1.0 with Connection: close), where recv_all's exact-count
  /// contract cannot apply.
  size_t recv_some(std::span<uint8_t> out, Deadline deadline);

  // -- nonblocking mode (the poll-loop transport, net/poll_loop.h) --

  /// Switches the descriptor to O_NONBLOCK. The blocking helpers above
  /// must not be used afterwards; pair with send_nb/recv_nb.
  void set_nonblocking();

  /// Nonblocking send: returns how many bytes the kernel accepted — 0 when
  /// the socket buffer is full (would block). Throws TransportError on a
  /// hard error (peer reset, ...); MSG_NOSIGNAL, never SIGPIPE.
  size_t send_nb(std::span<const uint8_t> data);

  /// Nonblocking recv: returns bytes read — 0 when nothing is buffered
  /// (would block) — and sets *eof on a clean peer close. Throws
  /// TransportError on a hard error.
  size_t recv_nb(std::span<uint8_t> out, bool* eof);

  /// Half-closes both directions (wakes a peer blocked in recv) without
  /// releasing the descriptor. Safe to call from another thread while a
  /// recv is in flight — the basis of DeviceServer::abrupt_stop().
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1 (the transport is a
/// lab-network protocol; binding loopback by default keeps `lmdev` from
/// exposing an unauthenticated execution service).
class Listener {
 public:
  /// Binds and listens. port 0 → ephemeral; read the outcome from port().
  explicit Listener(uint16_t port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound port (resolved after construction even for port 0).
  uint16_t port() const { return port_; }

  /// Accepts one connection. Returns an invalid Socket when the listener
  /// was closed from another thread (clean shutdown), throws on real
  /// errors.
  Socket accept();

  /// Unblocks accept() from another thread.
  void close();

 private:
  /// Atomic because close() races with a blocked accept() by design.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace lm::net
