// Simulated FPGA device: drives a synthesized filter module through the
// RTL simulator, element by element, over the Fig. 4 handshake.
//
// Substitution note (DESIGN.md §1): the paper attaches real Xilinx boards
// or runs the Verilog in NCSim/ModelSim (§5 explicitly demonstrates the
// simulator path — Fig. 4 is a simulator waveform). This class is that
// simulator path: the Liquid Metal runtime pushes marshaled values into
// inData/inReady and collects outData/outReady, cycle-accurately.
#pragma once

#include <memory>
#include <string>

#include "fpga/synth.h"
#include "rtl/sim.h"
#include "serde/native.h"

namespace lm::fpga {

struct FpgaRunStats {
  uint64_t cycles = 0;          // total cycles for the stream
  uint64_t inputs_accepted = 0;
  uint64_t outputs_produced = 0;
  /// Cycles between the first input acceptance and its output (Fig. 4's
  /// read/compute/publish latency).
  uint64_t first_output_latency = 0;
};

/// One instantiated filter. Owns the synthesized module and a simulator.
class FpgaFilter {
 public:
  explicit FpgaFilter(FpgaCompileResult artifact);

  /// Streams `input` through the module. The input holds groups of
  /// `arity()` consecutive elements per firing; the result holds one output
  /// element per firing. Cycle counts land in `stats`.
  serde::CValue process(const serde::CValue& input,
                        FpgaRunStats* stats = nullptr);

  /// Enables VCD waveform capture for subsequent process() calls.
  void enable_waveform();
  /// The captured VCD document (empty when waveforms are disabled).
  std::string waveform() const;

  int arity() const { return ports_.arity; }
  /// One-line module identity for listings and remote servers (lmdev):
  /// "<module> (arity K, II N, latency L)".
  std::string describe() const;
  const FpgaPortMeta& ports() const { return ports_; }
  const rtl::Module& module() const { return *module_; }
  const std::string& verilog() const { return verilog_; }

 private:
  std::unique_ptr<rtl::Module> module_;
  std::string verilog_;
  FpgaPortMeta ports_;
  std::shared_ptr<rtl::VcdWriter> vcd_;
  bool want_vcd_ = false;
};

}  // namespace lm::fpga
