// Verilog text generation from the RTL netlist — the FPGA artifact of
// Fig. 2 ("the latter generates Verilog for the FPGA").
#pragma once

#include <string>

#include "rtl/netlist.h"

namespace lm::fpga {

/// Emits synthesizable Verilog-2001 for a module: port list, reg/wire
/// declarations, continuous assigns, and one clocked always block.
std::string emit_verilog(const rtl::Module& module);

/// Emits a self-checking Verilog testbench that drives the module's
/// inReady/inData handshake with the given stimulus words and $displays
/// the outData stream — the "generated testbench" HLS flows ship alongside
/// the artifact (paper §6). `in_data` holds one vector of words per input
/// port, all the same length.
std::string emit_testbench(const rtl::Module& module,
                           const std::vector<std::string>& in_ports,
                           const std::vector<std::vector<uint64_t>>& in_data);

}  // namespace lm::fpga
