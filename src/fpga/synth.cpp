#include "fpga/synth.h"

#include <functional>
#include <unordered_map>

#include "bytecode/compiler.h"
#include "fpga/verilog_emit.h"
#include "util/error.h"

namespace lm::fpga {

using lime::as;
using lime::BinOp;
using lime::ExprKind;
using lime::StmtKind;
using lime::TypeKind;
using lime::TypeRef;
using lime::UnOp;
using rtl::h_binary;
using rtl::h_const;
using rtl::h_mux;
using rtl::h_resize;
using rtl::h_sig;
using rtl::h_unary;
using rtl::HBinOp;
using rtl::HExprPtr;
using rtl::HUnOp;

namespace {

struct Exclude {
  std::string reason;
  /// Position of the offending construct; line 0 means "the method as a
  /// whole" and the catch site substitutes the method's declaration loc.
  SourceLoc loc{};
};

constexpr int kMaxInlineDepth = 8;

bool is_signed_type(const TypeRef& t) {
  return t->kind == TypeKind::kInt || t->kind == TypeKind::kLong;
}

/// The symbolic machine state during if-converted execution.
struct ExecState {
  std::unordered_map<int, HExprPtr> env;  // local slot → value
  HExprPtr returned;  // 1-bit flag: a return already fired on this path
  HExprPtr result;    // accumulated return value
};

class Synthesizer {
 public:
  Synthesizer(const FpgaSynthOptions& options) : options_(options) {}

  /// Symbolically executes `m` with the given parameter value expressions
  /// and returns the datapath expression for its result.
  HExprPtr run(const lime::MethodDecl& m, const std::vector<HExprPtr>& args) {
    return inline_method(m, args);
  }

 private:
  HExprPtr inline_method(const lime::MethodDecl& m,
                         const std::vector<HExprPtr>& args) {
    if (static_cast<int>(call_stack_.size()) > kMaxInlineDepth) {
      throw Exclude{"inline depth exceeded"};
    }
    for (const auto* f : call_stack_) {
      if (f == &m) throw Exclude{"recursive call to " + m.qualified_name()};
    }
    if (!m.body) throw Exclude{"method has no body"};
    call_stack_.push_back(&m);

    ExecState st;
    st.returned = h_const(1, 0);
    st.result = h_const(fpga_width(m.return_type), 0);
    size_t ai = 0;
    // Instance methods (value-enum operators) bind `this` at slot 0.
    if (!m.is_static) {
      LM_CHECK(!args.empty());
      st.env[0] = args[ai++];
    }
    for (const auto& p : m.params) {
      LM_CHECK(ai < args.size());
      st.env[p.slot] = h_resize(args[ai++], fpga_width(p.type),
                                is_signed_type(p.type));
    }
    exec_block(*m.body, st);
    call_stack_.pop_back();
    return st.result;
  }

  // -- statements --
  void exec_block(const lime::BlockStmt& b, ExecState& st) {
    for (const auto& s : b.stmts) {
      if (s) exec_stmt(*s, st);
    }
  }

  void exec_stmt(const lime::Stmt& s, ExecState& st) {
    switch (s.kind) {
      case StmtKind::kBlock:
        exec_block(as<lime::BlockStmt>(s), st);
        return;
      case StmtKind::kExpr: {
        const auto& es = as<lime::ExprStmt>(s);
        if (es.expr) eval(*es.expr, st);
        return;
      }
      case StmtKind::kVarDecl: {
        const auto& vd = as<lime::VarDeclStmt>(s);
        // `var` declarations carry no declared type; the initializer's
        // synthesis excludes any unsupported construct on its own.
        if (!vd.declared_type) {
          if (!vd.init) throw Exclude{"'var' local without initializer"};
          st.env[vd.slot] = eval(*vd.init, st);
          return;
        }
        switch (vd.declared_type->kind) {
          case lime::TypeKind::kBit:
          case lime::TypeKind::kBoolean:
          case lime::TypeKind::kInt:
          case lime::TypeKind::kClass:
          case lime::TypeKind::kLong:
            break;
          default:
            throw Exclude{"local '" + vd.name + "' of type " +
                              vd.declared_type->to_string() +
                              " is not synthesizable",
                          vd.loc};
        }
        int w = fpga_width(vd.declared_type);
        st.env[vd.slot] = vd.init ? eval(*vd.init, st) : h_const(w, 0);
        return;
      }
      case StmtKind::kIf: {
        const auto& is = as<lime::IfStmt>(s);
        HExprPtr cond = eval(*is.cond, st);
        if (cond->is_const()) {
          if (cond->value) {
            exec_stmt(*is.then_stmt, st);
          } else if (is.else_stmt) {
            exec_stmt(*is.else_stmt, st);
          }
          return;
        }
        // If-conversion: run both arms on clones, mux-join the state.
        ExecState then_st = st;
        ExecState else_st = st;
        exec_stmt(*is.then_stmt, then_st);
        if (is.else_stmt) exec_stmt(*is.else_stmt, else_st);
        merge(cond, then_st, else_st, st);
        return;
      }
      case StmtKind::kFor: {
        const auto& fs = as<lime::ForStmt>(s);
        if (fs.init) exec_stmt(*fs.init, st);
        int iterations = 0;
        for (;;) {
          if (fs.cond) {
            HExprPtr c = eval(*fs.cond, st);
            if (!c->is_const()) {
              throw Exclude{
                  "loop bound is not a compile-time constant (cannot unroll)"};
            }
            if (!c->value) break;
          }
          if (++iterations > options_.max_unroll) {
            throw Exclude{"loop exceeds the unroll budget of " +
                          std::to_string(options_.max_unroll)};
          }
          exec_stmt(*fs.body, st);
          if (fs.update) eval(*fs.update, st);
        }
        return;
      }
      case StmtKind::kWhile: {
        const auto& ws = as<lime::WhileStmt>(s);
        int iterations = 0;
        for (;;) {
          HExprPtr c = eval(*ws.cond, st);
          if (!c->is_const()) {
            throw Exclude{"while condition is not a compile-time constant"};
          }
          if (!c->value) break;
          if (++iterations > options_.max_unroll) {
            throw Exclude{"loop exceeds the unroll budget"};
          }
          exec_stmt(*ws.body, st);
        }
        return;
      }
      case StmtKind::kReturn: {
        const auto& rs = as<lime::ReturnStmt>(s);
        if (!rs.value) throw Exclude{"void return in a filter"};
        HExprPtr v = eval(*rs.value, st);
        // First-return-wins under if-conversion.
        st.result = h_mux(st.returned, st.result, v);
        st.returned = h_const(1, 1);
        return;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        throw Exclude{"break/continue is not synthesizable here"};
    }
  }

  void merge(const HExprPtr& cond, const ExecState& t, const ExecState& e,
             ExecState& out) {
    out.env.clear();
    // Slots present in either arm (seeded from the pre-branch state which
    // both clones extend).
    for (const auto& [slot, tv] : t.env) {
      auto it = e.env.find(slot);
      if (it == e.env.end()) continue;  // branch-local variable, drop
      out.env[slot] =
          tv == it->second ? tv : h_mux(cond, tv, it->second);
    }
    out.returned = h_mux(cond, t.returned, e.returned);
    out.result = h_mux(cond, t.result, e.result);
  }

  // -- expressions --
  HExprPtr eval(const lime::Expr& ex, ExecState& st) {
    switch (ex.kind) {
      case ExprKind::kIntLit: {
        const auto& l = as<lime::IntLitExpr>(ex);
        return h_const(l.is_long ? 64 : 32, static_cast<uint64_t>(l.value));
      }
      case ExprKind::kFloatLit:
        throw Exclude{"floating point is not supported by the FPGA backend"};
      case ExprKind::kBoolLit:
        return h_const(1, as<lime::BoolLitExpr>(ex).value ? 1 : 0);
      case ExprKind::kBitLit:
        throw Exclude{"bit-array literal in a filter body"};
      case ExprKind::kName: {
        const auto& n = as<lime::NameExpr>(ex);
        if (n.ref == lime::NameRefKind::kLocal) {
          auto it = st.env.find(n.slot);
          if (it == st.env.end()) throw Exclude{"use of array-typed local"};
          return it->second;
        }
        if (n.ref == lime::NameRefKind::kEnumConst) {
          return h_const(32, static_cast<uint64_t>(n.enum_ordinal));
        }
        if (auto v = bc::eval_const_expr(n)) return const_to_hexpr(*v);
        throw Exclude{"field access in a filter body"};
      }
      case ExprKind::kThis: {
        auto it = st.env.find(0);
        LM_CHECK(it != st.env.end());
        return it->second;
      }
      case ExprKind::kUnary: {
        const auto& u = as<lime::UnaryExpr>(ex);
        if (u.op == UnOp::kUserOp) {
          HExprPtr recv = eval(*u.operand, st);
          return inline_method(*u.user_method, {recv});
        }
        HExprPtr v = eval(*u.operand, st);
        switch (u.op) {
          case UnOp::kNeg:
            check_integral(u.operand->type, "negation");
            return h_unary(HUnOp::kNeg, v);
          case UnOp::kNot:
            return h_unary(HUnOp::kNot, v);
          case UnOp::kBitNot:
            return h_unary(HUnOp::kNot, v);
          case UnOp::kUserOp:
            break;
        }
        LM_UNREACHABLE("bad unary");
      }
      case ExprKind::kBinary:
        return eval_binary(as<lime::BinaryExpr>(ex), st);
      case ExprKind::kAssign: {
        const auto& a = as<lime::AssignExpr>(ex);
        if (a.target->kind != ExprKind::kName) {
          throw Exclude{"assignment through memory in a filter body"};
        }
        const auto& n = as<lime::NameExpr>(*a.target);
        LM_CHECK(n.ref == lime::NameRefKind::kLocal);
        HExprPtr v = eval(*a.value, st);
        if (a.compound) {
          auto it = st.env.find(n.slot);
          LM_CHECK(it != st.env.end());
          v = apply_binop(a.op, a.target->type, it->second, v);
        }
        st.env[n.slot] = v;
        return v;
      }
      case ExprKind::kTernary: {
        const auto& t = as<lime::TernaryExpr>(ex);
        HExprPtr c = eval(*t.cond, st);
        HExprPtr a = eval(*t.then_expr, st);
        HExprPtr b = eval(*t.else_expr, st);
        return h_mux(c, a, b);
      }
      case ExprKind::kCall: {
        const auto& c = as<lime::CallExpr>(ex);
        using B = lime::CallExpr::Builtin;
        switch (c.builtin) {
          case B::kNone:
            break;
          case B::kAbs: {
            check_integral(c.type, "Math.abs");
            HExprPtr v = eval(*c.args[0], st);
            HExprPtr zero = h_const(v->width, 0);
            return h_mux(h_binary(HBinOp::kLtS, v, zero),
                         h_unary(HUnOp::kNeg, v), v);
          }
          case B::kMin: case B::kMax: {
            check_integral(c.type, "Math.min/max");
            HExprPtr a = eval(*c.args[0], st);
            HExprPtr b = eval(*c.args[1], st);
            HExprPtr a_lt = h_binary(HBinOp::kLtS, a, b);
            return c.builtin == B::kMin ? h_mux(a_lt, a, b)
                                        : h_mux(a_lt, b, a);
          }
          default:
            throw Exclude{"Math intrinsic '" + c.method +
                          "' is not synthesizable (floating point)"};
        }
        LM_CHECK(c.resolved != nullptr);
        if (!c.resolved->is_pure) {
          throw Exclude{"call to impure method '" +
                        c.resolved->qualified_name() + "'"};
        }
        std::vector<HExprPtr> args;
        if (!c.resolved->is_static) {
          LM_CHECK(c.receiver != nullptr);
          args.push_back(eval(*c.receiver, st));
        }
        for (const auto& a : c.args) args.push_back(eval(*a, st));
        return inline_method(*c.resolved, args);
      }
      case ExprKind::kCast: {
        const auto& c = as<lime::CastExpr>(ex);
        if (c.target->is_floating() || c.operand->type->is_floating()) {
          throw Exclude{"floating point is not supported by the FPGA backend"};
        }
        HExprPtr v = eval(*c.operand, st);
        return h_resize(v, fpga_width(c.target),
                        is_signed_type(c.operand->type));
      }
      case ExprKind::kField: {
        const auto& f = as<lime::FieldExpr>(ex);
        if (f.enum_ordinal >= 0) {
          return h_const(f.enum_class ? 32 : 1,
                         static_cast<uint64_t>(f.enum_ordinal));
        }
        if (auto v = bc::eval_const_expr(f)) return const_to_hexpr(*v);
        throw Exclude{"field access in a filter body", f.loc};
      }
      case ExprKind::kIndex:
        throw Exclude{"array access in a filter body (no memory "
                      "inference in this backend)",
                      ex.loc};
      case ExprKind::kNewArray:
        throw Exclude{"array allocation in a filter body", ex.loc};
      case ExprKind::kMap: case ExprKind::kReduce: case ExprKind::kTask:
      case ExprKind::kRelocate: case ExprKind::kConnect:
        throw Exclude{"task/map/reduce operator in a filter body", ex.loc};
    }
    LM_UNREACHABLE("unhandled expression");
  }

  /// Materializes a compile-time constant as a netlist literal.
  static HExprPtr const_to_hexpr(const bc::Value& v) {
    switch (v.kind()) {
      case bc::ValueKind::kInt:
        return h_const(32, static_cast<uint32_t>(v.as_i32()));
      case bc::ValueKind::kLong:
        return h_const(64, static_cast<uint64_t>(v.as_i64()));
      case bc::ValueKind::kBool:
        return h_const(1, v.as_bool() ? 1 : 0);
      case bc::ValueKind::kBit:
        return h_const(1, v.as_bit() ? 1 : 0);
      default:
        throw Exclude{"constant type not representable on the FPGA"};
    }
  }

  void check_integral(const TypeRef& t, const char* what) {
    if (t->is_floating()) {
      throw Exclude{std::string(what) +
                    " on floating point is not synthesizable"};
    }
  }

  HExprPtr apply_binop(BinOp op, const TypeRef& operand_type, HExprPtr l,
                       HExprPtr r) {
    switch (op) {
      case BinOp::kAdd: return h_binary(HBinOp::kAdd, l, r);
      case BinOp::kSub: return h_binary(HBinOp::kSub, l, r);
      case BinOp::kMul: return h_binary(HBinOp::kMul, l, r);
      case BinOp::kDiv:
      case BinOp::kRem:
        // Constant folding may still succeed (unrolled loops with constant
        // operands); otherwise there is no combinational divider.
        if (l->is_const() && r->is_const()) {
          if (r->value == 0) throw Exclude{"constant division by zero"};
          int64_t a = rtl::sign_extend(l->value, l->width);
          int64_t b = rtl::sign_extend(r->value, r->width);
          return h_const(l->width, static_cast<uint64_t>(
                                       op == BinOp::kDiv ? a / b : a % b));
        }
        throw Exclude{"integer division has no combinational form here"};
      case BinOp::kAnd: return h_binary(HBinOp::kAnd, l, r);
      case BinOp::kOr: return h_binary(HBinOp::kOr, l, r);
      case BinOp::kXor: return h_binary(HBinOp::kXor, l, r);
      case BinOp::kShl:
        return h_binary(HBinOp::kShl, l, h_resize(r, l->width, false));
      case BinOp::kShr:
        // Lime follows Java: >> on signed ints is arithmetic.
        return h_binary(is_signed_type(operand_type) ? HBinOp::kShrA
                                                     : HBinOp::kShrL,
                        l, h_resize(r, l->width, false));
      case BinOp::kLAnd: return h_binary(HBinOp::kAnd, l, r);
      case BinOp::kLOr: return h_binary(HBinOp::kOr, l, r);
      case BinOp::kEq: return h_binary(HBinOp::kEq, l, r);
      case BinOp::kNe: return h_binary(HBinOp::kNe, l, r);
      case BinOp::kLt: return h_binary(HBinOp::kLtS, l, r);
      case BinOp::kLe: return h_binary(HBinOp::kLeS, l, r);
      case BinOp::kGt: return h_binary(HBinOp::kGtS, l, r);
      case BinOp::kGe: return h_binary(HBinOp::kGeS, l, r);
    }
    LM_UNREACHABLE("bad binop");
  }

  HExprPtr eval_binary(const lime::BinaryExpr& b, ExecState& st) {
    if (b.lhs->type->is_floating()) {
      throw Exclude{"floating point is not supported by the FPGA backend"};
    }
    HExprPtr l = eval(*b.lhs, st);
    HExprPtr r = eval(*b.rhs, st);
    return apply_binop(b.op, b.lhs->type, l, r);
  }

  const FpgaSynthOptions& options_;
  std::vector<const lime::MethodDecl*> call_stack_;
};

}  // namespace

int fpga_width(const TypeRef& type) {
  switch (type->kind) {
    case TypeKind::kBit:
    case TypeKind::kBoolean:
      return 1;
    case TypeKind::kInt:
    case TypeKind::kClass:  // enum ordinal
      return 32;
    case TypeKind::kLong:
      return 64;
    default:
      throw InternalError("type " + type->to_string() +
                          " has no FPGA representation");
  }
}

namespace {

void check_filter_suitable(const lime::MethodDecl& method) {
  if (!method.is_pure) {
    throw Exclude{"method " + method.qualified_name() + " is not pure"};
  }
  if (method.return_type->is_floating()) {
    throw Exclude{"floating point is not supported by the FPGA backend"};
  }
  for (const auto& p : method.params) {
    if (p.type->is_floating()) {
      throw Exclude{"floating point is not supported by the FPGA backend"};
    }
    if (p.type->is_array_like()) {
      throw Exclude{"array parameters are not synthesizable here"};
    }
  }
}

/// Wraps a datapath over the first method's parameters in the Fig. 4
/// read/compute/publish handshake (or the pipelined variant). The datapath
/// callback receives the input-register expressions in parameter order.
FpgaCompileResult wrap_datapath(
    const std::string& module_name, const lime::MethodDecl& head,
    const lime::TypeRef& result_type, const FpgaSynthOptions& options,
    const std::function<rtl::HExprPtr(Synthesizer&,
                                      const std::vector<HExprPtr>&)>& build) {
  FpgaCompileResult result;
  auto module = std::make_unique<rtl::Module>();
  module->name = module_name;

  using rtl::SigKind;
  rtl::SigId rst = module->add_signal("rst", 1, SigKind::kInput);
  rtl::SigId in_ready = module->add_signal("inReady", 1, SigKind::kInput);

  FpgaPortMeta ports;
  ports.arity = static_cast<int>(head.params.size());
  ports.pipelined = options.pipelined;
  ports.latency = 3;
  ports.initiation_interval = options.pipelined ? 1 : 3;
  ports.out_width = fpga_width(result_type);

  std::vector<rtl::SigId> in_data, in_regs;
  for (size_t i = 0; i < head.params.size(); ++i) {
    int w = fpga_width(head.params[i].type);
    std::string pname = "inData" + std::to_string(i);
    in_data.push_back(module->add_signal(pname, w, SigKind::kInput));
    in_regs.push_back(
        module->add_signal("in_reg" + std::to_string(i), w, SigKind::kReg));
    ports.in_data.push_back(pname);
    ports.in_widths.push_back(w);
  }
  rtl::SigId out_ready = module->add_signal("outReady", 1, SigKind::kOutput);
  rtl::SigId out_data =
      module->add_signal("outData", ports.out_width, SigKind::kOutput);
  rtl::SigId in_take = module->add_signal("inTake", 1, SigKind::kOutput);
  rtl::SigId result_reg =
      module->add_signal("result", ports.out_width, SigKind::kReg);

  Synthesizer synth(options);
  std::vector<HExprPtr> args;
  for (size_t i = 0; i < in_regs.size(); ++i) {
    args.push_back(h_sig(in_regs[i], module->sig(in_regs[i]).width));
  }
  HExprPtr datapath = build(synth, args);
  datapath =
      h_resize(datapath, ports.out_width, is_signed_type(result_type));

  HExprPtr rst_e = h_sig(rst, 1);
  HExprPtr in_ready_e = h_sig(in_ready, 1);
  HExprPtr not_rst = h_unary(HUnOp::kNot, rst_e);

  if (!options.pipelined) {
    // Fig. 4 FSM: IDLE(0) -> COMPUTE(1) -> PUBLISH(2) -> IDLE.
    rtl::SigId state = module->add_signal("state", 2, SigKind::kReg);
    HExprPtr state_e = h_sig(state, 2);
    HExprPtr s_idle = h_binary(HBinOp::kEq, state_e, h_const(2, 0));
    HExprPtr s_comp = h_binary(HBinOp::kEq, state_e, h_const(2, 1));
    HExprPtr s_pub = h_binary(HBinOp::kEq, state_e, h_const(2, 2));
    HExprPtr taking = h_binary(
        HBinOp::kAnd, h_binary(HBinOp::kAnd, s_idle, in_ready_e), not_rst);

    for (size_t i = 0; i < in_regs.size(); ++i) {
      int w = module->sig(in_regs[i]).width;
      module->assign_next(
          in_regs[i],
          h_mux(taking, h_sig(in_data[i], w), h_sig(in_regs[i], w)));
    }
    module->assign_next(
        state,
        h_mux(rst_e, h_const(2, 0),
              h_mux(taking, h_const(2, 1),
                    h_mux(s_comp, h_const(2, 2),
                          h_mux(s_pub, h_const(2, 0), state_e)))));
    module->assign_next(
        result_reg,
        h_mux(s_comp, datapath, h_sig(result_reg, ports.out_width)));
    module->assign(out_ready, h_binary(HBinOp::kAnd, s_pub, not_rst));
    module->assign(out_data, h_sig(result_reg, ports.out_width));
    module->assign(in_take, h_binary(HBinOp::kAnd, s_idle, not_rst));
  } else {
    // 3-stage pipeline (read -> compute -> publish), II = 1.
    rtl::SigId v0 = module->add_signal("v0_valid", 1, SigKind::kReg);
    rtl::SigId v1 = module->add_signal("v1_valid", 1, SigKind::kReg);

    HExprPtr accept = h_binary(HBinOp::kAnd, in_ready_e, not_rst);
    for (size_t i = 0; i < in_regs.size(); ++i) {
      int w = module->sig(in_regs[i]).width;
      module->assign_next(
          in_regs[i],
          h_mux(accept, h_sig(in_data[i], w), h_sig(in_regs[i], w)));
    }
    module->assign_next(v0, h_mux(rst_e, h_const(1, 0), accept));
    module->assign_next(v1, h_mux(rst_e, h_const(1, 0), h_sig(v0, 1)));
    module->assign_next(
        result_reg,
        h_mux(h_sig(v0, 1), datapath, h_sig(result_reg, ports.out_width)));
    module->assign(out_ready, h_sig(v1, 1));
    module->assign(out_data, h_sig(result_reg, ports.out_width));
    module->assign(in_take, not_rst);
  }

  module->validate();
  result.verilog = emit_verilog(*module);
  result.module = std::move(module);
  result.ports = std::move(ports);
  return result;
}

std::string module_name_for(const std::string& qualified) {
  std::string s = qualified;
  for (char& c : s) {
    if (c == '.' || c == ':') c = '_';
  }
  return s;
}

}  // namespace

FpgaCompileResult synthesize_filter(const lime::MethodDecl& method,
                                    const FpgaSynthOptions& options) {
  try {
    check_filter_suitable(method);
    return wrap_datapath(
        module_name_for(method.qualified_name()), method, method.return_type,
        options,
        [&method](Synthesizer& synth, const std::vector<HExprPtr>& args) {
          return synth.run(method, args);
        });
  } catch (const Exclude& ex) {
    FpgaCompileResult result;
    result.exclusion_reason = ex.reason;
    result.exclusion_loc = ex.loc.line > 0 ? ex.loc : method.loc;
    return result;
  }
}

FpgaCompileResult synthesize_segment(
    const std::vector<const lime::MethodDecl*>& chain,
    const FpgaSynthOptions& options) {
  LM_CHECK(!chain.empty());
  if (chain.size() == 1) return synthesize_filter(*chain[0], options);
  try {
    std::string name = "seg";
    for (const auto* m : chain) {
      check_filter_suitable(*m);
      name += "_" + module_name_for(m->qualified_name());
    }
    for (size_t i = 1; i < chain.size(); ++i) {
      if (chain[i]->params.size() != 1) {
        throw Exclude{"fused segment stage '" + chain[i]->qualified_name() +
                      "' must be unary"};
      }
    }
    return wrap_datapath(
        name, *chain[0], chain.back()->return_type, options,
        [&chain](Synthesizer& synth, const std::vector<HExprPtr>& args) {
          // Compose the datapaths combinationally, resizing at each stage
          // boundary exactly as a value would convert.
          HExprPtr cur = synth.run(*chain[0], args);
          for (size_t i = 1; i < chain.size(); ++i) {
            cur = h_resize(cur, fpga_width(chain[i]->params[0].type),
                           is_signed_type(chain[i - 1]->return_type));
            cur = synth.run(*chain[i], {cur});
          }
          return cur;
        });
  } catch (const Exclude& ex) {
    FpgaCompileResult result;
    result.exclusion_reason = ex.reason;
    result.exclusion_loc = ex.loc.line > 0 ? ex.loc : chain[0]->loc;
    return result;
  }
}

}  // namespace lm::fpga
