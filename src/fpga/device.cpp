#include "fpga/device.h"

#include "util/error.h"

namespace lm::fpga {

using bc::ElemCode;
using serde::CValue;

namespace {

/// Raw bit pattern of element i, masked to the port width.
uint64_t element_bits(const CValue& v, size_t i) {
  switch (v.elem) {
    case ElemCode::kI32:
      return static_cast<uint32_t>(v.i32s()[i]);
    case ElemCode::kI64:
      return static_cast<uint64_t>(v.i64s()[i]);
    case ElemCode::kBool:
    case ElemCode::kBit:
      return v.bytes()[i];
    default:
      throw RuntimeError("element type not representable on the FPGA");
  }
}

void store_bits(CValue& v, size_t i, uint64_t bits, int width) {
  switch (v.elem) {
    case ElemCode::kI32:
      v.i32s()[i] = static_cast<int32_t>(rtl::sign_extend(bits, width));
      return;
    case ElemCode::kI64:
      v.i64s()[i] = rtl::sign_extend(bits, width);
      return;
    case ElemCode::kBool:
    case ElemCode::kBit:
      v.bytes()[i] = bits & 1;
      return;
    default:
      throw RuntimeError("element type not representable on the FPGA");
  }
}

ElemCode out_elem_for_width(int width, ElemCode in_elem) {
  if (width == 1) {
    return in_elem == ElemCode::kBool ? ElemCode::kBool : ElemCode::kBit;
  }
  return width <= 32 ? ElemCode::kI32 : ElemCode::kI64;
}

}  // namespace

FpgaFilter::FpgaFilter(FpgaCompileResult artifact) {
  LM_CHECK_MSG(artifact.ok(), "cannot instantiate an excluded FPGA artifact");
  module_ = std::move(artifact.module);
  verilog_ = std::move(artifact.verilog);
  ports_ = std::move(artifact.ports);
}

std::string FpgaFilter::describe() const {
  return module_->name + " (arity " + std::to_string(ports_.arity) + ", II " +
         std::to_string(ports_.initiation_interval) + ", latency " +
         std::to_string(ports_.latency) + ")";
}

void FpgaFilter::enable_waveform() { want_vcd_ = true; }

std::string FpgaFilter::waveform() const {
  return vcd_ ? vcd_->str() : std::string();
}

CValue FpgaFilter::process(const CValue& input, FpgaRunStats* stats) {
  size_t k = static_cast<size_t>(ports_.arity);
  LM_CHECK_MSG(input.count % k == 0,
               "input stream length " << input.count
                                      << " is not a multiple of the filter "
                                         "arity "
                                      << k);
  size_t firings = input.count / k;

  rtl::RtlSim sim(*module_);
  if (want_vcd_) {
    vcd_ = std::make_shared<rtl::VcdWriter>(*module_);
    sim.attach_vcd(vcd_);
  }
  sim.reset(2);

  // The ElemCode of the output follows the module's output width; 1-bit
  // outputs keep the input's bool/bit flavor when it matches.
  CValue out = CValue::make(out_elem_for_width(ports_.out_width, input.elem),
                            true, firings);

  FpgaRunStats local;
  uint64_t start_cycle = sim.cycle();
  uint64_t first_accept = 0;
  bool saw_first_accept = false;
  bool saw_first_output = false;

  size_t next_in = 0;
  size_t next_out = 0;
  // Watchdog: a healthy module produces one output at least every
  // latency+II cycles; give a generous budget.
  uint64_t budget = 16 + firings * (static_cast<uint64_t>(
                                        ports_.initiation_interval) +
                                    static_cast<uint64_t>(ports_.latency));
  budget = budget * 4 + 64;

  while (next_out < firings) {
    if (sim.cycle() - start_cycle > budget) {
      throw RuntimeError("FPGA module " + module_->name +
                         " stalled (handshake deadlock?)");
    }
    // Drive the input side.
    bool can_take = sim.peek("inTake") != 0;
    if (can_take && next_in < firings) {
      for (size_t p = 0; p < k; ++p) {
        sim.poke(ports_.in_data[p], element_bits(input, next_in * k + p));
      }
      sim.poke("inReady", 1);
      if (!saw_first_accept) {
        saw_first_accept = true;
        first_accept = sim.cycle();
      }
      ++next_in;
      ++local.inputs_accepted;
    } else {
      sim.poke("inReady", 0);
    }
    // Sample the output side (combinational view of this cycle).
    if (sim.peek("outReady") != 0) {
      store_bits(out, next_out, sim.peek("outData"), ports_.out_width);
      if (!saw_first_output) {
        saw_first_output = true;
        // Inclusive cycle count: read cycle, compute cycle(s), publish
        // cycle — "one cycle to read, one cycle to compute, and one cycle
        // to publish the result" (§5) gives 3.
        local.first_output_latency = sim.cycle() - first_accept + 1;
      }
      ++next_out;
      ++local.outputs_produced;
    }
    sim.step(1);
  }
  local.cycles = sim.cycle() - start_cycle;
  if (stats) *stats = local;
  return out;
}

}  // namespace lm::fpga
