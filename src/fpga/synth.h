// The FPGA device compiler (§3, §5): behavioural synthesis of relocated
// filter tasks into RTL modules + Verilog artifacts.
//
// Suitability filter (constructs excluded by this backend, per §3's
// per-device exclusion rule):
//   * floating-point types (no FP cores in this backend — the paper calls
//     its FPGA backend "a work in progress" with a growing feature set),
//   * integer division/remainder (no combinational divider),
//   * arrays and allocation (no memory inference),
//   * unbounded loops (while, or for-loops whose trip count is not a
//     compile-time constant), break/continue,
//   * recursion; calls to pure methods are inlined, bounded loops unrolled.
//
// The synthesized module reproduces the Fig. 4 interface and timing:
// read (1 cycle) → compute (1 cycle) → publish (1 cycle), with these ports:
//
//   in : rst, inReady (input valid), inData0..k-1 (one per filter param)
//   out: inTake (ready to accept), outReady (output valid), outData
//
// Two microarchitectures are generated from the same datapath:
//   * FSM mode (default): the Fig. 4 behaviour — "the module I/O is not
//     fully pipelined": initiation interval 3.
//   * pipelined mode: 3-stage pipeline, initiation interval 1 (the ablation
//     measured by bench_fpga_waveform).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lime/ast.h"
#include "rtl/netlist.h"

namespace lm::fpga {

struct FpgaSynthOptions {
  bool pipelined = false;
  int max_unroll = 4096;  // total loop iterations before exclusion
};

struct FpgaPortMeta {
  std::vector<std::string> in_data;  // one port name per filter parameter
  std::vector<int> in_widths;
  std::string out_data = "outData";
  int out_width = 1;
  int arity = 1;
  bool pipelined = false;
  /// Cycles from accepting an input to outReady (3 in both modes).
  int latency = 3;
  /// Cycles between accepted inputs in steady state.
  int initiation_interval = 3;
};

struct FpgaCompileResult {
  std::unique_ptr<rtl::Module> module;  // null when excluded
  std::string verilog;                  // the artifact text (Fig. 2)
  FpgaPortMeta ports;
  std::string exclusion_reason;
  /// Source position of the construct that triggered the exclusion (the
  /// method declaration when no finer position is known).
  SourceLoc exclusion_loc{};

  bool ok() const { return module != nullptr; }
};

/// Synthesizes one filter method. The task identifier (manifest key) is the
/// method's qualified name.
FpgaCompileResult synthesize_filter(const lime::MethodDecl& method,
                                    const FpgaSynthOptions& options = {});

/// Synthesizes a fused pipeline segment into a single module: the datapaths
/// of consecutive filters compose combinationally (out = f_k(...f_1(in))),
/// sharing one read/compute/publish wrapper. All filters after the first
/// must be unary. The module name and task id derive from the whole chain.
FpgaCompileResult synthesize_segment(
    const std::vector<const lime::MethodDecl*>& chain,
    const FpgaSynthOptions& options = {});

/// Bit width of a Lime type on the FPGA (bit/boolean→1, int/enum→32,
/// long→64). Throws InternalError for unsynthesizable types.
int fpga_width(const lime::TypeRef& type);

}  // namespace lm::fpga
