#include "cache/serialize.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "rtl/netlist.h"
#include "util/error.h"

namespace lm::cache {

namespace {

// Refuses a declared element count the remaining bytes cannot possibly
// hold — a corrupt length prefix must become a clean decode error, never a
// multi-gigabyte allocation.
void check_count(const ByteReader& r, uint64_t n, size_t min_elem_bytes) {
  if (min_elem_bytes == 0) min_elem_bytes = 1;
  if (n > r.remaining() / min_elem_bytes) {
    throw RuntimeError("cache payload declares " + std::to_string(n) +
                       " elements with only " +
                       std::to_string(r.remaining()) + " bytes left");
  }
}

// -- lime::TypeRef ---------------------------------------------------------
// Tag byte is the TypeKind (0xff = null ref). Class types round-trip by
// name only; decl stays nullptr (see the header comment).

constexpr uint8_t kNullType = 0xff;

void write_type(const lime::TypeRef& t, ByteWriter& w) {
  if (!t) {
    w.u8(kNullType);
    return;
  }
  w.u8(static_cast<uint8_t>(t->kind));
  switch (t->kind) {
    case lime::TypeKind::kArray:
    case lime::TypeKind::kValueArray:
      write_type(t->elem, w);
      break;
    case lime::TypeKind::kClass:
      w.str(t->class_name);
      break;
    default:
      break;
  }
}

lime::TypeRef read_type(ByteReader& r) {
  uint8_t tag = r.u8();
  if (tag == kNullType) return nullptr;
  auto kind = static_cast<lime::TypeKind>(tag);
  switch (kind) {
    case lime::TypeKind::kVoid: return lime::Type::void_();
    case lime::TypeKind::kInt: return lime::Type::int_();
    case lime::TypeKind::kLong: return lime::Type::long_();
    case lime::TypeKind::kFloat: return lime::Type::float_();
    case lime::TypeKind::kDouble: return lime::Type::double_();
    case lime::TypeKind::kBoolean: return lime::Type::boolean();
    case lime::TypeKind::kBit: return lime::Type::bit();
    case lime::TypeKind::kTaskGraph: return lime::Type::task_graph();
    case lime::TypeKind::kArray: return lime::Type::array(read_type(r));
    case lime::TypeKind::kValueArray:
      return lime::Type::value_array(read_type(r));
    case lime::TypeKind::kClass: return lime::Type::class_(r.str());
  }
  throw RuntimeError("cache payload carries unknown type kind " +
                     std::to_string(tag));
}

// -- bc::Value (const pool) ------------------------------------------------

void write_value(const bc::Value& v, ByteWriter& w) {
  w.u8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case bc::ValueKind::kVoid: return;
    case bc::ValueKind::kInt: w.i32(v.as_i32()); return;
    case bc::ValueKind::kLong: w.i64(v.as_i64()); return;
    case bc::ValueKind::kFloat: w.f32(v.as_f32()); return;
    case bc::ValueKind::kDouble: w.f64(v.as_f64()); return;
    case bc::ValueKind::kBool: w.u8(v.as_bool()); return;
    case bc::ValueKind::kBit: w.u8(v.as_bit()); return;
    case bc::ValueKind::kArray: {
      const bc::ArrayRef& a = v.as_array();
      w.u8(static_cast<uint8_t>(a->elem));
      w.u8(a->is_value ? 1 : 0);
      w.u64(a->size());
      switch (a->elem) {
        case bc::ElemCode::kI32: {
          const auto& d = std::get<std::vector<int32_t>>(a->data);
          w.raw(d.data(), d.size() * sizeof(int32_t));
          return;
        }
        case bc::ElemCode::kI64: {
          const auto& d = std::get<std::vector<int64_t>>(a->data);
          w.raw(d.data(), d.size() * sizeof(int64_t));
          return;
        }
        case bc::ElemCode::kF32: {
          const auto& d = std::get<std::vector<float>>(a->data);
          w.raw(d.data(), d.size() * sizeof(float));
          return;
        }
        case bc::ElemCode::kF64: {
          const auto& d = std::get<std::vector<double>>(a->data);
          w.raw(d.data(), d.size() * sizeof(double));
          return;
        }
        case bc::ElemCode::kBool:
        case bc::ElemCode::kBit: {
          const auto& d = std::get<std::vector<uint8_t>>(a->data);
          w.raw(d.data(), d.size());
          return;
        }
        case bc::ElemCode::kBoxed: {
          const auto& d = std::get<std::vector<bc::Value>>(a->data);
          for (const auto& e : d) write_value(e, w);
          return;
        }
      }
      return;
    }
    case bc::ValueKind::kOpaque:
      // Opaque values are process-local handles; a const pool never holds
      // one, and persisting one would be meaningless.
      throw InternalError("cannot serialize an opaque value");
  }
}

bc::Value read_value(ByteReader& r) {
  auto kind = static_cast<bc::ValueKind>(r.u8());
  switch (kind) {
    case bc::ValueKind::kVoid: return bc::Value::void_();
    case bc::ValueKind::kInt: return bc::Value::i32(r.i32());
    case bc::ValueKind::kLong: return bc::Value::i64(r.i64());
    case bc::ValueKind::kFloat: return bc::Value::f32(r.f32());
    case bc::ValueKind::kDouble: return bc::Value::f64(r.f64());
    case bc::ValueKind::kBool: return bc::Value::boolean(r.u8() != 0);
    case bc::ValueKind::kBit: return bc::Value::bit(r.u8() != 0);
    case bc::ValueKind::kArray: {
      auto elem = static_cast<bc::ElemCode>(r.u8());
      bool is_value = r.u8() != 0;
      uint64_t n = r.u64();
      size_t min_bytes = 1;
      switch (elem) {
        case bc::ElemCode::kI32: min_bytes = 4; break;
        case bc::ElemCode::kI64: min_bytes = 8; break;
        case bc::ElemCode::kF32: min_bytes = 4; break;
        case bc::ElemCode::kF64: min_bytes = 8; break;
        default: min_bytes = 1; break;
      }
      check_count(r, n, min_bytes);
      // Built mutable, filled, then flagged: array_set refuses writes to
      // value arrays.
      bc::ArrayRef a = bc::make_array(elem, n);
      switch (elem) {
        case bc::ElemCode::kI32:
          r.raw(std::get<std::vector<int32_t>>(a->data).data(), n * 4);
          break;
        case bc::ElemCode::kI64:
          r.raw(std::get<std::vector<int64_t>>(a->data).data(), n * 8);
          break;
        case bc::ElemCode::kF32:
          r.raw(std::get<std::vector<float>>(a->data).data(), n * 4);
          break;
        case bc::ElemCode::kF64:
          r.raw(std::get<std::vector<double>>(a->data).data(), n * 8);
          break;
        case bc::ElemCode::kBool:
        case bc::ElemCode::kBit:
          r.raw(std::get<std::vector<uint8_t>>(a->data).data(), n);
          break;
        case bc::ElemCode::kBoxed: {
          auto& d = std::get<std::vector<bc::Value>>(a->data);
          for (uint64_t i = 0; i < n; ++i) d[i] = read_value(r);
          break;
        }
      }
      a->is_value = is_value;
      return bc::Value::array(std::move(a));
    }
    case bc::ValueKind::kOpaque:
      break;
  }
  throw RuntimeError("cache payload carries unknown value kind");
}

// -- bc::CompiledMethod ----------------------------------------------------

void write_method(const bc::CompiledMethod& m, ByteWriter& w) {
  w.str(m.qualified_name);
  w.u8(m.is_static ? 1 : 0);
  w.u8(m.is_pure ? 1 : 0);
  w.i32(m.num_params);
  w.i32(m.num_slots);
  w.str(m.unsupported_reason);
  w.u32(static_cast<uint32_t>(m.code.size()));
  for (const auto& ins : m.code) {
    w.u8(static_cast<uint8_t>(ins.op));
    w.i32(ins.a);
    w.i32(ins.b);
    w.i32(ins.c);
  }
  w.u32(static_cast<uint32_t>(m.param_types.size()));
  for (const auto& t : m.param_types) write_type(t, w);
  write_type(m.return_type, w);
}

bc::CompiledMethod read_method(ByteReader& r) {
  bc::CompiledMethod m;
  m.qualified_name = r.str();
  m.is_static = r.u8() != 0;
  m.is_pure = r.u8() != 0;
  m.num_params = r.i32();
  m.num_slots = r.i32();
  m.unsupported_reason = r.str();
  uint32_t ncode = r.u32();
  check_count(r, ncode, 13);  // 1 op byte + 3×4 operand bytes
  m.code.reserve(ncode);
  for (uint32_t i = 0; i < ncode; ++i) {
    bc::Instr ins;
    ins.op = static_cast<bc::Op>(r.u8());
    ins.a = r.i32();
    ins.b = r.i32();
    ins.c = r.i32();
    m.code.push_back(ins);
  }
  uint32_t nparams = r.u32();
  check_count(r, nparams, 1);
  m.param_types.reserve(nparams);
  for (uint32_t i = 0; i < nparams; ++i) m.param_types.push_back(read_type(r));
  m.return_type = read_type(r);
  return m;
}

}  // namespace

// -- BytecodeModule --------------------------------------------------------

std::vector<uint8_t> encode_bytecode_module(const bc::BytecodeModule& m) {
  ByteWriter w;
  w.u32(static_cast<uint32_t>(m.methods.size()));
  for (const auto& cm : m.methods) write_method(cm, w);
  w.u32(static_cast<uint32_t>(m.const_pool.size()));
  for (const auto& v : m.const_pool) write_value(v, w);
  w.u32(static_cast<uint32_t>(m.task_ids.size()));
  for (const auto& id : m.task_ids) w.str(id);
  return w.take();
}

std::unique_ptr<bc::BytecodeModule> decode_bytecode_module(
    std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto m = std::make_unique<bc::BytecodeModule>();
  uint32_t nmethods = r.u32();
  check_count(r, nmethods, 1);
  m->methods.reserve(nmethods);
  for (uint32_t i = 0; i < nmethods; ++i) {
    m->methods.push_back(read_method(r));
    m->method_index[m->methods.back().qualified_name] = static_cast<int>(i);
  }
  uint32_t nconsts = r.u32();
  check_count(r, nconsts, 1);
  m->const_pool.reserve(nconsts);
  for (uint32_t i = 0; i < nconsts; ++i) m->const_pool.push_back(read_value(r));
  uint32_t ntasks = r.u32();
  check_count(r, ntasks, 1);
  m->task_ids.reserve(ntasks);
  for (uint32_t i = 0; i < ntasks; ++i) m->task_ids.push_back(r.str());
  if (!r.done()) {
    throw RuntimeError("bytecode-module payload has trailing bytes");
  }
  return m;
}

// -- gpu::KernelProgram ----------------------------------------------------

std::vector<uint8_t> encode_kernel_program(const gpu::KernelProgram& p) {
  ByteWriter w;
  w.str(p.task_id);
  w.u32(static_cast<uint32_t>(p.code.size()));
  for (const auto& ins : p.code) {
    w.u8(static_cast<uint8_t>(ins.op));
    w.u16(ins.dst);
    w.u16(ins.a);
    w.u16(ins.b);
    w.u8(ins.aux);
    w.u8(static_cast<uint8_t>(ins.t));
    w.u8(static_cast<uint8_t>(ins.t2));
    w.i32(ins.imm);
  }
  w.u32(static_cast<uint32_t>(p.consts.size()));
  for (const auto& c : p.consts) {
    // The union's raw 8 bytes: this repo's dense layouts are host-order by
    // design (see byte_buffer.h), and a cache entry never leaves the host.
    w.raw(&c.value, sizeof(c.value));
    w.u8(static_cast<uint8_t>(c.type));
  }
  w.u32(static_cast<uint32_t>(p.params.size()));
  for (const auto& pr : p.params) {
    w.u8(static_cast<uint8_t>(pr.mode));
    w.u8(static_cast<uint8_t>(pr.type));
    w.i32(pr.stride);
    w.i32(pr.offset);
  }
  w.i32(p.num_regs);
  w.u8(static_cast<uint8_t>(p.ret_type));
  w.i32(p.in_stride);
  w.str(p.opencl_source);
  w.u8(p.ranges_annotated ? 1 : 0);
  w.u32(static_cast<uint32_t>(p.reg_ranges.size()));
  for (const auto& rr : p.reg_ranges) {
    w.u8(rr.known ? 1 : 0);
    w.i64(rr.lo);
    w.i64(rr.hi);
  }
  w.u8(p.bounds_check_elidable ? 1 : 0);
  w.u8(p.fusion_safe ? 1 : 0);
  return w.take();
}

std::unique_ptr<gpu::KernelProgram> decode_kernel_program(
    std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto p = std::make_unique<gpu::KernelProgram>();
  p->task_id = r.str();
  uint32_t ncode = r.u32();
  check_count(r, ncode, 14);
  p->code.reserve(ncode);
  for (uint32_t i = 0; i < ncode; ++i) {
    gpu::KInstr ins;
    ins.op = static_cast<gpu::KOp>(r.u8());
    ins.dst = r.u16();
    ins.a = r.u16();
    ins.b = r.u16();
    ins.aux = r.u8();
    ins.t = static_cast<bc::NumType>(r.u8());
    ins.t2 = static_cast<bc::NumType>(r.u8());
    ins.imm = r.i32();
    p->code.push_back(ins);
  }
  uint32_t nconsts = r.u32();
  check_count(r, nconsts, 9);
  p->consts.reserve(nconsts);
  for (uint32_t i = 0; i < nconsts; ++i) {
    gpu::KConst c;
    r.raw(&c.value, sizeof(c.value));
    c.type = static_cast<bc::NumType>(r.u8());
    p->consts.push_back(c);
  }
  uint32_t nparams = r.u32();
  check_count(r, nparams, 10);
  p->params.reserve(nparams);
  for (uint32_t i = 0; i < nparams; ++i) {
    gpu::KernelParam pr;
    pr.mode = static_cast<gpu::ParamMode>(r.u8());
    pr.type = static_cast<bc::NumType>(r.u8());
    pr.stride = r.i32();
    pr.offset = r.i32();
    p->params.push_back(pr);
  }
  p->num_regs = r.i32();
  p->ret_type = static_cast<bc::NumType>(r.u8());
  p->in_stride = r.i32();
  p->opencl_source = r.str();
  p->ranges_annotated = r.u8() != 0;
  uint32_t nranges = r.u32();
  check_count(r, nranges, 17);
  p->reg_ranges.reserve(nranges);
  for (uint32_t i = 0; i < nranges; ++i) {
    gpu::KRegRange rr;
    rr.known = r.u8() != 0;
    rr.lo = r.i64();
    rr.hi = r.i64();
    p->reg_ranges.push_back(rr);
  }
  p->bounds_check_elidable = r.u8() != 0;
  p->fusion_safe = r.u8() != 0;
  if (!r.done()) throw RuntimeError("kernel payload has trailing bytes");
  return p;
}

// -- fpga::FpgaCompileResult ----------------------------------------------

namespace {

/// Serializes the comb/seq expression DAG as a node table in dependency
/// order, preserving sharing: unrolled datapaths reuse subexpressions
/// heavily, and expanding the DAG to a tree could blow up the entry size.
class ExprTableWriter {
 public:
  uint32_t id_of(const rtl::HExprPtr& e) {
    LM_CHECK_MSG(e != nullptr, "netlist expression has a null operand");
    auto it = ids_.find(e.get());
    if (it != ids_.end()) return it->second;
    // Iterative postorder: children are assigned ids before their parent.
    std::vector<const rtl::HExpr*> stack{e.get()};
    while (!stack.empty()) {
      const rtl::HExpr* n = stack.back();
      if (ids_.count(n)) {
        stack.pop_back();
        continue;
      }
      bool ready = true;
      for (const auto& child : {n->a, n->b, n->c}) {
        if (child && !ids_.count(child.get())) {
          stack.push_back(child.get());
          ready = false;
        }
      }
      if (!ready) continue;
      stack.pop_back();
      ids_.emplace(n, static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(n);
    }
    return ids_.at(e.get());
  }

  void write(ByteWriter& w) const {
    w.u32(static_cast<uint32_t>(nodes_.size()));
    for (const rtl::HExpr* n : nodes_) {
      w.u8(static_cast<uint8_t>(n->kind));
      w.i32(n->width);
      switch (n->kind) {
        case rtl::HKind::kConst:
          w.u64(n->value);
          break;
        case rtl::HKind::kSig:
          w.i32(n->sig);
          break;
        case rtl::HKind::kUnary:
          w.u8(static_cast<uint8_t>(n->un_op));
          w.u32(ids_.at(n->a.get()));
          break;
        case rtl::HKind::kBinary:
          w.u8(static_cast<uint8_t>(n->bin_op));
          w.u32(ids_.at(n->a.get()));
          w.u32(ids_.at(n->b.get()));
          break;
        case rtl::HKind::kMux:
          w.u32(ids_.at(n->a.get()));
          w.u32(ids_.at(n->b.get()));
          w.u32(ids_.at(n->c.get()));
          break;
      }
    }
  }

 private:
  std::unordered_map<const rtl::HExpr*, uint32_t> ids_;
  std::vector<const rtl::HExpr*> nodes_;
};

std::vector<rtl::HExprPtr> read_expr_table(ByteReader& r) {
  uint32_t n = r.u32();
  check_count(r, n, 5);
  std::vector<rtl::HExprPtr> nodes;
  nodes.reserve(n);
  auto child = [&](uint32_t id) -> rtl::HExprPtr {
    if (id >= nodes.size()) {
      throw RuntimeError("netlist payload references a forward expression");
    }
    return nodes[id];
  };
  for (uint32_t i = 0; i < n; ++i) {
    // Nodes are rebuilt field-for-field (not via the folding h_* factories)
    // so the decoded DAG is structurally identical to what was stored.
    auto e = std::make_shared<rtl::HExpr>();
    e->kind = static_cast<rtl::HKind>(r.u8());
    e->width = r.i32();
    switch (e->kind) {
      case rtl::HKind::kConst:
        e->value = r.u64();
        break;
      case rtl::HKind::kSig:
        e->sig = r.i32();
        break;
      case rtl::HKind::kUnary:
        e->un_op = static_cast<rtl::HUnOp>(r.u8());
        e->a = child(r.u32());
        break;
      case rtl::HKind::kBinary:
        e->bin_op = static_cast<rtl::HBinOp>(r.u8());
        e->a = child(r.u32());
        e->b = child(r.u32());
        break;
      case rtl::HKind::kMux:
        e->a = child(r.u32());
        e->b = child(r.u32());
        e->c = child(r.u32());
        break;
      default:
        throw RuntimeError("netlist payload carries unknown expr kind");
    }
    nodes.push_back(std::move(e));
  }
  return nodes;
}

}  // namespace

std::vector<uint8_t> encode_fpga_result(const fpga::FpgaCompileResult& r) {
  LM_CHECK_MSG(r.module != nullptr, "cannot serialize an excluded result");
  return encode_fpga_parts(*r.module, r.verilog, r.ports);
}

std::vector<uint8_t> encode_fpga_parts(const rtl::Module& m,
                                       const std::string& verilog,
                                       const fpga::FpgaPortMeta& p) {
  ByteWriter w;
  w.str(m.name);
  w.u32(static_cast<uint32_t>(m.signals.size()));
  for (const auto& s : m.signals) {
    w.str(s.name);
    w.i32(s.width);
    w.u8(static_cast<uint8_t>(s.kind));
    w.u64(s.init);
  }
  ExprTableWriter exprs;
  std::vector<std::pair<int32_t, uint32_t>> comb, seq;
  for (const auto& a : m.comb) {
    comb.emplace_back(a.target, exprs.id_of(a.expr));
  }
  for (const auto& a : m.seq) {
    seq.emplace_back(a.target, exprs.id_of(a.next));
  }
  exprs.write(w);
  w.u32(static_cast<uint32_t>(comb.size()));
  for (const auto& [target, id] : comb) {
    w.i32(target);
    w.u32(id);
  }
  w.u32(static_cast<uint32_t>(seq.size()));
  for (const auto& [target, id] : seq) {
    w.i32(target);
    w.u32(id);
  }
  w.str(verilog);
  w.u32(static_cast<uint32_t>(p.in_data.size()));
  for (const auto& s : p.in_data) w.str(s);
  w.u32(static_cast<uint32_t>(p.in_widths.size()));
  for (int x : p.in_widths) w.i32(x);
  w.str(p.out_data);
  w.i32(p.out_width);
  w.i32(p.arity);
  w.u8(p.pipelined ? 1 : 0);
  w.i32(p.latency);
  w.i32(p.initiation_interval);
  return w.take();
}

fpga::FpgaCompileResult decode_fpga_result(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  auto m = std::make_unique<rtl::Module>();
  m->name = r.str();
  uint32_t nsignals = r.u32();
  check_count(r, nsignals, 4);
  m->signals.reserve(nsignals);
  for (uint32_t i = 0; i < nsignals; ++i) {
    rtl::Signal s;
    s.name = r.str();
    s.width = r.i32();
    s.kind = static_cast<rtl::SigKind>(r.u8());
    s.init = r.u64();
    m->signals.push_back(std::move(s));
  }
  std::vector<rtl::HExprPtr> exprs = read_expr_table(r);
  auto expr_at = [&](uint32_t id) -> rtl::HExprPtr {
    if (id >= exprs.size()) {
      throw RuntimeError("netlist payload references a missing expression");
    }
    return exprs[id];
  };
  uint32_t ncomb = r.u32();
  check_count(r, ncomb, 8);
  m->comb.reserve(ncomb);
  for (uint32_t i = 0; i < ncomb; ++i) {
    int32_t target = r.i32();
    m->comb.push_back({target, expr_at(r.u32())});
  }
  uint32_t nseq = r.u32();
  check_count(r, nseq, 8);
  m->seq.reserve(nseq);
  for (uint32_t i = 0; i < nseq; ++i) {
    int32_t target = r.i32();
    m->seq.push_back({target, expr_at(r.u32())});
  }
  fpga::FpgaCompileResult out;
  out.verilog = r.str();
  fpga::FpgaPortMeta& p = out.ports;
  uint32_t nin = r.u32();
  check_count(r, nin, 4);
  p.in_data.reserve(nin);
  for (uint32_t i = 0; i < nin; ++i) p.in_data.push_back(r.str());
  uint32_t nwid = r.u32();
  check_count(r, nwid, 4);
  p.in_widths.reserve(nwid);
  for (uint32_t i = 0; i < nwid; ++i) p.in_widths.push_back(r.i32());
  p.out_data = r.str();
  p.out_width = r.i32();
  p.arity = r.i32();
  p.pipelined = r.u8() != 0;
  p.latency = r.i32();
  p.initiation_interval = r.i32();
  if (!r.done()) throw RuntimeError("netlist payload has trailing bytes");
  // Re-run the structural checks: recomputes the comb topological order the
  // simulator needs, and rejects a bit-rotted netlist outright.
  m->validate();
  out.module = std::move(m);
  return out;
}

// -- canonical content bytes ----------------------------------------------

namespace {

/// Emits one method's canonical form and enqueues its callees. Returns
/// false when the method is missing, failed to lower, or references an
/// out-of-range pool entry (uncacheable — the caller compiles fresh).
bool canonical_one(const bc::BytecodeModule& module, const std::string& name,
                   ByteWriter& out, std::deque<std::string>& queue,
                   std::unordered_set<std::string>& seen) {
  int idx = module.index_of(name);
  if (idx < 0) return false;
  const bc::CompiledMethod& m = module.methods[static_cast<size_t>(idx)];
  if (!m.unsupported_reason.empty()) return false;

  auto method_name = [&](int32_t mi) -> const std::string* {
    if (mi < 0 || mi >= static_cast<int32_t>(module.methods.size())) {
      return nullptr;
    }
    return &module.methods[static_cast<size_t>(mi)].qualified_name;
  };
  auto task_id = [&](int32_t ti) -> const std::string* {
    if (ti < 0 || ti >= static_cast<int32_t>(module.task_ids.size())) {
      return nullptr;
    }
    return &module.task_ids[static_cast<size_t>(ti)];
  };

  out.str(m.qualified_name);
  out.u8(m.is_static ? 1 : 0);
  out.u8(m.is_pure ? 1 : 0);
  out.i32(m.num_params);
  out.i32(m.num_slots);
  for (const auto& t : m.param_types) write_type(t, out);
  write_type(m.return_type, out);
  out.u32(static_cast<uint32_t>(m.code.size()));
  for (const auto& ins : m.code) {
    out.u8(static_cast<uint8_t>(ins.op));
    switch (ins.op) {
      case bc::Op::kConst: {
        // Inline the constant itself: the pool index is module-global
        // noise, the value is the content.
        if (ins.a < 0 ||
            ins.a >= static_cast<int32_t>(module.const_pool.size())) {
          return false;
        }
        write_value(module.const_pool[static_cast<size_t>(ins.a)], out);
        out.i32(ins.b);
        out.i32(ins.c);
        break;
      }
      case bc::Op::kCall:
      case bc::Op::kMap:
      case bc::Op::kReduce: {
        const std::string* callee = method_name(ins.a);
        if (!callee) return false;
        out.str(*callee);
        out.i32(ins.b);
        out.i32(ins.c);
        if (seen.insert(*callee).second) queue.push_back(*callee);
        break;
      }
      case bc::Op::kMakeTask: {
        const std::string* callee = method_name(ins.a);
        const std::string* tid = task_id(ins.c);
        if (!callee || !tid) return false;
        out.str(*callee);
        out.i32(ins.b);
        out.str(*tid);
        if (seen.insert(*callee).second) queue.push_back(*callee);
        break;
      }
      case bc::Op::kMakeSource:
      case bc::Op::kMakeSink: {
        const std::string* tid = task_id(ins.a);
        if (!tid) return false;
        out.str(*tid);
        out.i32(ins.b);
        out.i32(ins.c);
        break;
      }
      default:
        out.i32(ins.a);
        out.i32(ins.b);
        out.i32(ins.c);
        break;
    }
  }
  return true;
}

}  // namespace

bool canonical_method_bytes(const bc::BytecodeModule& module,
                            const std::string& root, ByteWriter& out) {
  std::deque<std::string> queue{root};
  std::unordered_set<std::string> seen{root};
  while (!queue.empty()) {
    std::string name = std::move(queue.front());
    queue.pop_front();
    if (!canonical_one(module, name, out, queue, seen)) return false;
  }
  return true;
}

bool canonical_chain_bytes(const bc::BytecodeModule& module,
                           const std::vector<std::string>& roots,
                           ByteWriter& out) {
  uint32_t stage = 0;
  for (const auto& root : roots) {
    // Stage separators keep (ab, c) and (a, bc) chains from colliding.
    out.str("stage");
    out.u32(stage++);
    if (!canonical_method_bytes(module, root, out)) return false;
  }
  return true;
}

}  // namespace lm::cache
