// Persistent content-addressed artifact store (warm-start compiles).
//
// The paper's toolflow treats backend compilation — bytecode generation,
// kernel construction + the interval pass, behavioural synthesis — as
// something that happens on every run. This store makes compiled artifacts
// durable across processes: entries are addressed by a content key (the
// canonical IR bytes of the task closure + backend id + compile flags +
// toolchain version, hashed with the same FNV-1a the LMRP handshake pins),
// so a warm start serves every backend artifact from disk and skips the
// compile entirely. Correctness leans on the keying discipline in
// serialize.h: the key is a function of everything the backend consumes,
// so a hit can only ever return bytes the compiler would have produced.
//
// On-disk layout (under one cache directory):
//
//   objects/<16-hex-key>.art   one artifact per file, self-validating:
//       u32 magic "LMCA" | u32 format version | u64 key | str backend |
//       u32 payload size | u64 FNV-1a payload checksum | payload
//   index.txt                  best-effort human-readable listing
//
// Durability rules:
//   * writes go to a tmp file then POSIX rename() — readers never observe
//     a half-written entry, and concurrent writers of the same key are
//     idempotent (both rename bit-identical bytes into place);
//   * every load re-validates magic/version/key/backend/checksum — a
//     truncated, corrupted or version-skewed entry is a *miss* (counted in
//     cache.errors, best-effort unlinked in rw mode), never a crash and
//     never wrong bytes;
//   * an LRU size cap: hits bump the file mtime, stores evict
//     oldest-mtime entries once the directory exceeds max_bytes.
//
// The store is process-thread-safe (one mutex; no callback reentrancy) and
// multi-process-safe by construction (atomic rename + revalidation).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace lm::cache {

/// Bumped whenever any persisted layout changes (entry header, payload
/// codecs, canonical-bytes recipe). Old entries then miss by version check.
inline constexpr uint32_t kCacheFormatVersion = 1;

/// Stands in for a real toolchain's compiler-version component of the key:
/// mixed into every artifact key so entries cannot survive a codegen
/// change. Bump alongside any backend lowering change that alters emitted
/// artifacts without changing their serialized *format*.
inline constexpr const char* kToolchainVersion = "lm-toolchain-1";

/// Backend id strings used as the `backend` key/header component.
inline constexpr const char* kBackendBytecode = "bytecode";
inline constexpr const char* kBackendGpu = "gpu";
inline constexpr const char* kBackendFpga = "fpga";

enum class CacheMode : uint8_t {
  kOff,        // never touch the disk
  kReadOnly,   // serve hits, never store / bump / evict / unlink
  kReadWrite,  // full behavior
};

struct CacheConfig {
  CacheMode mode = CacheMode::kOff;
  /// Cache directory. Empty resolves to $LM_CACHE_DIR, else "lm-cache"
  /// under the standard output root (util::resolve_output_path).
  std::string dir;
  uint64_t max_bytes = 256ull << 20;  // LRU cap on sum of entry sizes
};

/// Parses "off" / "ro" / "rw" (the --cache= flag grammar). Returns
/// std::nullopt for anything else.
std::optional<CacheMode> parse_cache_mode(const std::string& s);
const char* to_string(CacheMode m);

/// The content key: FNV-1a over (canonical IR bytes, backend id, compile
/// flags, toolchain version, cache format version), with separators so
/// field boundaries cannot alias.
uint64_t artifact_key(std::span<const uint8_t> canonical_bytes,
                      const std::string& backend, const std::string& flags);

/// `key` rendered as the 16-hex-digit entry stem.
std::string key_hex(uint64_t key);

class ArtifactCache {
 public:
  explicit ArtifactCache(CacheConfig config);

  /// The directory an empty CacheConfig::dir resolves to.
  static std::string default_dir();

  bool enabled() const { return mode_ != CacheMode::kOff; }
  bool writable() const { return mode_ == CacheMode::kReadWrite; }
  CacheMode mode() const { return mode_; }
  const std::string& dir() const { return dir_; }

  /// Looks up `key`, expecting an entry produced for `backend`. Returns the
  /// payload on a validated hit; std::nullopt on miss or on any validation
  /// failure (which also counts cache.errors and, in rw mode, unlinks the
  /// bad entry).
  std::optional<std::vector<uint8_t>> load(uint64_t key,
                                           const std::string& backend);

  /// Persists a payload under `key` (rw mode only; returns false
  /// otherwise or on I/O failure). May evict older entries to honor
  /// max_bytes.
  bool store(uint64_t key, const std::string& backend,
             std::span<const uint8_t> payload);

  /// Sum of entry sizes currently on disk (tracked, not rescanned).
  uint64_t total_bytes() const;
  uint64_t entry_count() const;

  /// hits / misses / stores / evictions / errors counters ("cache." names).
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Live gauges (cache.bytes, cache.entries) for TelemetryHub::add_collector.
  void collect_telemetry(std::vector<obs::GaugeSample>& out) const;

  /// One-line "hits=… misses=…" summary for tool footers.
  std::string summary() const;

 private:
  std::string objects_dir() const;
  std::string entry_path(uint64_t key) const;
  void rescan_locked();
  void evict_locked();
  void write_index_locked();
  void drop_entry_locked(uint64_t key, const std::string& path);

  CacheMode mode_;
  std::string dir_;
  uint64_t max_bytes_;

  mutable std::mutex mu_;
  // Tracked view of objects/ (rebuilt at construction, maintained by
  // store/evict): entry sizes keyed by content key.
  struct Entry {
    uint64_t size = 0;
    std::string backend;  // "?" until a load/store reveals it
  };
  std::map<uint64_t, Entry> entries_;
  uint64_t bytes_ = 0;

  obs::MetricsRegistry metrics_;
  obs::MetricsRegistry::Counter* hits_;
  obs::MetricsRegistry::Counter* misses_;
  obs::MetricsRegistry::Counter* stores_;
  obs::MetricsRegistry::Counter* evictions_;
  obs::MetricsRegistry::Counter* errors_;
};

}  // namespace lm::cache
