// Binary codecs for compiled artifacts + canonical content bytes for keys.
//
// Two distinct jobs live here, both feeding the persistent artifact cache
// (artifact_cache.h):
//
//  * Payload codecs — full, lossless round-trips of the three backend
//    artifact bodies: the whole-program BytecodeModule, a GPU
//    KernelProgram (including its OpenCL text and range facts, so a warm
//    start skips the interval pass too), and an FPGA compile result
//    (RTL netlist + Verilog text + port metadata). All layouts ride the
//    ByteWriter/ByteReader little-endian primitives — the same byte
//    conventions as the serde wire format and the LMRP protocol.
//
//  * Canonical content bytes — the *keying* side. A cache key must be a
//    function of what the backend actually consumes, not of module-global
//    index assignment: two programs can contain an identical method whose
//    const-pool/method-table indices differ. canonical_method_bytes()
//    therefore walks the bytecode closure of a task (BFS over kCall/kMap/
//    kReduce edges) and re-expresses every pool reference by content:
//    kConst inlines the constant's value, call-like ops inline the callee's
//    qualified name (with the callee body itself visited once), task ops
//    inline the task-id string. The resulting byte string is stable across
//    unrelated edits elsewhere in the program — the property that makes
//    warm-start hits safe, not just likely.
//
// Deserialized lime::TypeRefs carry decl == nullptr (the AST they were
// resolved against is gone). Every consumer of a cached module's types —
// elem_code_for, marshaling, manifests — keys on TypeKind/class_name only,
// which is why this is sound; new consumers that dereference decl must not
// be fed cached modules.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bytecode/module.h"
#include "fpga/synth.h"
#include "gpu/kernel_ir.h"
#include "util/byte_buffer.h"

namespace lm::cache {

// -- payload codecs --------------------------------------------------------

std::vector<uint8_t> encode_bytecode_module(const bc::BytecodeModule& m);
/// Throws RuntimeError on truncated/malformed bytes (the cache layer turns
/// that into a miss).
std::unique_ptr<bc::BytecodeModule> decode_bytecode_module(
    std::span<const uint8_t> bytes);

std::vector<uint8_t> encode_kernel_program(const gpu::KernelProgram& p);
std::unique_ptr<gpu::KernelProgram> decode_kernel_program(
    std::span<const uint8_t> bytes);

/// Serializes the synthesized module + Verilog + port metadata. The
/// exclusion fields are not persisted: exclusions are never cached (the
/// suitability check reruns each compile and is cheap).
std::vector<uint8_t> encode_fpga_result(const fpga::FpgaCompileResult& r);
/// Same encoding from the parts an instantiated FpgaFilter exposes (the
/// device server re-serializes live artifacts for the compile service).
std::vector<uint8_t> encode_fpga_parts(const rtl::Module& module,
                                       const std::string& verilog,
                                       const fpga::FpgaPortMeta& ports);
/// The decoded module is validate()d before returning (recomputing the
/// combinational order the simulator needs); a netlist that fails
/// validation throws, which the cache layer treats as corruption.
fpga::FpgaCompileResult decode_fpga_result(std::span<const uint8_t> bytes);

// -- canonical content bytes (cache keying) --------------------------------

/// Appends the canonical bytes of `root`'s bytecode closure to `out`.
/// Returns false — leaving `out` in an unspecified state — when the task is
/// uncacheable: a method in the closure failed to lower
/// (unsupported_reason) or references an out-of-range pool entry.
bool canonical_method_bytes(const bc::BytecodeModule& module,
                            const std::string& root, ByteWriter& out);

/// Canonical bytes for a fused segment: the member closures in chain
/// order, with stage separators so (a,bc) and (ab,c) cannot collide.
bool canonical_chain_bytes(const bc::BytecodeModule& module,
                           const std::vector<std::string>& roots,
                           ByteWriter& out);

}  // namespace lm::cache
