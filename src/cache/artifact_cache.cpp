#include "cache/artifact_cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/trace.h"
#include "util/byte_buffer.h"
#include "util/hash.h"
#include "util/output_path.h"

namespace fs = std::filesystem;

namespace lm::cache {

namespace {

constexpr uint32_t kEntryMagic = 0x41434D4C;  // "LMCA" little-endian

void trace_event(const char* what, uint64_t key, const std::string& backend,
                 uint64_t bytes) {
  if (auto* rec = obs::TraceRecorder::current()) {
    rec->instant("cache", what,
                 obs::JsonArgs()
                     .add("key", key_hex(key))
                     .add("backend", backend)
                     .add("bytes", bytes)
                     .str());
  }
}

std::optional<std::vector<uint8_t>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

}  // namespace

std::optional<CacheMode> parse_cache_mode(const std::string& s) {
  if (s == "off") return CacheMode::kOff;
  if (s == "ro") return CacheMode::kReadOnly;
  if (s == "rw") return CacheMode::kReadWrite;
  return std::nullopt;
}

const char* to_string(CacheMode m) {
  switch (m) {
    case CacheMode::kOff: return "off";
    case CacheMode::kReadOnly: return "ro";
    case CacheMode::kReadWrite: return "rw";
  }
  return "?";
}

uint64_t artifact_key(std::span<const uint8_t> canonical_bytes,
                      const std::string& backend, const std::string& flags) {
  util::Fnv1a h;
  h.mix(canonical_bytes).mix_byte(0);
  h.mix(backend).mix_byte(0);
  h.mix(flags).mix_byte(0);
  h.mix(std::string(kToolchainVersion)).mix_byte(0);
  h.mix_u32(kCacheFormatVersion);
  return h.digest();
}

std::string key_hex(uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

std::string ArtifactCache::default_dir() {
  if (const char* env = std::getenv("LM_CACHE_DIR"); env && *env) {
    return env;
  }
  return util::resolve_output_path("lm-cache");
}

ArtifactCache::ArtifactCache(CacheConfig config)
    : mode_(config.mode),
      dir_(config.dir.empty() ? default_dir() : config.dir),
      max_bytes_(config.max_bytes),
      hits_(&metrics_.counter("cache.hits")),
      misses_(&metrics_.counter("cache.misses")),
      stores_(&metrics_.counter("cache.stores")),
      evictions_(&metrics_.counter("cache.evictions")),
      errors_(&metrics_.counter("cache.errors")) {
  if (mode_ == CacheMode::kOff) return;
  std::error_code ec;
  if (writable()) {
    fs::create_directories(objects_dir(), ec);
    if (ec) {
      // A cache that cannot persist must not break the compile: fall back
      // to read-only (loads against whatever exists still work).
      errors_->add();
      mode_ = CacheMode::kReadOnly;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  rescan_locked();
}

std::string ArtifactCache::objects_dir() const { return dir_ + "/objects"; }

std::string ArtifactCache::entry_path(uint64_t key) const {
  return objects_dir() + "/" + key_hex(key) + ".art";
}

uint64_t ArtifactCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t ArtifactCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ArtifactCache::rescan_locked() {
  entries_.clear();
  bytes_ = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(objects_dir(), ec)) {
    const fs::path& p = de.path();
    if (p.extension() != ".art") continue;
    uint64_t key = 0;
    if (std::sscanf(p.stem().string().c_str(), "%16llx",
                    reinterpret_cast<unsigned long long*>(&key)) != 1) {
      continue;
    }
    std::error_code sec;
    uint64_t size = de.file_size(sec);
    if (sec) continue;
    entries_[key] = Entry{size, "?"};
    bytes_ += size;
  }
}

std::optional<std::vector<uint8_t>> ArtifactCache::load(
    uint64_t key, const std::string& backend) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = entry_path(key);
  auto bytes = read_file(path);
  if (!bytes) {
    misses_->add();
    trace_event("cache-miss", key, backend, 0);
    return std::nullopt;
  }
  try {
    ByteReader r(*bytes);
    if (r.u32() != kEntryMagic) throw RuntimeError("bad magic");
    if (r.u32() != kCacheFormatVersion) throw RuntimeError("version skew");
    if (r.u64() != key) throw RuntimeError("key mismatch");
    if (r.str() != backend) throw RuntimeError("backend mismatch");
    uint32_t n = r.u32();
    uint64_t checksum = r.u64();
    if (n != r.remaining()) throw RuntimeError("size mismatch");
    std::vector<uint8_t> payload(n);
    r.raw(payload.data(), n);
    if (util::fnv1a(payload) != checksum) throw RuntimeError("checksum");
    hits_->add();
    entries_[key] = Entry{bytes->size(), backend};
    if (writable()) {
      // LRU touch: eviction orders by mtime.
      std::error_code ec;
      fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    }
    trace_event("cache-hit", key, backend, n);
    return payload;
  } catch (const std::exception&) {
    // Truncated / corrupted / version-skewed / mis-addressed entry:
    // a miss, never a crash and never wrong bytes.
    errors_->add();
    misses_->add();
    trace_event("cache-corrupt", key, backend, bytes->size());
    if (writable()) drop_entry_locked(key, path);
    return std::nullopt;
  }
}

bool ArtifactCache::store(uint64_t key, const std::string& backend,
                          std::span<const uint8_t> payload) {
  if (!writable()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.u32(kEntryMagic);
  w.u32(kCacheFormatVersion);
  w.u64(key);
  w.str(backend);
  w.u32(static_cast<uint32_t>(payload.size()));
  w.u64(util::fnv1a(payload));
  w.raw(payload.data(), payload.size());

  const std::string path = entry_path(key);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      errors_->add();
      return false;
    }
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.size()));
    out.flush();
    if (!out) {
      errors_->add();
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);  // atomic publish; losers overwrite identically
  if (ec) {
    errors_->add();
    fs::remove(tmp, ec);
    return false;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) bytes_ -= std::min(bytes_, it->second.size);
  entries_[key] = Entry{w.size(), backend};
  bytes_ += w.size();
  stores_->add();
  trace_event("cache-store", key, backend, payload.size());
  if (bytes_ > max_bytes_) evict_locked();
  write_index_locked();
  return true;
}

void ArtifactCache::drop_entry_locked(uint64_t key, const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= std::min(bytes_, it->second.size);
    entries_.erase(it);
  }
}

void ArtifactCache::evict_locked() {
  // Oldest-mtime-first until under the cap. Another process may have
  // grown the directory behind our tracked view, so order by the actual
  // filesystem state.
  struct Victim {
    uint64_t key;
    fs::file_time_type mtime;
    uint64_t size;
  };
  std::vector<Victim> victims;
  for (const auto& [key, e] : entries_) {
    std::error_code ec;
    auto mt = fs::last_write_time(entry_path(key), ec);
    if (ec) continue;
    victims.push_back({key, mt, e.size});
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) { return a.mtime < b.mtime; });
  for (const auto& v : victims) {
    if (bytes_ <= max_bytes_) break;
    drop_entry_locked(v.key, entry_path(v.key));
    evictions_->add();
    trace_event("cache-evict", v.key, "", v.size);
  }
}

void ArtifactCache::write_index_locked() {
  // Best-effort human-readable listing; the .art files are authoritative.
  const std::string tmp =
      dir_ + "/index.txt.tmp." + std::to_string(static_cast<long>(::getpid()));
  std::ofstream out(tmp, std::ios::trunc);
  if (!out) return;
  for (const auto& [key, e] : entries_) {
    out << key_hex(key) << " " << e.backend << " " << e.size << "\n";
  }
  out.flush();
  if (!out) return;
  std::error_code ec;
  fs::rename(tmp, dir_ + "/index.txt", ec);
  if (ec) fs::remove(tmp, ec);
}

void ArtifactCache::collect_telemetry(
    std::vector<obs::GaugeSample>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out.emplace_back("cache.bytes", static_cast<double>(bytes_));
  out.emplace_back("cache.entries", static_cast<double>(entries_.size()));
}

std::string ArtifactCache::summary() const {
  std::string s = "mode=" + std::string(to_string(mode_));
  s += " " + metrics_.summary(/*include_zeros=*/true);
  s += " bytes=" + std::to_string(total_bytes());
  return s;
}

}  // namespace lm::cache
