// The artifact store (§1, §4.2): all generated artifacts keyed by task
// identifier. "The unique identifiers of tasks ... can be looked up
// efficiently in the artifact store populated by the backends."
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/artifact.h"

namespace lm::runtime {

class ArtifactStore {
 public:
  void add(std::unique_ptr<Artifact> artifact);

  /// All artifacts registered for a task id (may span devices).
  std::vector<Artifact*> lookup(const std::string& task_id) const;

  /// The artifact for (task_id, device), or nullptr.
  Artifact* find(const std::string& task_id, DeviceKind device) const;

  /// Every manifest, for listings and tests.
  std::vector<const ArtifactManifest*> manifests() const;

  /// Every artifact, in registration order. The report path walks the
  /// remote store with this to fold server-side histograms in.
  std::vector<const Artifact*> artifacts() const;

  size_t size() const { return all_.size(); }

  /// The conventional key for a fused pipeline segment.
  static std::string segment_id(const std::vector<std::string>& task_ids);

 private:
  std::vector<std::unique_ptr<Artifact>> all_;
  std::unordered_map<std::string, std::vector<Artifact*>> by_id_;
};

}  // namespace lm::runtime
