#include "runtime/repository.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace lm::runtime {

namespace fs = std::filesystem;

std::string bundle_filename(const std::string& task_id, DeviceKind device) {
  std::string name = task_id;
  for (char& c : name) {
    if (c == '.' || c == ':' || c == '/' || c == '\\') c = '_';
  }
  switch (device) {
    case DeviceKind::kGpu: return name + ".cl";
    case DeviceKind::kFpga: return name + ".v";
    case DeviceKind::kCpu: return name + ".bc.txt";
  }
  return name + ".artifact";
}

namespace {

std::string device_token(DeviceKind d) {
  switch (d) {
    case DeviceKind::kCpu: return "cpu";
    case DeviceKind::kGpu: return "gpu";
    case DeviceKind::kFpga: return "fpga";
  }
  return "?";
}

DeviceKind device_from_token(const std::string& s) {
  if (s == "cpu") return DeviceKind::kCpu;
  if (s == "gpu") return DeviceKind::kGpu;
  if (s == "fpga") return DeviceKind::kFpga;
  throw RuntimeError("bad device token in MANIFEST: " + s);
}

std::string signature_of(const ArtifactManifest& m) {
  std::string sig = "(";
  for (size_t i = 0; i < m.param_types.size(); ++i) {
    if (i) sig += ", ";
    sig += m.param_types[i]->to_string();
  }
  sig += ") -> ";
  sig += m.return_type ? m.return_type->to_string() : "void";
  sig += " arity=" + std::to_string(m.arity);
  return sig;
}

}  // namespace

std::vector<BundleEntry> write_artifact_bundle(const CompiledProgram& program,
                                               const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw RuntimeError("cannot create bundle directory " + dir + ": " +
                       ec.message());
  }

  std::vector<BundleEntry> entries;
  for (const auto* m : program.store.manifests()) {
    BundleEntry e;
    e.task_id = m->task_id;
    e.device = m->device;
    e.filename = bundle_filename(m->task_id, m->device);
    e.signature = signature_of(*m);

    std::string content = m->artifact_text;
    if (m->device == DeviceKind::kCpu) {
      // The bytecode artifact text is its disassembly, regenerated here so
      // the repository is self-contained.
      int idx = program.bytecode->index_of(m->task_id);
      if (idx >= 0) {
        const auto& cm =
            program.bytecode->methods[static_cast<size_t>(idx)];
        std::ostringstream os;
        os << "// bytecode artifact for " << m->task_id << "\n";
        for (size_t pc = 0; pc < cm.code.size(); ++pc) {
          os << pc << ": " << bc::disassemble(cm.code[pc]) << "\n";
        }
        content = os.str();
      }
    }
    std::ofstream out(fs::path(dir) / e.filename);
    if (!out) throw RuntimeError("cannot write " + e.filename);
    out << content;
    entries.push_back(std::move(e));
  }

  std::ofstream manifest(fs::path(dir) / "MANIFEST");
  if (!manifest) throw RuntimeError("cannot write MANIFEST");
  manifest << "# Liquid Metal artifact bundle\n";
  manifest << "# task_id\tdevice\tfile\tsignature\n";
  for (const auto& e : entries) {
    manifest << e.task_id << "\t" << device_token(e.device) << "\t"
             << e.filename << "\t" << e.signature << "\n";
  }
  return entries;
}

std::vector<BundleEntry> read_bundle_manifest(const std::string& dir) {
  std::ifstream in(fs::path(dir) / "MANIFEST");
  if (!in) throw RuntimeError("no MANIFEST in " + dir);
  std::vector<BundleEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto fields = split(line, '\t');
    if (fields.size() != 4) {
      throw RuntimeError("malformed MANIFEST line: " + line);
    }
    BundleEntry e;
    e.task_id = fields[0];
    e.device = device_from_token(fields[1]);
    e.filename = fields[2];
    e.signature = fields[3];
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace lm::runtime
