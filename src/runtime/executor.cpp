#include "runtime/executor.h"

#include <algorithm>

#include "util/error.h"

namespace lm::runtime {

namespace {
/// Identifies the worker thread (and its executor) for queue routing.
thread_local Executor* tls_exec = nullptr;
thread_local size_t tls_worker = 0;
}  // namespace

Executor::Executor(const Options& opts)
    : seed_(opts.seed),
      n_workers_(opts.seed != 0 ? 0
                 : opts.workers != 0
                     ? opts.workers
                     : std::max<size_t>(1, std::thread::hardware_concurrency())),
      rng_(opts.seed) {
  if (opts.metrics) {
    c_steps_ = &opts.metrics->counter("executor.steps");
    c_wakeups_ = &opts.metrics->counter("executor.wakeups");
    c_parks_ = &opts.metrics->counter("executor.parks");
    c_steals_ = &opts.metrics->counter("executor.steals");
  }
  local_.resize(n_workers_);
  threads_.reserve(n_workers_);
  for (size_t i = 0; i < n_workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Executor::submit(ExecTask* t) {
  t->exec_.store(this, std::memory_order_release);
  wake(t);
}

void Executor::wake(ExecTask* t) {
  for (;;) {
    int s = t->state_.load(std::memory_order_acquire);
    switch (s) {
      case ExecTask::kIdle: {
        int expected = ExecTask::kIdle;
        if (t->state_.compare_exchange_weak(expected, ExecTask::kQueued,
                                            std::memory_order_acq_rel)) {
          // Attach before enqueueing: a FIFO waker can legitimately wake a
          // task its graph has wired but not yet submit()ted, and the
          // worker that dequeues it may call task->executor() immediately.
          t->exec_.store(this, std::memory_order_release);
          if (c_wakeups_) c_wakeups_->add();
          n_wakeups_.fetch_add(1, std::memory_order_relaxed);
          enqueue(t);
          return;
        }
        break;  // raced; re-read
      }
      case ExecTask::kRunning: {
        int expected = ExecTask::kRunning;
        if (t->state_.compare_exchange_weak(expected, ExecTask::kNotified,
                                            std::memory_order_acq_rel)) {
          return;  // the worker will re-enqueue instead of parking
        }
        break;
      }
      case ExecTask::kQueued:
      case ExecTask::kNotified:
      case ExecTask::kDoneState:
        return;  // already scheduled (or finished) — wake is level-triggered
      default:
        return;
    }
  }
}

void Executor::enqueue(ExecTask* t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tls_exec == this && tls_worker < local_.size()) {
      local_[tls_worker].push_back(t);
    } else {
      inject_.push_back(t);
    }
  }
  cv_.notify_one();
}

void Executor::note_external_begin() {
  std::lock_guard<std::mutex> lock(mu_);
  ++external_pending_;
}

void Executor::note_external_end() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --external_pending_;
  }
  // drive() may be waiting to re-evaluate its deadlock verdict.
  cv_.notify_all();
}

void Executor::run_task(ExecTask* t) {
  t->state_.store(ExecTask::kRunning, std::memory_order_release);
  ExecTask::StepResult r = t->step();
  if (c_steps_) c_steps_->add();
  n_steps_.fetch_add(1, std::memory_order_relaxed);
  switch (r) {
    case ExecTask::StepResult::kReady:
      // A concurrent wake may have set kNotified; both mean "requeue".
      t->state_.store(ExecTask::kQueued, std::memory_order_release);
      enqueue(t);
      break;
    case ExecTask::StepResult::kBlocked: {
      int expected = ExecTask::kRunning;
      if (t->state_.compare_exchange_strong(expected, ExecTask::kIdle,
                                            std::memory_order_acq_rel)) {
        if (c_parks_) c_parks_->add();
        n_parks_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // kNotified: a wake raced the park decision — do not lose it.
        t->state_.store(ExecTask::kQueued, std::memory_order_release);
        enqueue(t);
      }
      break;
    }
    case ExecTask::StepResult::kDone:
      t->state_.store(ExecTask::kDoneState, std::memory_order_release);
      t->retired();  // must be the executor's last touch of the task
      break;
  }
}

ExecTask* Executor::dequeue_locked(size_t idx) {
  if (!local_[idx].empty()) {
    ExecTask* t = local_[idx].front();
    local_[idx].pop_front();
    return t;
  }
  if (!inject_.empty()) {
    ExecTask* t = inject_.front();
    inject_.pop_front();
    return t;
  }
  // Steal from a sibling's tail (the coldest work it has).
  for (size_t off = 1; off < local_.size(); ++off) {
    size_t victim = (idx + off) % local_.size();
    if (!local_[victim].empty()) {
      ExecTask* t = local_[victim].back();
      local_[victim].pop_back();
      if (c_steals_) c_steals_->add();
      n_steals_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

void Executor::worker_loop(size_t idx) {
  tls_exec = this;
  tls_worker = idx;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ExecTask* t = dequeue_locked(idx);
    if (!t) {
      if (stop_) break;
      cv_.wait(lock);
      continue;
    }
    lock.unlock();
    run_task(t);
    lock.lock();
  }
  tls_exec = nullptr;
}

void Executor::drive(const std::function<bool()>& done) {
  LM_CHECK_MSG(deterministic(), "drive() is for seeded deterministic mode");
  std::unique_lock<std::mutex> lock(mu_);
  while (!done()) {
    if (inject_.empty()) {
      if (external_pending_ == 0) {
        throw RuntimeError(
            "deterministic executor stalled: every task is parked, nothing "
            "external is pending, and the graph is not done (deadlock)");
      }
      // A completion callback will wake somebody; sleep until it does.
      cv_.wait(lock,
               [&] { return !inject_.empty() || external_pending_ == 0; });
      continue;
    }
    size_t i = rng_.next_below(inject_.size());
    ExecTask* t = inject_[i];
    inject_.erase(inject_.begin() + static_cast<long>(i));
    lock.unlock();
    run_task(t);
    lock.lock();
  }
}

Executor::Stats Executor::stats() const {
  Stats s;
  s.steps = n_steps_.load(std::memory_order_relaxed);
  s.wakeups = n_wakeups_.load(std::memory_order_relaxed);
  s.parks = n_parks_.load(std::memory_order_relaxed);
  s.steals = n_steals_.load(std::memory_order_relaxed);
  return s;
}

void Executor::collect_telemetry(std::vector<obs::GaugeSample>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out.emplace_back(
      "executor.queue_depth", static_cast<double>(inject_.size()),
      std::vector<std::pair<std::string, std::string>>{{"worker", "inject"}});
  for (size_t i = 0; i < local_.size(); ++i) {
    out.emplace_back("executor.queue_depth",
                     static_cast<double>(local_[i].size()),
                     std::vector<std::pair<std::string, std::string>>{
                         {"worker", std::to_string(i)}});
  }
  out.emplace_back(
      "executor.workers", static_cast<double>(n_workers_),
      std::vector<std::pair<std::string, std::string>>{});
}

}  // namespace lm::runtime
