#include "runtime/executor.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "util/error.h"

namespace lm::runtime {

namespace {
/// Identifies the worker thread (and its executor) for queue routing.
thread_local Executor* tls_exec = nullptr;
thread_local size_t tls_worker = 0;

const char* reason_name(ExecTask::BlockReason r) {
  switch (r) {
    case ExecTask::BlockReason::kPop: return "pop";
    case ExecTask::BlockReason::kPush: return "push";
    case ExecTask::BlockReason::kRpc: return "rpc";
    case ExecTask::BlockReason::kNone: break;
  }
  return "none";
}

int64_t ns_between(std::chrono::steady_clock::time_point a,
                   std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}
}  // namespace

Executor::Executor(const Options& opts)
    : seed_(opts.seed),
      n_workers_(opts.seed != 0 ? 0
                 : opts.workers != 0
                     ? opts.workers
                     : std::max<size_t>(1, std::thread::hardware_concurrency())),
      rng_(opts.seed) {
  if (opts.metrics) {
    c_steps_ = &opts.metrics->counter("executor.steps");
    c_wakeups_ = &opts.metrics->counter("executor.wakeups");
    c_parks_ = &opts.metrics->counter("executor.parks");
    c_steals_ = &opts.metrics->counter("executor.steals");
  }
  local_.resize(n_workers_);
  threads_.reserve(n_workers_);
  for (size_t i = 0; i < n_workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // An async completion callback (poll-loop thread) touches this object
    // right up to its note_external_end(), and its wake() may finish the
    // graph — and so trigger this destructor — *before* that end call.
    // Destruction must wait out the bracket or the callback's tail races
    // with the teardown. Every in-flight op completes or errors out under
    // its own deadline, so this wait is bounded.
    cv_.wait(lock, [&] { return external_pending_ == 0; });
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Executor::submit(ExecTask* t) {
  t->exec_.store(this, std::memory_order_release);
  wake(t);
}

void Executor::wake(ExecTask* t) {
  for (;;) {
    int s = t->state_.load(std::memory_order_acquire);
    switch (s) {
      case ExecTask::kIdle: {
        int expected = ExecTask::kIdle;
        if (t->state_.compare_exchange_weak(expected, ExecTask::kQueued,
                                            std::memory_order_acq_rel)) {
          // Attach before enqueueing: a FIFO waker can legitimately wake a
          // task its graph has wired but not yet submit()ted, and the
          // worker that dequeues it may call task->executor() immediately.
          t->exec_.store(this, std::memory_order_release);
          // Winning the CAS makes this thread the only enqueuer until the
          // next dispatch reads the stamp (under the queue mutex).
          t->enq_tp_ = std::chrono::steady_clock::now();
          if (c_wakeups_) c_wakeups_->add();
          n_wakeups_.fetch_add(1, std::memory_order_relaxed);
          enqueue(t);
          return;
        }
        break;  // raced; re-read
      }
      case ExecTask::kRunning: {
        int expected = ExecTask::kRunning;
        if (t->state_.compare_exchange_weak(expected, ExecTask::kNotified,
                                            std::memory_order_acq_rel)) {
          return;  // the worker will re-enqueue instead of parking
        }
        break;
      }
      case ExecTask::kQueued:
      case ExecTask::kNotified:
      case ExecTask::kDoneState:
        return;  // already scheduled (or finished) — wake is level-triggered
      default:
        return;
    }
  }
}

void Executor::enqueue(ExecTask* t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tls_exec == this && tls_worker < local_.size()) {
      local_[tls_worker].push_back(t);
    } else {
      inject_.push_back(t);
    }
  }
  cv_.notify_one();
}

void Executor::note_external_begin() {
  std::lock_guard<std::mutex> lock(mu_);
  ++external_pending_;
}

void Executor::note_external_end() {
  // drive() may be waiting to re-evaluate its deadlock verdict, and
  // ~Executor waits for the bracket to close. The notify stays under the
  // lock: the waiter may destroy this object the moment mu_ is released,
  // so nothing — including the condvar — may be touched after unlock.
  std::lock_guard<std::mutex> lock(mu_);
  --external_pending_;
  cv_.notify_all();
}

void Executor::flush_exec_span(ExecTask* t) {
  t->have_run_ = false;
  obs::TraceRecorder* rec = obs::TraceRecorder::current();
  if (!rec) return;
  const double enq = rec->to_us(t->run_enq_);
  const double start = rec->to_us(t->run_start_);
  const double end = rec->to_us(t->last_step_end_tp_);
  obs::JsonArgs a;
  a.add("gid", t->gid_).add("node", t->node_);
  a.add("queue_us", start > enq ? start - enq : 0.0);
  if (t->run_park_reason_ != ExecTask::BlockReason::kNone &&
      t->run_park0_.time_since_epoch().count() != 0) {
    const double park0 = rec->to_us(t->run_park0_);
    a.add("park_us", enq > park0 ? enq - park0 : 0.0);
    a.add("reason", reason_name(t->run_park_reason_));
  }
  a.add("steps", t->run_steps_);
  if (t->run_gap_ns_ > 0) a.add("gap_us", static_cast<double>(t->run_gap_ns_) / 1e3);
  rec->complete("exec", t->trace_label_, start, end > start ? end - start : 0.0,
                std::move(a).str());
}

void Executor::run_task(ExecTask* t) {
  const auto dispatch_tp = std::chrono::steady_clock::now();
  const int64_t wait_ns = std::max<int64_t>(0, ns_between(t->enq_tp_, dispatch_tp));
  queue_wait_ns_.fetch_add(static_cast<uint64_t>(wait_ns),
                           std::memory_order_relaxed);
  if (!t->trace_label_.empty()) {
    // Coalesce consecutive dispatches into one "exec" span: a span flushes
    // when the task actually parked in between (so the park/queue prologue
    // is attributable) or when the queue gap is long enough to matter. The
    // gap trigger is wall-clock-dependent, so deterministic replays
    // (seed != 0) flush only on parks — span *counts* then depend solely
    // on the schedule and byte-identical structural attribution holds.
    constexpr int64_t kCoalesceGapNs = 5000;
    if (t->have_run_ && (t->parked_reason_ != ExecTask::BlockReason::kNone ||
                         (seed_ == 0 && wait_ns > kCoalesceGapNs))) {
      flush_exec_span(t);
    }
    if (!t->have_run_) {
      t->have_run_ = true;
      t->run_park_reason_ = t->parked_reason_;
      t->run_park0_ = t->last_step_end_tp_;
      t->run_enq_ = t->enq_tp_;
      t->run_start_ = dispatch_tp;
      t->run_steps_ = 0;
      t->run_gap_ns_ = 0;
    } else {
      t->run_gap_ns_ += wait_ns;
    }
    ++t->run_steps_;
  }
  t->state_.store(ExecTask::kRunning, std::memory_order_release);
  t->block_reason_ = ExecTask::BlockReason::kNone;
  ExecTask::StepResult r = t->step();
  if (c_steps_) c_steps_->add();
  n_steps_.fetch_add(1, std::memory_order_relaxed);
  t->last_step_end_tp_ = std::chrono::steady_clock::now();
  t->parked_reason_ = r == ExecTask::StepResult::kBlocked
                          ? t->block_reason_
                          : ExecTask::BlockReason::kNone;
  if (r == ExecTask::StepResult::kDone && t->have_run_) flush_exec_span(t);
  switch (r) {
    case ExecTask::StepResult::kReady:
      // A concurrent wake may have set kNotified; both mean "requeue".
      t->enq_tp_ = t->last_step_end_tp_;
      t->state_.store(ExecTask::kQueued, std::memory_order_release);
      enqueue(t);
      break;
    case ExecTask::StepResult::kBlocked: {
      int expected = ExecTask::kRunning;
      if (t->state_.compare_exchange_strong(expected, ExecTask::kIdle,
                                            std::memory_order_acq_rel)) {
        if (c_parks_) c_parks_->add();
        n_parks_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // kNotified: a wake raced the park decision — do not lose it.
        t->enq_tp_ = t->last_step_end_tp_;
        t->state_.store(ExecTask::kQueued, std::memory_order_release);
        enqueue(t);
      }
      break;
    }
    case ExecTask::StepResult::kDone:
      t->state_.store(ExecTask::kDoneState, std::memory_order_release);
      t->retired();  // must be the executor's last touch of the task
      break;
  }
}

ExecTask* Executor::dequeue_locked(size_t idx) {
  if (!local_[idx].empty()) {
    ExecTask* t = local_[idx].front();
    local_[idx].pop_front();
    return t;
  }
  if (!inject_.empty()) {
    ExecTask* t = inject_.front();
    inject_.pop_front();
    return t;
  }
  // Steal from a sibling's tail (the coldest work it has).
  for (size_t off = 1; off < local_.size(); ++off) {
    size_t victim = (idx + off) % local_.size();
    if (!local_[victim].empty()) {
      ExecTask* t = local_[victim].back();
      local_[victim].pop_back();
      if (c_steals_) c_steals_->add();
      n_steals_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

void Executor::worker_loop(size_t idx) {
  tls_exec = this;
  tls_worker = idx;
  // Recorders install after the pool spins up, so the thread names itself
  // lazily: once per recorder, re-checked with one atomic load per dispatch.
  uint64_t named_trace = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ExecTask* t = dequeue_locked(idx);
    if (!t) {
      if (stop_) break;
      cv_.wait(lock);
      continue;
    }
    lock.unlock();
    if (obs::TraceRecorder* rec = obs::TraceRecorder::current();
        rec != nullptr && rec->trace_id() != named_trace) {
      rec->set_thread_name("worker-" + std::to_string(idx));
      named_trace = rec->trace_id();
    }
    run_task(t);
    lock.lock();
  }
  tls_exec = nullptr;
}

void Executor::drive(const std::function<bool()>& done) {
  LM_CHECK_MSG(deterministic(), "drive() is for seeded deterministic mode");
  std::unique_lock<std::mutex> lock(mu_);
  while (!done()) {
    if (inject_.empty()) {
      if (external_pending_ == 0) {
        throw RuntimeError(
            "deterministic executor stalled: every task is parked, nothing "
            "external is pending, and the graph is not done (deadlock)");
      }
      // A completion callback will wake somebody; sleep until it does.
      cv_.wait(lock,
               [&] { return !inject_.empty() || external_pending_ == 0; });
      continue;
    }
    size_t i = rng_.next_below(inject_.size());
    ExecTask* t = inject_[i];
    inject_.erase(inject_.begin() + static_cast<long>(i));
    lock.unlock();
    run_task(t);
    lock.lock();
  }
}

Executor::Stats Executor::stats() const {
  Stats s;
  s.steps = n_steps_.load(std::memory_order_relaxed);
  s.wakeups = n_wakeups_.load(std::memory_order_relaxed);
  s.parks = n_parks_.load(std::memory_order_relaxed);
  s.steals = n_steals_.load(std::memory_order_relaxed);
  s.queue_wait_ns = queue_wait_ns_.load(std::memory_order_relaxed);
  return s;
}

void Executor::collect_telemetry(std::vector<obs::GaugeSample>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out.emplace_back(
      "executor.queue_depth", static_cast<double>(inject_.size()),
      std::vector<std::pair<std::string, std::string>>{{"worker", "inject"}});
  for (size_t i = 0; i < local_.size(); ++i) {
    out.emplace_back("executor.queue_depth",
                     static_cast<double>(local_[i].size()),
                     std::vector<std::pair<std::string, std::string>>{
                         {"worker", std::to_string(i)}});
  }
  out.emplace_back(
      "executor.workers", static_cast<double>(n_workers_),
      std::vector<std::pair<std::string, std::string>>{});
  out.emplace_back(
      "executor.queue_wait_us",
      static_cast<double>(queue_wait_ns_.load(std::memory_order_relaxed)) /
          1e3,
      std::vector<std::pair<std::string, std::string>>{});
}

}  // namespace lm::runtime
