#include "runtime/artifact.h"

#include <cstring>
#include <sstream>

#include "bytecode/compiler.h"
#include "obs/trace.h"
#include "serde/batch.h"
#include "util/error.h"

namespace lm::runtime {

using bc::ArrayRef;
using bc::ElemCode;
using bc::Value;
using serde::CValue;

const char* to_string(DeviceKind k) {
  switch (k) {
    case DeviceKind::kCpu: return "cpu/bytecode";
    case DeviceKind::kGpu: return "gpu/opencl";
    case DeviceKind::kFpga: return "fpga/verilog";
  }
  return "?";
}

std::unique_ptr<AsyncBatch> Artifact::process_async(
    std::span<const bc::Value> /*inputs*/, std::function<void()> /*on_done*/) {
  throw RuntimeError("artifact " + manifest_.task_id +
                     " does not support asynchronous batches");
}

std::string ArtifactManifest::to_string() const {
  std::ostringstream os;
  os << "artifact " << task_id << " [" << lm::runtime::to_string(device)
     << "] (";
  for (size_t i = 0; i < param_types.size(); ++i) {
    if (i) os << ", ";
    os << param_types[i]->to_string();
  }
  os << ") -> " << (return_type ? return_type->to_string() : "void")
     << " arity=" << arity;
  return os.str();
}

namespace {

/// Host → device leg of Fig. 3: boxed stream elements → Lime value array →
/// wire bytes → boundary → dense C value.
CValue elements_to_device(std::span<const Value> elems,
                          const lime::TypeRef& elem_type,
                          serde::NativeBoundary& boundary,
                          TransferStats& stats) {
  // The batch encode/decode lives in serde/batch.h, shared with the remote
  // transport (src/net/), so local and remote artifacts move bit-identical
  // bytes. The wire buffer is recycled: this runs once per firing.
  auto wire = serde::pack_batch(elems, elem_type, serde::wire_pool());
  auto native = boundary.cross_to_native(wire);
  serde::wire_pool().release(std::move(wire));
  stats.bytes_to_device += native.size();
  return serde::unmarshal_native(native, lime::Type::value_array(elem_type));
}

/// Device → host mirror path.
std::vector<Value> elements_from_device(const CValue& out,
                                        const lime::TypeRef& elem_type,
                                        serde::NativeBoundary& boundary,
                                        TransferStats& stats) {
  auto wire = serde::marshal_native(out);
  auto host = boundary.cross_to_host(wire);
  stats.bytes_from_device += host.size();
  return serde::unpack_batch(host, elem_type);
}

gpu::KReg scalar_reg_from(const CValue& c) {
  gpu::KReg r{};
  switch (c.elem) {
    case ElemCode::kI32: r.i32 = c.i32s()[0]; break;
    case ElemCode::kI64: r.i64 = c.i64s()[0]; break;
    case ElemCode::kF32: r.f32 = c.f32s()[0]; break;
    case ElemCode::kF64: r.f64 = c.f64s()[0]; break;
    case ElemCode::kBool:
    case ElemCode::kBit: r.b = c.bytes()[0]; break;
    case ElemCode::kBoxed: throw InternalError("boxed scalar");
  }
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// BytecodeArtifact
// ---------------------------------------------------------------------------

BytecodeArtifact::BytecodeArtifact(ArtifactManifest manifest,
                                   const bc::BytecodeModule& module,
                                   int method_index)
    : Artifact(std::move(manifest)),
      interp_(module),
      method_index_(method_index) {}

std::vector<Value> BytecodeArtifact::process(std::span<const Value> inputs) {
  size_t k = static_cast<size_t>(manifest_.arity);
  LM_CHECK(inputs.size() % k == 0);
  ++transfer_.batches;
  transfer_.elements_in += inputs.size();
  std::vector<Value> out;
  out.reserve(inputs.size() / k);
  std::vector<Value> args(k);
  for (size_t i = 0; i + k <= inputs.size(); i += k) {
    for (size_t j = 0; j < k; ++j) args[j] = inputs[i + j];
    out.push_back(interp_.call(method_index_, args));
  }
  transfer_.elements_out += out.size();
  return out;
}

Value BytecodeArtifact::apply(std::vector<Value> args) {
  return interp_.call(method_index_, std::move(args));
}

// ---------------------------------------------------------------------------
// GpuKernelArtifact
// ---------------------------------------------------------------------------

GpuKernelArtifact::GpuKernelArtifact(ArtifactManifest manifest,
                                     std::unique_ptr<gpu::KernelProgram> program,
                                     std::shared_ptr<gpu::GpuDevice> device)
    : Artifact(std::move(manifest)),
      program_(std::move(program)),
      device_(std::move(device)) {
  LM_CHECK(program_ != nullptr && device_ != nullptr);
}

std::vector<Value> GpuKernelArtifact::process(
    std::span<const Value> inputs) {
  size_t k = static_cast<size_t>(manifest_.arity);
  LM_CHECK(inputs.size() % k == 0);
  size_t n = inputs.size() / k;
  ++transfer_.batches;
  transfer_.elements_in += inputs.size();

  serde::NativeBoundary boundary;
  // Stream elements all share one type (only values of the upstream element
  // type flow through a connection, §2.2).
  const lime::TypeRef& elem_type = manifest_.param_types[0];
  CValue dev_in =
      elements_to_device(inputs, elem_type, boundary, transfer_);

  std::vector<gpu::KArg> args;
  for (size_t p = 0; p < program_->params.size(); ++p) {
    args.push_back(gpu::KArg::elementwise(dev_in, static_cast<int>(k),
                                          static_cast<int>(p)));
  }
  CValue dev_out = device_->launch(*program_, args, n);
  auto out = elements_from_device(dev_out, manifest_.return_type, boundary,
                                  transfer_);
  transfer_.elements_out += out.size();
  return out;
}

Value GpuKernelArtifact::run_map(std::span<const Value> args,
                                 uint32_t array_mask) {
  obs::TraceSpan span;
  if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
    span.begin(rec, "gpu", "map:" + manifest_.task_id);
  }
  ++transfer_.batches;
  serde::NativeBoundary boundary;
  // Marshal each operand: arrays elementwise, scalars broadcast.
  size_t n = 0;
  std::vector<CValue> device_values;
  device_values.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    const lime::TypeRef& pt = manifest_.param_types[i];
    if (array_mask & (1u << i)) {
      auto t = lime::Type::value_array(pt);
      auto ser = serde::serializer_for(t);
      ByteWriter w(serde::wire_pool().acquire());
      ser->serialize(args[i], w);
      auto native = boundary.cross_to_native(w.bytes());
      serde::wire_pool().release(w.take());
      transfer_.bytes_to_device += native.size();
      device_values.push_back(serde::unmarshal_native(native, t));
      n = device_values.back().count;
    } else {
      auto ser = serde::serializer_for(pt);
      ByteWriter w(serde::wire_pool().acquire());
      ser->serialize(args[i], w);
      auto native = boundary.cross_to_native(w.bytes());
      serde::wire_pool().release(w.take());
      transfer_.bytes_to_device += native.size();
      device_values.push_back(serde::unmarshal_native(native, pt));
    }
  }
  LM_CHECK_MSG(n > 0, "map launch needs at least one array operand");
  transfer_.elements_in += n;

  std::vector<gpu::KArg> kargs;
  for (size_t i = 0; i < args.size(); ++i) {
    if (array_mask & (1u << i)) {
      if (device_values[i].count != n) {
        throw RuntimeError("map arrays disagree on length");
      }
      kargs.push_back(gpu::KArg::elementwise(device_values[i]));
    } else if (manifest_.param_types[i]->is_array_like()) {
      // Whole-array broadcast: the kernel indexes it itself (matmul etc.).
      kargs.push_back(gpu::KArg::whole_array(device_values[i]));
    } else {
      gpu::KArg a;
      a.scalar = scalar_reg_from(device_values[i]);
      kargs.push_back(a);
    }
  }
  CValue dev_out = device_->launch(*program_, kargs, n);

  auto wire = serde::marshal_native(dev_out);
  auto host = boundary.cross_to_host(wire);
  transfer_.bytes_from_device += host.size();
  auto t = lime::Type::value_array(manifest_.return_type);
  ByteReader r(host);
  Value result = serde::serializer_for(t)->deserialize(r);
  transfer_.elements_out += n;
  return result;
}

Value GpuKernelArtifact::run_reduce(const Value& array) {
  LM_CHECK_MSG(manifest_.param_types.size() == 2,
               "reduce kernel must be binary");
  obs::TraceSpan span;
  if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
    span.begin(rec, "gpu", "reduce:" + manifest_.task_id);
  }
  ++transfer_.batches;
  serde::NativeBoundary boundary;
  auto arr_t = lime::Type::value_array(manifest_.return_type);
  auto ser = serde::serializer_for(arr_t);
  ByteWriter w(serde::wire_pool().acquire());
  ser->serialize(array, w);
  auto native = boundary.cross_to_native(w.bytes());
  serde::wire_pool().release(w.take());
  transfer_.bytes_to_device += native.size();
  CValue cur = serde::unmarshal_native(native, arr_t);
  if (cur.count == 0) throw RuntimeError("reduce of an empty array");
  transfer_.elements_in += cur.count;

  size_t elem_size = cur.storage.size() / cur.count;
  while (cur.count > 1) {
    size_t pairs = cur.count / 2;
    bool odd = (cur.count % 2) != 0;
    std::vector<gpu::KArg> kargs = {gpu::KArg::elementwise(cur, 2, 0),
                                    gpu::KArg::elementwise(cur, 2, 1)};
    CValue next = device_->launch(*program_, kargs, pairs);
    if (odd) {
      // Carry the unpaired trailing element into the next round.
      CValue grown = CValue::make(next.elem, true, pairs + 1);
      std::memcpy(grown.storage.data(), next.storage.data(),
                  next.storage.size());
      std::memcpy(grown.storage.data() + pairs * elem_size,
                  cur.storage.data() + (cur.count - 1) * elem_size,
                  elem_size);
      cur = std::move(grown);
    } else {
      cur = std::move(next);
    }
  }

  auto wire = serde::marshal_native(cur);
  auto host = boundary.cross_to_host(wire);
  transfer_.bytes_from_device += host.size();
  ByteReader r(host);
  Value v = ser->deserialize(r);
  transfer_.elements_out += 1;
  return bc::array_get(*v.as_array(), 0);
}

// ---------------------------------------------------------------------------
// ChainArtifact
// ---------------------------------------------------------------------------

ChainArtifact::ChainArtifact(ArtifactManifest manifest,
                             std::vector<Artifact*> stages)
    : Artifact(std::move(manifest)), stages_(std::move(stages)) {
  LM_CHECK_MSG(!stages_.empty(), "fallback chain needs at least one stage");
}

std::vector<Value> ChainArtifact::process(std::span<const Value> inputs) {
  ++transfer_.batches;
  transfer_.elements_in += inputs.size();
  std::vector<Value> cur(inputs.begin(), inputs.end());
  for (Artifact* stage : stages_) {
    size_t k = static_cast<size_t>(stage->manifest().arity);
    // Whole firings only — a trailing partial group is dropped, matching
    // the threaded scheduler's end-of-stream semantics.
    size_t usable = (cur.size() / k) * k;
    cur = stage->process(std::span<const Value>(cur.data(), usable));
  }
  transfer_.elements_out += cur.size();
  return cur;
}

// ---------------------------------------------------------------------------
// FpgaModuleArtifact
// ---------------------------------------------------------------------------

FpgaModuleArtifact::FpgaModuleArtifact(ArtifactManifest manifest,
                                       fpga::FpgaCompileResult rtl)
    : Artifact(std::move(manifest)), filter_(std::move(rtl)) {}

std::vector<Value> FpgaModuleArtifact::process(
    std::span<const Value> inputs) {
  size_t k = static_cast<size_t>(manifest_.arity);
  LM_CHECK(inputs.size() % k == 0);
  ++transfer_.batches;
  transfer_.elements_in += inputs.size();

  serde::NativeBoundary boundary;
  const lime::TypeRef& elem_type = manifest_.param_types[0];
  CValue dev_in = elements_to_device(inputs, elem_type, boundary, transfer_);

  fpga::FpgaRunStats stats;
  CValue dev_out;
  {
    obs::TraceSpan span;
    if (obs::TraceRecorder* rec = obs::TraceRecorder::current()) {
      span.begin(rec, "fpga", "rtl:" + manifest_.task_id);
    }
    dev_out = filter_.process(dev_in, &stats);
    if (span.active()) {
      span.set_args(obs::JsonArgs()
                        .add("elements", static_cast<uint64_t>(inputs.size()))
                        .add("cycles", stats.cycles)
                        .str());
    }
  }
  cycles_ += stats.cycles;

  auto out = elements_from_device(dev_out, manifest_.return_type, boundary,
                                  transfer_);
  transfer_.elements_out += out.size();
  return out;
}

}  // namespace lm::runtime
