#include "runtime/store.h"

#include "util/error.h"

namespace lm::runtime {

void ArtifactStore::add(std::unique_ptr<Artifact> artifact) {
  LM_CHECK(artifact != nullptr);
  Artifact* raw = artifact.get();
  LM_CHECK_MSG(find(raw->manifest().task_id, raw->manifest().device) == nullptr,
               "duplicate artifact for " << raw->manifest().task_id);
  by_id_[raw->manifest().task_id].push_back(raw);
  all_.push_back(std::move(artifact));
}

std::vector<Artifact*> ArtifactStore::lookup(const std::string& task_id) const {
  auto it = by_id_.find(task_id);
  if (it == by_id_.end()) return {};
  return it->second;
}

Artifact* ArtifactStore::find(const std::string& task_id,
                              DeviceKind device) const {
  auto it = by_id_.find(task_id);
  if (it == by_id_.end()) return nullptr;
  for (Artifact* a : it->second) {
    if (a->manifest().device == device) return a;
  }
  return nullptr;
}

std::vector<const ArtifactManifest*> ArtifactStore::manifests() const {
  std::vector<const ArtifactManifest*> out;
  out.reserve(all_.size());
  for (const auto& a : all_) out.push_back(&a->manifest());
  return out;
}

std::vector<const Artifact*> ArtifactStore::artifacts() const {
  std::vector<const Artifact*> out;
  out.reserve(all_.size());
  for (const auto& a : all_) out.push_back(a.get());
  return out;
}

std::string ArtifactStore::segment_id(
    const std::vector<std::string>& task_ids) {
  std::string id = "seg";
  for (const auto& t : task_ids) id += ":" + t;
  return id;
}

}  // namespace lm::runtime
