#include "runtime/liquid_compiler.h"

#include <cstdlib>
#include <unordered_set>

#include "analysis/analysis.h"
#include "analysis/ir_verify.h"
#include "analysis/kernel_ranges.h"
#include "bytecode/compiler.h"
#include "cache/serialize.h"
#include "fpga/synth.h"
#include "gpu/kernel_compiler.h"
#include "lime/frontend.h"
#include "util/byte_buffer.h"
#include "util/error.h"

namespace lm::runtime {

namespace {

using lime::as;
using lime::ExprKind;
using lime::StmtKind;

/// Collects every method used by a map or reduce operator anywhere in the
/// program — the GPU backend accelerates these wholesale (§2.2).
class MapMethodCollector {
 public:
  std::vector<const lime::MethodDecl*> collect(const lime::Program& p) {
    for (const auto& cls : p.classes) {
      for (const auto& m : cls->methods) {
        if (m->body) walk_stmt(*m->body);
      }
    }
    return out_;
  }

 private:
  void add(const lime::MethodDecl* m) {
    if (m && seen_.insert(m).second) out_.push_back(m);
  }

  void walk_stmt(const lime::Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& c : as<lime::BlockStmt>(s).stmts) {
          if (c) walk_stmt(*c);
        }
        return;
      case StmtKind::kExpr:
        if (as<lime::ExprStmt>(s).expr) walk_expr(*as<lime::ExprStmt>(s).expr);
        return;
      case StmtKind::kVarDecl:
        if (as<lime::VarDeclStmt>(s).init) {
          walk_expr(*as<lime::VarDeclStmt>(s).init);
        }
        return;
      case StmtKind::kIf: {
        const auto& i = as<lime::IfStmt>(s);
        walk_expr(*i.cond);
        walk_stmt(*i.then_stmt);
        if (i.else_stmt) walk_stmt(*i.else_stmt);
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = as<lime::WhileStmt>(s);
        walk_expr(*w.cond);
        walk_stmt(*w.body);
        return;
      }
      case StmtKind::kFor: {
        const auto& f = as<lime::ForStmt>(s);
        if (f.init) walk_stmt(*f.init);
        if (f.cond) walk_expr(*f.cond);
        if (f.update) walk_expr(*f.update);
        walk_stmt(*f.body);
        return;
      }
      case StmtKind::kReturn:
        if (as<lime::ReturnStmt>(s).value) {
          walk_expr(*as<lime::ReturnStmt>(s).value);
        }
        return;
      default:
        return;
    }
  }

  void walk_expr(const lime::Expr& e) {
    switch (e.kind) {
      case ExprKind::kMap: {
        const auto& m = as<lime::MapExpr>(e);
        add(m.resolved);
        for (const auto& a : m.args) walk_expr(*a);
        return;
      }
      case ExprKind::kReduce: {
        const auto& r = as<lime::ReduceExpr>(e);
        add(r.resolved);
        for (const auto& a : r.args) walk_expr(*a);
        return;
      }
      case ExprKind::kUnary:
        walk_expr(*as<lime::UnaryExpr>(e).operand);
        return;
      case ExprKind::kBinary:
        walk_expr(*as<lime::BinaryExpr>(e).lhs);
        walk_expr(*as<lime::BinaryExpr>(e).rhs);
        return;
      case ExprKind::kAssign:
        walk_expr(*as<lime::AssignExpr>(e).target);
        walk_expr(*as<lime::AssignExpr>(e).value);
        return;
      case ExprKind::kTernary: {
        const auto& t = as<lime::TernaryExpr>(e);
        walk_expr(*t.cond);
        walk_expr(*t.then_expr);
        walk_expr(*t.else_expr);
        return;
      }
      case ExprKind::kCall: {
        const auto& c = as<lime::CallExpr>(e);
        if (c.receiver) walk_expr(*c.receiver);
        for (const auto& a : c.args) walk_expr(*a);
        return;
      }
      case ExprKind::kIndex:
        walk_expr(*as<lime::IndexExpr>(e).array);
        walk_expr(*as<lime::IndexExpr>(e).index);
        return;
      case ExprKind::kField:
        walk_expr(*as<lime::FieldExpr>(e).object);
        return;
      case ExprKind::kCast:
        walk_expr(*as<lime::CastExpr>(e).operand);
        return;
      case ExprKind::kNewArray: {
        const auto& n = as<lime::NewArrayExpr>(e);
        if (n.length) walk_expr(*n.length);
        if (n.from_array) walk_expr(*n.from_array);
        return;
      }
      case ExprKind::kRelocate:
        walk_expr(*as<lime::RelocateExpr>(e).inner);
        return;
      case ExprKind::kConnect:
        walk_expr(*as<lime::ConnectExpr>(e).lhs);
        walk_expr(*as<lime::ConnectExpr>(e).rhs);
        return;
      default:
        return;
    }
  }

  std::vector<const lime::MethodDecl*> out_;
  std::unordered_set<const lime::MethodDecl*> seen_;
};

ArtifactManifest manifest_for(const lime::MethodDecl& m, DeviceKind device,
                              std::string text) {
  ArtifactManifest mf;
  mf.task_id = m.qualified_name();
  mf.device = device;
  for (const auto& p : m.params) mf.param_types.push_back(p.type);
  mf.return_type = m.return_type;
  mf.arity = static_cast<int>(m.params.size());
  mf.artifact_text = std::move(text);
  return mf;
}

}  // namespace

std::unique_ptr<CompiledProgram> compile(const std::string& source,
                                         const CompileOptions& options) {
  auto cp = std::make_unique<CompiledProgram>();

  // 1. Frontend (lex, parse, sema).
  lime::FrontendResult fr = lime::compile_source(source);
  cp->diags = fr.diags;
  cp->ast = std::move(fr.program);
  if (cp->diags.has_errors()) return cp;

  // Artifact cache + compile service. Lookup order on every cacheable
  // artifact: local cache → remote fetcher → compile fresh (then store in
  // rw mode). A payload that fails to decode is treated exactly like a
  // miss — the cache can slow a compile down, never wrong it.
  std::shared_ptr<cache::ArtifactCache> ac;
  if (options.cache.mode != cache::CacheMode::kOff) {
    ac = std::make_shared<cache::ArtifactCache>(options.cache);
    cp->cache = ac;
  }
  const bool keyed = ac != nullptr || options.remote_fetch != nullptr;
  auto try_fetch = [&](uint64_t key, const std::string& backend,
                       const std::string& task_id)
      -> std::optional<std::vector<uint8_t>> {
    if (ac) {
      if (auto p = ac->load(key, backend)) return p;
    }
    if (options.remote_fetch) {
      if (auto p = options.remote_fetch(key, backend, task_id)) {
        // Populate the local cache so the next run skips the network too.
        if (ac && ac->writable()) ac->store(key, backend, *p);
        return p;
      }
    }
    return std::nullopt;
  };

  // 2. CPU backend: the whole program, unconditionally (§1, §3). The
  // module is keyed by the source text itself (the frontend is the
  // canonicalizer for everything downstream).
  bool bytecode_cached = false;
  {
    uint64_t bkey = 0;
    if (keyed) {
      std::span<const uint8_t> src(
          reinterpret_cast<const uint8_t*>(source.data()), source.size());
      bkey = cache::artifact_key(src, cache::kBackendBytecode, "");
      cp->artifact_keys["bytecode:<program>"] = bkey;
      if (auto payload = try_fetch(bkey, cache::kBackendBytecode,
                                   "<program>")) {
        try {
          cp->bytecode = cache::decode_bytecode_module(*payload);
          bytecode_cached = true;
          cp->backend_log.push_back("cpu: bytecode module (cached)");
        } catch (const std::exception&) {
          cp->bytecode.reset();
        }
      }
    }
    if (!cp->bytecode) {
      size_t diags_before = cp->diags.diagnostics().size();
      cp->bytecode = bc::compile_program(*cp->ast, cp->diags);
      // Only a diagnostic-free compile is cached: a warm start serves the
      // module without replaying compile-time notes, so a compile that
      // produced any must not short-circuit.
      if (ac && ac->writable() &&
          cp->diags.diagnostics().size() == diags_before) {
        ac->store(bkey, cache::kBackendBytecode,
                  cache::encode_bytecode_module(*cp->bytecode));
      }
    }
  }

  // 3. Static task-graph discovery (§3).
  cp->graphs = ir::extract_task_graphs(*cp->ast, cp->diags);
  if (cp->diags.has_errors()) return cp;

  // 3b. Whole-program static analysis: definite assignment, the
  // interprocedural effect/isolation verifier, and task-graph hazards.
  // Effect-verifier violations demote tasks to bytecode-only placement.
  {
    analysis::AnalysisOptions aopts;
    aopts.fifo_capacity = options.fifo_capacity;
    analysis::AnalysisResult ar =
        analysis::analyze_program(*cp->ast, cp->graphs, aopts);
    cp->diags.merge(ar.diags);
    cp->demoted_tasks = std::move(ar.demoted);
    cp->capacity_reports = std::move(ar.capacity_reports);
    cp->static_costs = std::move(ar.static_costs);
    if (cp->diags.has_errors()) return cp;
  }
  const bool verify_ir = std::getenv("LM_VERIFY_IR") != nullptr;

  cp->gpu_device = std::make_shared<gpu::GpuDevice>(options.gpu_config);

  // Bytecode artifacts for every filter method appearing in any graph (the
  // guaranteed universal implementation) and every map/reduce method.
  std::unordered_set<std::string> bytecode_done;
  auto add_bytecode_artifact = [&](const lime::MethodDecl* m) {
    if (!m) return;
    std::string id = m->qualified_name();
    if (!bytecode_done.insert(id).second) return;
    int idx = cp->bytecode->index_of(id);
    LM_CHECK_MSG(idx >= 0, "no bytecode for " << id);
    std::string text = "bytecode:\n";  // disassembly as the artifact text
    cp->store.add(std::make_unique<BytecodeArtifact>(
        manifest_for(*m, DeviceKind::kCpu, std::move(text)), *cp->bytecode,
        idx));
    // Per-task CPU artifacts wrap the module; when the module itself came
    // from cache, no compilation happened here either.
    cp->backend_log.push_back("cpu: compiled " + id +
                              (bytecode_cached ? " (cached)" : ""));
  };

  for (const auto& g : cp->graphs.graphs) {
    for (const auto& n : g.nodes) {
      if (n.kind == ir::TaskNodeInfo::Kind::kFilter) {
        add_bytecode_artifact(n.method);
      }
    }
  }
  MapMethodCollector collector;
  auto map_methods = collector.collect(*cp->ast);
  for (const auto* m : map_methods) add_bytecode_artifact(m);

  // 4. GPU backend (§3: autonomous, may decline per task).
  if (options.enable_gpu) {
    std::unordered_set<std::string> gpu_done;
    // Compile flags that change the emitted kernel participate in the key.
    const std::string gpu_flags = verify_ir ? "verify" : "";
    auto wire_native = [&](const std::string& id) {
      if (!options.use_native_kernels) return;
      if (const auto* fn = gpu::NativeKernelRegistry::global().find(id)) {
        cp->gpu_device->registry().add(id, *fn);
      }
    };
    // Key of one task's (or chain's) kernel, or nullopt when uncacheable.
    auto gpu_key = [&](const std::vector<std::string>& roots,
                      const std::string& task_id) -> std::optional<uint64_t> {
      if (!keyed) return std::nullopt;
      ByteWriter cb;
      if (!cache::canonical_chain_bytes(*cp->bytecode, roots, cb)) {
        return std::nullopt;
      }
      uint64_t key = cache::artifact_key(cb.bytes(), cache::kBackendGpu,
                                         gpu_flags);
      cp->artifact_keys["gpu:" + task_id] = key;
      return key;
    };
    auto fetch_gpu = [&](std::optional<uint64_t> key, const std::string& id)
        -> std::unique_ptr<gpu::KernelProgram> {
      if (!key) return nullptr;
      auto payload = try_fetch(*key, cache::kBackendGpu, id);
      if (!payload) return nullptr;
      try {
        return cache::decode_kernel_program(*payload);
      } catch (const std::exception&) {
        return nullptr;
      }
    };
    auto store_gpu = [&](std::optional<uint64_t> key,
                         const gpu::KernelProgram& prog) {
      if (key && ac && ac->writable()) {
        ac->store(*key, cache::kBackendGpu, cache::encode_kernel_program(prog));
      }
    };
    auto add_gpu_kernel = [&](const lime::MethodDecl* m) {
      if (!m) return;
      std::string id = m->qualified_name();
      if (!gpu_done.insert(id).second) return;
      if (cp->demoted_tasks.count(id)) {
        cp->backend_log.push_back("gpu: demoted " + id +
                                  " — effect verifier (LM110)");
        cp->suitability.push_back({"LM403", DeviceKind::kGpu, id, m->loc,
                                   "demoted by the effect verifier"});
        return;
      }
      std::optional<uint64_t> key = gpu_key({id}, id);
      std::unique_ptr<gpu::KernelProgram> prog = fetch_gpu(key, id);
      const bool from_cache = prog != nullptr;
      if (!prog) {
        auto r = gpu::compile_kernel(*m);
        if (!r.ok()) {
          cp->backend_log.push_back("gpu: excluded " + id + " — " +
                                    r.exclusion_reason);
          cp->suitability.push_back({"LM401", DeviceKind::kGpu, id,
                                     r.exclusion_loc, r.exclusion_reason});
          return;
        }
        if (verify_ir &&
            analysis::verify_kernel(*r.program, cp->diags) > 0) {
          cp->backend_log.push_back("gpu: dropped " + id +
                                    " — kernel IR verification failed");
          return;
        }
        analysis::annotate_kernel_ranges(*r.program);
        prog = std::move(r.program);
        store_gpu(key, *prog);
      }
      ArtifactManifest mf =
          manifest_for(*m, DeviceKind::kGpu, prog->opencl_source);
      wire_native(id);
      cp->store.add(std::make_unique<GpuKernelArtifact>(
          std::move(mf), std::move(prog), cp->gpu_device));
      cp->backend_log.push_back(from_cache ? "gpu: compiled " + id + " (cached)"
                                           : "gpu: compiled " + id);
    };

    // Per-filter kernels and fused segment kernels for relocated regions.
    for (const auto& g : cp->graphs.graphs) {
      for (const auto& [first, last] : g.relocated_segments()) {
        std::vector<const lime::MethodDecl*> chain;
        std::vector<std::string> ids;
        for (int i = first; i <= last; ++i) {
          chain.push_back(g.nodes[static_cast<size_t>(i)].method);
          ids.push_back(g.nodes[static_cast<size_t>(i)].task_id);
          add_gpu_kernel(g.nodes[static_cast<size_t>(i)].method);
        }
        bool seg_demoted = false;
        for (const auto& id : ids) seg_demoted |= cp->demoted_tasks.count(id) > 0;
        if (chain.size() > 1 && !seg_demoted) {
          std::string seg_id = ArtifactStore::segment_id(ids);
          if (gpu_done.insert(seg_id).second) {
            std::vector<std::string> roots;
            for (const auto* cm : chain) roots.push_back(cm->qualified_name());
            std::optional<uint64_t> key = gpu_key(roots, seg_id);
            std::unique_ptr<gpu::KernelProgram> prog = fetch_gpu(key, seg_id);
            const bool from_cache = prog != nullptr;
            if (!prog) {
              auto r = gpu::compile_segment_kernel(chain);
              if (r.ok() && verify_ir &&
                  analysis::verify_kernel(*r.program, cp->diags) > 0) {
                cp->backend_log.push_back("gpu: dropped segment " + seg_id +
                                          " — kernel IR verification failed");
                continue;
              }
              if (!r.ok()) {
                cp->backend_log.push_back("gpu: excluded segment " + seg_id +
                                          " — " + r.exclusion_reason);
                cp->suitability.push_back({"LM401", DeviceKind::kGpu, seg_id,
                                           r.exclusion_loc,
                                           r.exclusion_reason});
                continue;
              }
              analysis::annotate_kernel_ranges(*r.program);
              prog = std::move(r.program);
              store_gpu(key, *prog);
            }
            ArtifactManifest mf;
            mf.task_id = seg_id;
            mf.device = DeviceKind::kGpu;
            for (const auto& p : chain.front()->params) {
              mf.param_types.push_back(p.type);
            }
            mf.return_type = chain.back()->return_type;
            mf.arity = static_cast<int>(chain.front()->params.size());
            mf.artifact_text = prog->opencl_source;
            wire_native(seg_id);
            cp->store.add(std::make_unique<GpuKernelArtifact>(
                std::move(mf), std::move(prog), cp->gpu_device));
            cp->backend_log.push_back(
                from_cache ? "gpu: compiled fused segment " + seg_id +
                                 " (cached)"
                           : "gpu: compiled fused segment " + seg_id);
          }
        }
      }
    }
    // Map/reduce kernels.
    for (const auto* m : map_methods) add_gpu_kernel(m);
  }

  // 5. FPGA backend: one module per relocated filter, plus a fused module
  //    per relocated segment (so "prefer larger" applies on this device
  //    too).
  if (options.enable_fpga) {
    std::unordered_set<std::string> fpga_done;
    fpga::FpgaSynthOptions synth_opts;
    synth_opts.pipelined = options.fpga_pipelined;
    // Synthesis options change the emitted module, so they key the entry.
    const std::string fpga_flags =
        std::string("pipelined=") + (synth_opts.pipelined ? "1" : "0") +
        ",max_unroll=" + std::to_string(synth_opts.max_unroll) +
        (verify_ir ? ",verify" : "");
    auto fpga_key = [&](const std::vector<std::string>& roots,
                        const std::string& task_id)
        -> std::optional<uint64_t> {
      if (!keyed) return std::nullopt;
      ByteWriter cb;
      if (!cache::canonical_chain_bytes(*cp->bytecode, roots, cb)) {
        return std::nullopt;
      }
      uint64_t key = cache::artifact_key(cb.bytes(), cache::kBackendFpga,
                                         fpga_flags);
      cp->artifact_keys["fpga:" + task_id] = key;
      return key;
    };
    auto fetch_fpga = [&](std::optional<uint64_t> key, const std::string& id)
        -> std::optional<fpga::FpgaCompileResult> {
      if (!key) return std::nullopt;
      auto payload = try_fetch(*key, cache::kBackendFpga, id);
      if (!payload) return std::nullopt;
      try {
        return cache::decode_fpga_result(*payload);
      } catch (const std::exception&) {
        return std::nullopt;
      }
    };
    auto store_fpga = [&](std::optional<uint64_t> key,
                          const fpga::FpgaCompileResult& r) {
      if (key && ac && ac->writable()) {
        ac->store(*key, cache::kBackendFpga, cache::encode_fpga_result(r));
      }
    };
    for (const auto* m : cp->graphs.relocated_filter_methods()) {
      std::string id = m->qualified_name();
      if (!fpga_done.insert(id).second) continue;
      if (cp->demoted_tasks.count(id)) {
        cp->backend_log.push_back("fpga: demoted " + id +
                                  " — effect verifier (LM110)");
        cp->suitability.push_back({"LM403", DeviceKind::kFpga, id, m->loc,
                                   "demoted by the effect verifier"});
        continue;
      }
      std::optional<uint64_t> key = fpga_key({id}, id);
      std::optional<fpga::FpgaCompileResult> res = fetch_fpga(key, id);
      const bool from_cache = res.has_value();
      if (!res) {
        auto r = fpga::synthesize_filter(*m, synth_opts);
        if (!r.ok()) {
          cp->backend_log.push_back("fpga: excluded " + id + " — " +
                                    r.exclusion_reason);
          cp->suitability.push_back({"LM402", DeviceKind::kFpga, id,
                                     r.exclusion_loc, r.exclusion_reason});
          continue;
        }
        if (verify_ir && analysis::verify_module(*r.module, cp->diags) > 0) {
          cp->backend_log.push_back("fpga: dropped " + id +
                                    " — RTL verification failed");
          continue;
        }
        store_fpga(key, r);
        res = std::move(r);
      }
      ArtifactManifest mf = manifest_for(*m, DeviceKind::kFpga, res->verilog);
      cp->store.add(std::make_unique<FpgaModuleArtifact>(std::move(mf),
                                                         std::move(*res)));
      cp->backend_log.push_back(from_cache
                                    ? "fpga: compiled " + id + " (cached)"
                                    : "fpga: compiled " + id);
    }
    for (const auto& g : cp->graphs.graphs) {
      for (const auto& [first, last] : g.relocated_segments()) {
        if (last - first + 1 < 2) continue;
        std::vector<const lime::MethodDecl*> chain;
        std::vector<std::string> ids;
        for (int i = first; i <= last; ++i) {
          chain.push_back(g.nodes[static_cast<size_t>(i)].method);
          ids.push_back(g.nodes[static_cast<size_t>(i)].task_id);
        }
        std::string seg_id = ArtifactStore::segment_id(ids);
        if (!fpga_done.insert(seg_id).second) continue;
        bool seg_demoted = false;
        for (const auto& id : ids) {
          seg_demoted |= cp->demoted_tasks.count(id) > 0;
        }
        if (seg_demoted) continue;
        std::vector<std::string> roots;
        for (const auto* cm : chain) roots.push_back(cm->qualified_name());
        std::optional<uint64_t> key = fpga_key(roots, seg_id);
        std::optional<fpga::FpgaCompileResult> res = fetch_fpga(key, seg_id);
        const bool from_cache = res.has_value();
        if (!res) {
          auto r = fpga::synthesize_segment(chain, synth_opts);
          if (!r.ok()) {
            cp->backend_log.push_back("fpga: excluded segment " + seg_id +
                                      " — " + r.exclusion_reason);
            cp->suitability.push_back({"LM402", DeviceKind::kFpga, seg_id,
                                       r.exclusion_loc, r.exclusion_reason});
            continue;
          }
          if (verify_ir && analysis::verify_module(*r.module, cp->diags) > 0) {
            cp->backend_log.push_back("fpga: dropped segment " + seg_id +
                                      " — RTL verification failed");
            continue;
          }
          store_fpga(key, r);
          res = std::move(r);
        }
        ArtifactManifest mf;
        mf.task_id = seg_id;
        mf.device = DeviceKind::kFpga;
        for (const auto& p : chain.front()->params) {
          mf.param_types.push_back(p.type);
        }
        mf.return_type = chain.back()->return_type;
        mf.arity = static_cast<int>(chain.front()->params.size());
        mf.artifact_text = res->verilog;
        cp->store.add(std::make_unique<FpgaModuleArtifact>(std::move(mf),
                                                           std::move(*res)));
        cp->backend_log.push_back(
            from_cache ? "fpga: compiled fused segment " + seg_id + " (cached)"
                       : "fpga: compiled fused segment " + seg_id);
      }
    }
  }

  return cp;
}

}  // namespace lm::runtime
