// The Liquid Metal runtime (§4).
//
// Implements the two host interfaces the bytecode interpreter exposes:
//
//  * TaskGraphHost — receives task creation/connect/start/finish ops while
//    the Lime program runs, builds the runtime graph of task objects (§4.1),
//    performs task substitution against the artifact store (§4.2), then
//    schedules the tasks over the shared event-driven executor with FIFO
//    connections, marshaling data to device artifacts as needed (§4.3).
//    Tasks are cooperative state machines multiplexed over a fixed worker
//    pool (see runtime/executor.h) — N graphs × M tasks share O(workers)
//    OS threads, and FIFO readiness events wake parked tasks instead of
//    unblocking dedicated threads.
//
//  * AccelHooks — offered every map/reduce; when the store holds a GPU
//    kernel for the method and the placement policy allows it, the whole
//    data-parallel operation runs on the device.
//
// The substitution algorithm follows §4.2: "it prefers a larger
// substitution to a smaller one. It also favors GPU and FPGA artifacts to
// bytecode although that choice can be manually directed as well."
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/attribution.h"
#include "obs/cost_model.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/liquid_compiler.h"
#include "runtime/store.h"

namespace lm::runtime {

class Executor;

/// Manual direction of placement (§4.2).
enum class Placement {
  kAuto,      // prefer larger, prefer accelerators (the paper's default)
  kCpuOnly,   // bytecode everywhere (the always-available baseline)
  kGpuOnly,   // substitute only GPU artifacts
  kFpgaOnly,  // substitute only FPGA artifacts
  /// §7 future work, implemented here: "runtime introspection and
  /// adaptation of the task-graph partitioning so that tasks run where
  /// they are best suited." Each candidate artifact is profiled on a
  /// prefix of the actual stream and the fastest plan wins.
  kAdaptive,
};

struct RuntimeConfig {
  Placement placement = Placement::kAuto;
  /// Capacity of each inter-task FIFO.
  size_t fifo_capacity = 1024;
  /// Elements a device node drains per batch (device launches amortize the
  /// marshaling cost over this many elements).
  size_t device_batch = 4096;
  /// false → single-threaded inline execution (debugging / determinism).
  bool use_threads = true;
  /// Executor worker threads shared by all graphs this runtime executes.
  /// 0 → hardware concurrency. Fixed at the first executed graph (the
  /// worker pool is created lazily and lives for the runtime's lifetime).
  size_t worker_threads = 0;
  /// Nonzero → deterministic virtual-scheduler mode: zero worker threads,
  /// every task step serialized on the finishing thread in an order drawn
  /// from this seed. The same seed replays the same interleaving, making
  /// schedule-dependent bugs reproducible. Graphs execute inside finish()
  /// (or at handle destruction) instead of concurrently with start().
  uint64_t scheduler_seed = 0;
  /// false → maps/reduces always interpret (isolates pipeline effects).
  bool accelerate_maps = true;
  /// false → never substitute fused segment artifacts, only per-filter ones
  /// (the E6 fusion ablation).
  bool allow_fusion = true;
  /// kAdaptive: how many stream elements to profile each candidate on.
  size_t calibration_elements = 64;
  /// kAdaptive: false → skip the calibration prefix entirely and rank
  /// candidates by the compiler's static cost seeds (cost_estimate.h) —
  /// the cold-start path, decision-logged source=static. True (default)
  /// profiles on real data as before.
  bool enable_calibration = true;

  // -- online profiling and mid-run re-substitution (§7, StarPU-style) --

  /// kAdaptive only: every `resubstitution_interval` device batches, a
  /// node compares its live cost model (EWMA of µs per element) against
  /// the calibrated score of the best losing candidate; past the drift
  /// threshold it swaps artifacts for the remainder of the stream. Off by
  /// default — substitution stays a one-shot decision unless asked.
  bool enable_resubstitution = false;
  /// Device batches between drift checks.
  size_t resubstitution_interval = 8;
  /// Relative drift that triggers a swap: live > calibrated × (1 + drift).
  double resubstitution_drift = 0.5;
  /// Smoothing factor for the per-(task, device) EWMA cost models.
  double cost_ewma_alpha = 0.25;

  /// Flight recorder: per-thread ring size for the always-on black box
  /// (applied to the process-wide recorder at runtime construction).
  size_t flight_ring_capacity = 256;
  /// Where Chrome-trace snapshots are dumped when a task faults or a drift
  /// swap fires. Empty (the default) disables dumping; capture still runs.
  std::string flight_dump_path;

  /// Enable critical-path attribution (DESIGN.md §12) for executor graphs
  /// run while a TraceRecorder is installed. Finalization only notes the
  /// graph id; the trace walk itself runs lazily at the first consumer —
  /// attributions(), report() or a telemetry scrape — so the analysis
  /// never sits on the run's own critical path.
  bool attribution = true;

  // -- remote device transport (src/net/, DESIGN.md §9) --

  /// Device servers ("host:port") whose artifacts become substitution
  /// candidates. The runtime itself never dials: net::attach_remote_devices
  /// reads this list, connects, and registers RemoteArtifact proxies via
  /// add_remote_artifact(). Kept in the config so one struct describes the
  /// whole placement universe.
  std::vector<std::string> remote_endpoints;
  /// Per-request deadline for remote batches, ms. Generous by default —
  /// the server runs cycle-accurate simulators.
  int remote_timeout_ms = 30000;
  /// Re-send attempts (each on a fresh connection) before a remote batch
  /// fails over to the local fallback artifact.
  int remote_retries = 1;
  /// kAuto/kGpuOnly/kFpgaOnly: when a device has both a local and a remote
  /// artifact, prefer the remote one (the point of attaching a server).
  /// kAdaptive ignores this and lets calibration measurements decide.
  bool prefer_remote = true;
};

/// One substitution decision, for logs, tests and the E2 experiment.
struct SubstitutionRecord {
  std::string task_ids;  // "P.a+P.b" for a fused segment
  DeviceKind device = DeviceKind::kCpu;
  bool fused = false;
  /// kAdaptive: the winning candidate's measured calibration score in µs
  /// per stream element; negative when no measurement backs the choice.
  double score_us_per_elem = -1.0;
  /// kAdaptive: false when the calibration prefix could not feed any
  /// candidate (fewer elements than the artifact's arity) and the choice
  /// fell back to the static §4.2 preference order.
  bool calibrated = false;
  /// True when the winning artifact runs out-of-process (src/net/).
  bool remote = false;
  /// "host:port" of the serving lmdev when `remote` is set.
  std::string endpoint;
  /// What ranked the winner: "measured" (calibration prefix), "static"
  /// (compiler cost seeds, cold start), or empty (§4.2 preference order).
  std::string source;
};

/// One mid-run artifact swap (enable_resubstitution): the live cost model
/// drifted past the calibrated score of a losing candidate.
struct ResubstitutionRecord {
  std::string task_ids;
  DeviceKind from = DeviceKind::kCpu;
  DeviceKind to = DeviceKind::kCpu;
  /// Live EWMA of the abandoned artifact at the swap, µs per element.
  double live_us_per_elem = 0;
  /// Calibration score of the artifact swapped in, µs per element.
  double calibrated_us_per_elem = 0;
  /// Batch-drain latency percentiles of the abandoned artifact.
  double before_p50_us = 0;
  double before_p99_us = 0;
  /// How many batches the node had drained when the swap fired.
  uint64_t at_batch = 0;
  /// Why the swap fired: "drift" (cost-model divergence) or
  /// "remote-failure" (transport death, swapped to the local fallback).
  std::string reason = "drift";
};

/// Point-in-time view of the runtime's counters. This is a *snapshot*
/// assembled from the thread-safe MetricsRegistry (the live counters are
/// atomics, so task threads under use_threads=true may bump them while
/// another thread snapshots — the old plain-uint64_t version of this struct
/// was the live store, a latent data race).
struct RuntimeStats {
  std::vector<SubstitutionRecord> substitutions;
  std::vector<ResubstitutionRecord> resubstitutions;
  uint64_t graphs_executed = 0;
  uint64_t elements_streamed = 0;
  uint64_t maps_accelerated = 0;
  uint64_t maps_interpreted = 0;
  uint64_t reduces_accelerated = 0;
  uint64_t reduces_interpreted = 0;
  /// kAdaptive: candidate artifacts profiled during calibration.
  uint64_t candidates_profiled = 0;
  /// Marshaling traffic over all device artifacts this runtime fired.
  uint64_t bytes_to_device = 0;
  uint64_t bytes_from_device = 0;
  /// Highest FIFO occupancy observed across all executed graphs.
  uint64_t fifo_high_water = 0;
  /// Trace events rejected by the installed recorder's per-thread cap.
  uint64_t trace_dropped_events = 0;
};

class LiquidRuntime : public bc::TaskGraphHost, public bc::AccelHooks {
 public:
  struct RtGraph;
  struct RtNode;

  /// The compiled program must outlive the runtime.
  LiquidRuntime(CompiledProgram& program, RuntimeConfig config = {});
  ~LiquidRuntime() override;

  /// Runs a program entry point under this runtime (task-graph ops and
  /// map/reduce ops route back here).
  bc::Value call(const std::string& qualified_name,
                 std::vector<bc::Value> args);

  bc::Interpreter& interpreter() { return interp_; }
  /// Refreshes and returns the stats snapshot. The returned reference stays
  /// valid for the runtime's lifetime but its contents are only stable
  /// until the next stats()/reset_stats() call — callers wanting a durable
  /// copy should copy the struct.
  const RuntimeStats& stats() const;
  void reset_stats();
  /// The live, thread-safe metric store backing stats(). Counter names are
  /// listed in DESIGN.md §7 ("Observability").
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Live per-(task, device) cost models fed by every device-node batch.
  const obs::CostModelRegistry& cost_models() const { return cost_models_; }
  /// End-of-run performance report: per-task × per-device batch counts and
  /// latency percentiles, transfer bytes, substitution / re-substitution
  /// history, counters and trace-drop counts. Cheap to build; callable at
  /// any point (mid-stream rows show whatever has drained so far).
  obs::PerfReport report() const;
  /// Critical-path attributions (one per executor graph finalized while a
  /// recorder was installed and config.attribution was on), in execution
  /// order. Graphs pending analysis are resolved here first, reading the
  /// currently installed recorder. Copies under the lock; safe
  /// concurrently with running graphs.
  std::vector<obs::Attribution> attributions() const;
  /// Appends live gauges for the telemetry exporter: per-FIFO depth and
  /// capacity for every graph whose threads are still running, and
  /// per-(task, device) in-flight / throughput / EWMA rows from the cost
  /// models. Safe to call from an exporter thread concurrently with the
  /// workload; intended as a TelemetryHub gauge collector.
  void collect_telemetry(std::vector<obs::GaugeSample>& out) const;
  const RuntimeConfig& config() const { return config_; }
  void set_placement(Placement p) { config_.placement = p; }

  /// Registers an out-of-process substitution candidate (a net::RemoteArtifact
  /// proxy). Called by net::attach_remote_devices before the first run; the
  /// artifact joins the candidate pool alongside the compiled program's own
  /// store entries.
  void add_remote_artifact(std::unique_ptr<Artifact> artifact);
  /// The remote candidates registered so far (tests / tools).
  const ArtifactStore& remote_store() const { return remote_store_; }

  // -- TaskGraphHost (called by the interpreter) --
  bc::Value make_source(bc::Value array, int rate) override;
  bc::Value make_sink(bc::Value array) override;
  bc::Value make_task(const std::string& task_id, int method_index,
                      bool relocated) override;
  bc::Value connect(bc::Value lhs, bc::Value rhs) override;
  void start(bc::Value graph) override;
  void finish(bc::Value graph) override;

  // -- AccelHooks (called by the interpreter) --
  bool try_map(const std::string& task_id, std::span<const bc::Value> args,
               uint32_t array_mask, bc::Value* out) override;
  bool try_reduce(const std::string& task_id, const bc::Value& array,
                  bc::Value* out) override;

 private:
  struct HotCounters;

  std::shared_ptr<RtGraph> graph_of(const bc::Value& v);
  /// The best artifact for (id, device) across the program store and the
  /// remote store: remote wins over local per config_.prefer_remote (never
  /// for kCpu — a bytecode hop across the wire is strictly worse).
  Artifact* find_candidate(const std::string& id, DeviceKind d) const;
  /// The local artifact a remote substitution falls back to when the
  /// transport dies mid-stream: the CPU artifact for a single task, or a
  /// lazily built (and cached) ChainArtifact for a fused segment.
  Artifact* fallback_for(const Artifact* chosen,
                         const std::vector<std::string>& task_ids);
  /// §4.2 substitution: rewrites the node list in place.
  void substitute(RtGraph& g);
  /// The kAdaptive policy: profiles candidates on a stream prefix.
  void substitute_adaptive(RtGraph& g);
  /// kAdaptive with enable_calibration=false: ranks candidates by the
  /// static cost seeds instead of measuring (cold-start placement).
  void substitute_static_seeded(RtGraph& g);
  void execute(RtGraph& g);
  /// Builds the graph's task objects, wires FIFO wakers and submits
  /// everything to the shared executor (replaces thread-per-task).
  void run_executor(RtGraph& g);
  void run_inline(RtGraph& g);
  /// The lazily created executor shared by every graph this runtime runs.
  std::shared_ptr<Executor> ensure_executor();
  /// Joins, drains FIFO/marshaling observability, rethrows graph errors.
  void finalize_graph(RtGraph& g);
  /// Appends to the decision log and emits a substitution-decision trace
  /// event (`extra_args` carries the losing candidates and their scores).
  void record_substitution(SubstitutionRecord rec, std::string extra_args);
  /// Appends to the re-substitution log, emits decision trace + flight
  /// events, and snapshots the flight recorder if a dump path is set.
  void record_resubstitution(ResubstitutionRecord rec);
  /// Dumps the flight-recorder rings to config_.flight_dump_path (no-op
  /// when the path is empty). Never throws.
  void dump_flight(const std::string& reason) const;
  /// Folds the installed recorder's drop count into trace.dropped_events.
  void sync_trace_drops() const;
  const char* placement_name() const;

  class DeviceRun;  // per-device-node batch driver (cost model + resub)
  friend class DeviceRun;

  // Executor task types, one per node kind (liquid_runtime.cpp). Nested so
  // they reach the runtime's private counters and DeviceRun.
  class NodeTask;
  class SourceTask;
  class SinkTask;
  class FilterTask;
  class DeviceTask;

  CompiledProgram& program_;
  RuntimeConfig config_;
  bc::Interpreter interp_;

  obs::MetricsRegistry metrics_;
  obs::CostModelRegistry cost_models_;
  /// Out-of-process candidates (net::RemoteArtifact proxies). Declared after
  /// metrics_ so proxies (which cache metric pointers via their sessions)
  /// destruct first.
  ArtifactStore remote_store_;
  /// Lazily built CPU fallback chains for fused segments, keyed by segment
  /// id. Guarded by subs_mu_ (built during substitution, single-threaded per
  /// graph, but two graphs may substitute concurrently).
  std::vector<std::unique_ptr<Artifact>> fallback_chains_;
  std::unique_ptr<HotCounters> hot_;  // cached instrument pointers
  /// Shared worker pool (runtime/executor.h), created at the first
  /// executed graph. shared_ptr: running graphs co-own it so a graph
  /// handle outliving the runtime still drains safely.
  mutable std::mutex exec_mu_;
  std::shared_ptr<Executor> executor_;
  mutable std::mutex subs_mu_;
  std::vector<SubstitutionRecord> substitutions_;
  std::vector<ResubstitutionRecord> resubstitutions_;
  /// Graphs whose threads may still be running, registered by start() so
  /// collect_telemetry() can read live FIFO depths. Weak: the graph value
  /// owns the RtGraph; a scrape must never extend a finished graph's life.
  mutable std::mutex graphs_mu_;
  std::vector<std::weak_ptr<RtGraph>> active_graphs_;
  /// Per-graph critical-path attributions. finalize_graph only queues the
  /// gid (attribution is post-mortem analysis and must not tax the run);
  /// refresh_attributions() resolves the queue against the installed
  /// recorder at the first consumer — attributions(), report(), or a
  /// telemetry scrape. One attempt per gid: if its events were dropped,
  /// retrying cannot bring them back.
  void refresh_attributions() const;
  mutable std::mutex attr_mu_;
  mutable std::vector<obs::Attribution> attributions_;
  mutable std::vector<uint64_t> attr_pending_;
  /// Recorder drop count already folded into trace.dropped_events.
  mutable std::atomic<uint64_t> trace_drops_seen_{0};
  mutable RuntimeStats stats_snapshot_;
};

}  // namespace lm::runtime
