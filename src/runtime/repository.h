// On-disk artifact repository (§1).
//
// "The device artifact may either be embedded into the host machine code,
// or it may exist in a repository and identified via a unique identifier
// that is part of the invocation process."
//
// This module persists a compiled program's artifact bundle: one file per
// artifact (OpenCL-C, Verilog, bytecode disassembly) plus a MANIFEST file
// mapping task identifiers to artifacts and signatures. `lmc --emit-dir`
// drives it; tests read bundles back and check the inventory.
#pragma once

#include <string>
#include <vector>

#include "runtime/liquid_compiler.h"

namespace lm::runtime {

struct BundleEntry {
  std::string task_id;
  DeviceKind device = DeviceKind::kCpu;
  std::string filename;   // relative to the bundle directory
  std::string signature;  // "(int, int) -> int arity=2"
};

/// Writes every artifact of `program` into `dir` (created if needed) and a
/// MANIFEST file describing them. Returns the entries written.
/// Throws RuntimeError on I/O failure.
std::vector<BundleEntry> write_artifact_bundle(const CompiledProgram& program,
                                               const std::string& dir);

/// Parses a MANIFEST file previously written by write_artifact_bundle.
std::vector<BundleEntry> read_bundle_manifest(const std::string& dir);

/// The filename an artifact is stored under: task id with path-hostile
/// characters mapped, plus a device-specific extension (.cl/.v/.bc.txt).
std::string bundle_filename(const std::string& task_id, DeviceKind device);

}  // namespace lm::runtime
