// Artifacts and manifests (§3).
//
// "The result of a compilation with Liquid Metal is a collection of
// artifacts for different architectures, each labeled with the particular
// computational node that it implements." Every artifact here implements
// the same contract — consume a batch of stream elements, produce a batch
// of results — so the runtime can swap one for another ("packaged in such a
// way that it can be replaced at runtime with another artifact that is its
// semantic equivalent").
//
// Device artifacts (GPU/FPGA) speak bytes, not heap values: their process()
// runs the full Fig. 3 path — serialize to the wire format, cross the
// native boundary, convert to dense C values, compute, and mirror back.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bytecode/interp.h"
#include "fpga/device.h"
#include "gpu/device.h"
#include "serde/native.h"
#include "serde/wire.h"

namespace lm::obs {
class LatencyHistogram;
}

namespace lm::runtime {

enum class DeviceKind { kCpu, kGpu, kFpga };
const char* to_string(DeviceKind k);

/// The manifest a backend produces alongside each artifact (§3).
struct ArtifactManifest {
  std::string task_id;  // e.g. "Bitflip.flip" or "seg:P.a:P.b"
  DeviceKind device = DeviceKind::kCpu;
  std::vector<lime::TypeRef> param_types;
  lime::TypeRef return_type;
  /// Stream elements consumed per firing (the filter's arity; for fused
  /// segments, the arity of the first stage).
  int arity = 1;
  /// The generated artifact text: OpenCL-C for GPU, Verilog for FPGA,
  /// disassembly for bytecode. Kept for inspection and goldens.
  std::string artifact_text;

  std::string to_string() const;
};

/// Transfer/marshaling statistics a device artifact accumulates. Atomic:
/// an artifact is looked up from the shared store, so two concurrently
/// running graphs (or a graph and the AccelHooks map path) may drive the
/// same instance from different threads.
struct TransferStats {
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> elements_in{0};
  std::atomic<uint64_t> elements_out{0};
  std::atomic<uint64_t> bytes_to_device{0};
  std::atomic<uint64_t> bytes_from_device{0};
};

/// An in-flight asynchronous batch (remote artifacts only): issued with
/// Artifact::process_async, resolved with take_results() once the
/// completion callback has fired. Decoding — and any transport error — is
/// deferred to take_results() so it happens on an executor worker, never
/// on the I/O thread that delivered the reply.
class AsyncBatch {
 public:
  virtual ~AsyncBatch() = default;
  /// Call only after the completion callback fired. Returns the decoded
  /// outputs or rethrows the failure (TransportError, RemoteError, ...).
  virtual std::vector<bc::Value> take_results() = 0;
};

class Artifact {
 public:
  virtual ~Artifact() = default;

  const ArtifactManifest& manifest() const { return manifest_; }

  /// Processes a batch: `inputs` holds n*arity stream elements; returns n
  /// outputs, in order.
  virtual std::vector<bc::Value> process(
      std::span<const bc::Value> inputs) = 0;

  /// True when this artifact can overlap a batch with other work via
  /// process_async (remote proxies backed by the nonblocking poll loop).
  virtual bool supports_async() const { return false; }

  /// Starts a batch without blocking. `on_done` fires exactly once, from
  /// an arbitrary thread, when the result (or failure) is available; the
  /// caller then resolves it with AsyncBatch::take_results(). `inputs`
  /// must stay alive until take_results() returns. Artifacts that report
  /// supports_async() must override this; the default refuses.
  virtual std::unique_ptr<AsyncBatch> process_async(
      std::span<const bc::Value> inputs, std::function<void()> on_done);

  /// True when process() crosses a socket (src/net/ proxies). The runtime
  /// uses this to attach a local fallback artifact at substitution time.
  virtual bool is_remote() const { return false; }

  /// Where the computation runs: "local", or "host:port" for proxies.
  virtual std::string location() const { return "local"; }

  /// The device label this artifact's batches are recorded under in the
  /// cost-model registry. Remote proxies append their endpoint so a remote
  /// GPU and the local GPU keep separate cost histories.
  virtual std::string cost_label() const {
    return to_string(manifest_.device);
  }

  const TransferStats& transfer_stats() const { return transfer_; }

  /// Server-side device-execute latency, populated only by remote proxies
  /// from the telemetry their replies piggyback. The report path merges it
  /// (LatencyHistogram::merge) into the client's PerfReport, so "what the
  /// wire cost" and "what the device cost" stay separable per task.
  /// nullptr for local artifacts and for remote ones with no samples yet.
  virtual const obs::LatencyHistogram* server_histogram() const {
    return nullptr;
  }

 protected:
  explicit Artifact(ArtifactManifest manifest)
      : manifest_(std::move(manifest)) {}

  ArtifactManifest manifest_;
  TransferStats transfer_;
};

/// CPU artifact: direct interpretation, no marshaling (the JVM-side path).
/// Owns a private Interpreter so filter threads never race on one.
class BytecodeArtifact final : public Artifact {
 public:
  BytecodeArtifact(ArtifactManifest manifest, const bc::BytecodeModule& module,
                   int method_index);

  std::vector<bc::Value> process(std::span<const bc::Value> inputs) override;

  /// Single-element convenience used by tests.
  bc::Value apply(std::vector<bc::Value> args);

 private:
  bc::Interpreter interp_;
  int method_index_;
};

/// GPU artifact: kernel program + simulated device, fed through the wire
/// format and native boundary.
class GpuKernelArtifact final : public Artifact {
 public:
  GpuKernelArtifact(ArtifactManifest manifest,
                    std::unique_ptr<gpu::KernelProgram> program,
                    std::shared_ptr<gpu::GpuDevice> device);

  std::vector<bc::Value> process(std::span<const bc::Value> inputs) override;

  const gpu::KernelProgram& program() const { return *program_; }
  gpu::GpuDevice& device() { return *device_; }

  /// Executes a whole map operation (arrays + broadcast scalars) on the
  /// device — the data-parallel fast path behind the AccelHooks (§2.2).
  bc::Value run_map(std::span<const bc::Value> args, uint32_t array_mask);

  /// Tree-reduces an array with this (binary) kernel: log₂(n) rounds of
  /// pairwise launches. The kernel must implement T f(T, T).
  bc::Value run_reduce(const bc::Value& array);

 private:
  std::unique_ptr<gpu::KernelProgram> program_;
  std::shared_ptr<gpu::GpuDevice> device_;
};

/// CPU fallback for a fused segment: pipes each batch through the member
/// tasks' artifacts in graph order. Built by the runtime when a *remote*
/// fused-segment artifact is substituted — the store holds no monolithic
/// CPU artifact under "seg:..." ids, yet remote failure must still be able
/// to fall back to local execution without unfusing the graph mid-run.
class ChainArtifact final : public Artifact {
 public:
  /// `stages` are borrowed from the store (which outlives the runtime).
  ChainArtifact(ArtifactManifest manifest, std::vector<Artifact*> stages);

  std::vector<bc::Value> process(std::span<const bc::Value> inputs) override;

 private:
  std::vector<Artifact*> stages_;
};

/// FPGA artifact: synthesized module streamed through the RTL simulator.
class FpgaModuleArtifact final : public Artifact {
 public:
  FpgaModuleArtifact(ArtifactManifest manifest, fpga::FpgaCompileResult rtl);

  std::vector<bc::Value> process(std::span<const bc::Value> inputs) override;

  fpga::FpgaFilter& filter() { return filter_; }
  uint64_t total_cycles() const {
    return cycles_.load(std::memory_order_relaxed);
  }

 private:
  fpga::FpgaFilter filter_;
  std::atomic<uint64_t> cycles_{0};
};

}  // namespace lm::runtime
