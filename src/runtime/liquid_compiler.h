// The Liquid Metal compiler driver — the full Fig. 2 toolchain.
//
// "Liquid Metal accepts a set of source files and produces artifacts for
// execution. ... The compiler frontend performs shallow optimizations and
// generates [bytecode] for executing the entire program. ... The backend
// consists of architecture-specific device compilers; currently, a GPU
// compiler and an FPGA compiler. ... Most backend compilers are under no
// obligation to compile everything. However, the CPU compiler always
// compiles the entire program."
//
// compile() runs: frontend → bytecode (whole program) → static task-graph
// discovery → GPU backend (fused segment kernels, per-filter kernels, and
// map/reduce kernels) → FPGA backend (per-filter modules) → artifact store
// population with manifests.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/cost_estimate.h"
#include "analysis/deadlock.h"
#include "bytecode/module.h"
#include "cache/artifact_cache.h"
#include "gpu/device.h"
#include "ir/task_graph.h"
#include "lime/ast.h"
#include "runtime/store.h"
#include "util/diagnostics.h"

namespace lm::runtime {

struct CompileOptions {
  bool enable_gpu = true;
  bool enable_fpga = true;
  bool fpga_pipelined = false;
  gpu::GpuDeviceConfig gpu_config;
  /// Wire pre-compiled native kernels (the "vendor toolflow output") from
  /// the global registry into the GPU device for matching task ids.
  bool use_native_kernels = true;
  /// FIFO capacity the deadlock verifier (LM210–LM214) proves against;
  /// <= 0 → the runtime default. Should match RuntimeConfig::fifo_capacity
  /// when the caller overrides that.
  int64_t fifo_capacity = 0;
  /// Persistent artifact cache (off by default). In rw mode the compiler
  /// serves backend artifacts from the cache and stores fresh compiles;
  /// ro serves hits without ever writing.
  cache::CacheConfig cache;
  /// Remote compile-service hook, consulted after a local cache miss.
  /// net::fetch_artifact wires this to an lmdev endpoint — the runtime
  /// itself never depends on net. Returns the serialized payload for
  /// (key, backend), or std::nullopt to fall back to a local compile.
  std::function<std::optional<std::vector<uint8_t>>(
      uint64_t key, const std::string& backend, const std::string& task_id)>
      remote_fetch;
};

/// One structured record per backend suitability decision, for `lmc
/// --analyze` reporting (LM401 = GPU exclusion, LM402 = FPGA exclusion,
/// LM403 = effect-verifier demotion).
struct SuitabilityFinding {
  std::string code;     // LM401 / LM402 / LM403
  DeviceKind device = DeviceKind::kCpu;
  std::string task_id;
  SourceLoc loc;        // offending construct, or the method declaration
  std::string reason;
};

struct CompiledProgram {
  std::unique_ptr<lime::Program> ast;
  std::unique_ptr<bc::BytecodeModule> bytecode;
  ir::ProgramTaskGraphs graphs;
  ArtifactStore store;
  std::shared_ptr<gpu::GpuDevice> gpu_device;
  DiagnosticEngine diags;
  /// One line per backend decision: artifacts produced and exclusions with
  /// their reasons (§3's compile-time reporting).
  std::vector<std::string> backend_log;
  /// Structured per-device suitability decisions (LM4xx notes).
  std::vector<SuitabilityFinding> suitability;
  /// Tasks the effect verifier proved unsafe to relocate: no GPU/FPGA
  /// artifacts are built for them, so placement naturally falls back to
  /// bytecode (§4.2's substitution finds only the CPU artifact).
  std::unordered_set<std::string> demoted_tasks;
  /// Per-graph FIFO deadlock verdicts and minimal safe capacities
  /// (LM212's structured form, surfaced by `lmc --analyze=json`).
  std::vector<analysis::GraphCapacityReport> capacity_reports;
  /// Static per-(task, device) cost estimates; the runtime seeds its
  /// CostModelRegistry with these so cold-start placement can rank
  /// candidates before the first calibration batch.
  analysis::StaticCostModel static_costs;
  /// Content key of every cacheable artifact ("backend:task_id" → key),
  /// populated whenever caching or a remote fetcher is active. The device
  /// server exports these so compile-service clients address artifacts by
  /// key without shipping IR.
  std::map<std::string, uint64_t> artifact_keys;
  /// The cache consulted during this compile (null when off) — tools read
  /// hit/miss metrics and register telemetry collectors from it.
  std::shared_ptr<cache::ArtifactCache> cache;

  bool ok() const { return ast != nullptr && !diags.has_errors(); }
};

std::unique_ptr<CompiledProgram> compile(const std::string& source,
                                         const CompileOptions& options = {});

}  // namespace lm::runtime
