// Event-driven executor: a fixed worker pool pulling batch-granular task
// steps from a ready queue (ROADMAP item 2 — the StarPU-shaped runtime
// core that replaces thread-per-task scheduling).
//
// Tasks are cooperative state machines: step() runs one bounded slice of
// work using only *nonblocking* operations and reports whether the task
// can continue (kReady), must wait for an external event (kBlocked), or is
// finished (kDone). Readiness events — a FIFO becoming nonempty, a remote
// reply arriving — call wake(), which re-queues a parked task. N programs
// × M tasks therefore multiplex over a constant number of OS threads, and
// an in-flight RPC parks a continuation instead of a thread.
//
// The lost-wakeup problem (task decides to park while a wake races in) is
// solved with a small per-task state machine:
//
//   kIdle ──wake──▶ kQueued ──dequeue──▶ kRunning ──step()═kBlocked──▶ kIdle
//                                          │  ▲
//                                   wake   ▼  │ step()═kReady
//                                       kNotified ─▶ kQueued (re-enqueued)
//
// wake() is idempotent and level-triggered: on a parked task it enqueues;
// on a running task it sets kNotified so the worker re-enqueues instead of
// parking. A waker may therefore fire spuriously or concurrently with the
// task's own step — the protocol absorbs both. The only obligation on the
// task is to return kBlocked *only after* a failed nonblocking attempt on
// the resource it waits for (the attempt happens under the resource's
// lock, so the resource's next state change fires the waker).
//
// Two scheduling modes share the task protocol:
//
//   * threaded (default): `workers` OS threads, each with a local ready
//     deque plus one shared injection queue; idle workers steal from
//     siblings. Wakes from a worker land on its local queue (locality);
//     wakes from outside (completion callbacks, submitting thread) land on
//     the injection queue.
//
//   * deterministic (seed != 0): no OS threads at all. Ready tasks
//     accumulate in one ordered list; drive() repeatedly picks the next
//     task with a seeded SplitMix64 and steps it to quiescence. The same
//     seed replays the same interleaving, turning schedule-dependent bugs
//     into reproducible unit tests. A stall with no external work pending
//     is reported as a deadlock instead of hanging.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/rng.h"

namespace lm::runtime {

class Executor;

/// A schedulable unit of work. Owned by its graph; the executor holds raw
/// pointers, which stay valid because a graph is only destroyed after all
/// of its tasks retired (the graph's completion latch).
class ExecTask {
 public:
  enum class StepResult {
    kReady,    // made progress, wants another step (re-enqueued)
    kBlocked,  // must wait for a wake() from a readiness event
    kDone,     // finished; never stepped again
  };

  virtual ~ExecTask() = default;

  /// One bounded slice of work. Must not block on locks held across
  /// steps or on I/O — use try-operations and return kBlocked.
  virtual StepResult step() = 0;

  /// Called exactly once, after the kDone step, as the executor's last
  /// touch of the task. Typically decrements the graph's completion latch.
  virtual void retired() {}

  /// The executor this task was submitted to (nullptr before submit()).
  /// Tasks use it to wake themselves from completion callbacks and to
  /// bracket external (off-executor) work.
  Executor* executor() const { return exec_.load(std::memory_order_acquire); }

  /// Why a task is about to return kBlocked. Feeds the park annotation on
  /// the executor's "exec" trace spans, which is what lets the attribution
  /// engine redirect blocked time to the peer task that caused it.
  enum class BlockReason : uint8_t { kNone, kPop, kPush, kRpc };

  /// Gives the task a trace identity: `label` names its span row (e.g.
  /// "filter:f0"), `gid` is the owning graph's run id, `node` its position
  /// in the pipeline. Tasks without a label (raw executor tests) emit no
  /// spans and pay only two clock reads per dispatch. Call before submit().
  void set_trace_info(std::string label, uint64_t gid, int node) {
    trace_label_ = std::move(label);
    gid_ = gid;
    node_ = node;
  }
  const std::string& trace_label() const { return trace_label_; }
  uint64_t trace_gid() const { return gid_; }
  int trace_node() const { return node_; }

  /// Declares why step() is about to return kBlocked. Reset by the
  /// executor before every step; only the last call before parking counts.
  void set_block_reason(BlockReason r) { block_reason_ = r; }

 private:
  friend class Executor;
  enum State : int { kIdle, kQueued, kRunning, kNotified, kDoneState };
  std::atomic<int> state_{kIdle};
  std::atomic<Executor*> exec_{nullptr};

  // Trace identity (empty label = untraced).
  std::string trace_label_;
  uint64_t gid_ = 0;
  int node_ = -1;

  // Dispatch bookkeeping. Not atomic: every field is written either by the
  // single waker that won the kIdle→kQueued CAS (enq_tp_) or by the worker
  // currently holding the task, and read at the *next* dispatch — the
  // state-machine CAS chain plus the queue mutex provide happens-before.
  BlockReason block_reason_ = BlockReason::kNone;   // set inside step()
  BlockReason parked_reason_ = BlockReason::kNone;  // reason of last park
  std::chrono::steady_clock::time_point enq_tp_{};
  std::chrono::steady_clock::time_point last_step_end_tp_{};
  // Coalesced "exec" span accumulator: consecutive dispatches with no park
  // in between merge into one span (see Executor::run_task).
  bool have_run_ = false;
  BlockReason run_park_reason_ = BlockReason::kNone;
  std::chrono::steady_clock::time_point run_park0_{};
  std::chrono::steady_clock::time_point run_enq_{};
  std::chrono::steady_clock::time_point run_start_{};
  uint64_t run_steps_ = 0;
  int64_t run_gap_ns_ = 0;
};

class Executor {
 public:
  struct Options {
    /// Worker threads; 0 → std::thread::hardware_concurrency().
    size_t workers = 0;
    /// Nonzero → deterministic virtual-scheduler mode: no OS threads,
    /// drive() serializes all task steps with this seed.
    uint64_t seed = 0;
    /// Optional instrumentation sink (steps/parks/wakeups/steals counters).
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit Executor(const Options& opts);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  bool deterministic() const { return seed_ != 0; }
  size_t workers() const { return n_workers_; }
  uint64_t seed() const { return seed_; }

  /// First schedule of a task: records the owning executor, then wakes it.
  void submit(ExecTask* t);

  /// Readiness event: enqueue a parked task, or flag a running one for
  /// re-enqueue. Idempotent; safe from any thread, including completion
  /// callbacks and the task's own step().
  void wake(ExecTask* t);

  /// Brackets work in flight *outside* the executor (an async RPC whose
  /// completion will wake a task). Deterministic drive() distinguishes
  /// "everything parked but a reply is coming" (wait) from "everything
  /// parked and nothing can wake us" (deadlock) with this counter. The
  /// matching note_external_end() must be called *after* the wake it
  /// delivers, so the counter covers the whole wait window.
  void note_external_begin();
  void note_external_end();

  /// Deterministic mode only: steps seeded-random ready tasks until
  /// `done()` returns true. Throws RuntimeError when every task is parked,
  /// nothing external is pending and `done()` still fails — a deadlock
  /// that would otherwise hang forever. Reentrant calls are not allowed
  /// (single-threaded by construction).
  void drive(const std::function<bool()>& done);

  struct Stats {
    uint64_t steps = 0;
    uint64_t wakeups = 0;
    uint64_t parks = 0;
    uint64_t steals = 0;
    /// Total enqueue→dispatch latency across all dispatches.
    uint64_t queue_wait_ns = 0;
  };
  Stats stats() const;

  /// Appends per-worker ready-queue depth gauges (plus the shared
  /// injection queue as worker="inject") for the telemetry plane.
  void collect_telemetry(std::vector<obs::GaugeSample>& out) const;

 private:
  void worker_loop(size_t idx);
  /// mu_ must be held. Returns the next task for worker `idx`: local
  /// queue first, then the injection queue, then steal from a sibling.
  ExecTask* dequeue_locked(size_t idx);
  /// Routes a ready task to the calling worker's local queue (when the
  /// caller is one of our workers) or the injection queue.
  void enqueue(ExecTask* t);
  /// Runs one step of a dequeued task and applies the state protocol.
  void run_task(ExecTask* t);
  /// Emits the accumulated coalesced "exec" span for a labeled task.
  void flush_exec_span(ExecTask* t);

  const uint64_t seed_;
  const size_t n_workers_;
  obs::MetricsRegistry::Counter* c_steps_ = nullptr;
  obs::MetricsRegistry::Counter* c_wakeups_ = nullptr;
  obs::MetricsRegistry::Counter* c_parks_ = nullptr;
  obs::MetricsRegistry::Counter* c_steals_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  /// Shared injection queue (all modes; the only queue in deterministic
  /// mode, where insertion order + seeded picks define the schedule).
  std::deque<ExecTask*> inject_;
  /// Per-worker local deques (threaded mode).
  std::vector<std::deque<ExecTask*>> local_;
  std::vector<std::thread> threads_;
  size_t external_pending_ = 0;
  SplitMix64 rng_;

  // Fallback tallies when no metrics registry was supplied.
  std::atomic<uint64_t> n_steps_{0}, n_wakeups_{0}, n_parks_{0}, n_steals_{0};
  std::atomic<uint64_t> queue_wait_ns_{0};
};

}  // namespace lm::runtime
