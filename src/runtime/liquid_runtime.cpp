#include "runtime/liquid_runtime.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "runtime/fifo.h"
#include "util/error.h"

namespace lm::runtime {

using bc::Value;
using obs::JsonArgs;
using obs::TraceRecorder;
using obs::TraceSpan;

// ---------------------------------------------------------------------------
// Runtime graph representation (§4.1)
// ---------------------------------------------------------------------------

struct LiquidRuntime::RtNode {
  enum class Kind { kSource, kSink, kFilter, kDevice };
  Kind kind = Kind::kFilter;

  // Source / sink.
  Value array;
  int rate = 1;

  // Filter (bytecode-scheduled task).
  int method_index = -1;
  std::string task_id;
  bool relocated = false;
  int arity = 1;

  // Device node (after substitution).
  Artifact* artifact = nullptr;
  std::string label;
};

struct LiquidRuntime::RtGraph {
  std::vector<RtNode> nodes;
  bool substituted = false;
  bool started = false;
  bool executed = false;

  std::vector<std::shared_ptr<ValueFifo>> fifos;
  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr error;

  /// start() timestamp when a recorder was installed (for the graph.run
  /// span emitted at finish()); negative when untraced.
  double trace_start_us = -1;

  /// A graph may be start()ed and never finish()ed (the paper's start() is
  /// fire-and-forget); joining here keeps thread teardown safe when the
  /// last handle drops.
  ~RtGraph() {
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }

  void note_error(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!error) error = e;
    // Unblock everyone.
    for (auto& f : fifos) {
      f->close();
    }
  }
};

/// Cached instrument pointers: one registry lookup at construction, one
/// relaxed atomic RMW per increment afterwards.
struct LiquidRuntime::HotCounters {
  obs::MetricsRegistry::Counter* graphs_executed;
  obs::MetricsRegistry::Counter* elements_streamed;
  obs::MetricsRegistry::Counter* maps_accelerated;
  obs::MetricsRegistry::Counter* maps_interpreted;
  obs::MetricsRegistry::Counter* reduces_accelerated;
  obs::MetricsRegistry::Counter* reduces_interpreted;
  obs::MetricsRegistry::Counter* candidates_profiled;
  obs::MetricsRegistry::Counter* substitutions;
  obs::MetricsRegistry::Counter* bytes_to_device;
  obs::MetricsRegistry::Counter* bytes_from_device;
  obs::MetricsRegistry::Counter* device_batches;
  obs::MetricsRegistry::MaxGauge* fifo_high_water;

  explicit HotCounters(obs::MetricsRegistry& m)
      : graphs_executed(&m.counter("runtime.graphs_executed")),
        elements_streamed(&m.counter("runtime.elements_streamed")),
        maps_accelerated(&m.counter("runtime.maps_accelerated")),
        maps_interpreted(&m.counter("runtime.maps_interpreted")),
        reduces_accelerated(&m.counter("runtime.reduces_accelerated")),
        reduces_interpreted(&m.counter("runtime.reduces_interpreted")),
        candidates_profiled(&m.counter("runtime.candidates_profiled")),
        substitutions(&m.counter("runtime.substitutions")),
        bytes_to_device(&m.counter("marshal.bytes_to_device")),
        bytes_from_device(&m.counter("marshal.bytes_from_device")),
        device_batches(&m.counter("marshal.device_batches")),
        fifo_high_water(&m.max_gauge("fifo.high_water")) {}
};

std::shared_ptr<LiquidRuntime::RtGraph> LiquidRuntime::graph_of(
    const Value& v) {
  auto p = std::static_pointer_cast<RtGraph>(v.as_opaque());
  LM_CHECK_MSG(p != nullptr, "value is not a task graph");
  return p;
}

namespace {
Value wrap(std::shared_ptr<LiquidRuntime::RtGraph> g);
}  // namespace

// ---------------------------------------------------------------------------
// Construction and interpreter wiring
// ---------------------------------------------------------------------------

LiquidRuntime::LiquidRuntime(CompiledProgram& program, RuntimeConfig config)
    : program_(program), config_(config), interp_(*program.bytecode) {
  LM_CHECK_MSG(program.bytecode != nullptr,
               "runtime needs a compiled program");
  hot_ = std::make_unique<HotCounters>(metrics_);
  interp_.set_task_host(this);
  interp_.set_accel_hooks(this);
}

LiquidRuntime::~LiquidRuntime() = default;

Value LiquidRuntime::call(const std::string& qualified_name,
                          std::vector<Value> args) {
  return interp_.call(qualified_name, std::move(args));
}

const RuntimeStats& LiquidRuntime::stats() const {
  RuntimeStats s;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    s.substitutions = substitutions_;
  }
  s.graphs_executed = hot_->graphs_executed->value();
  s.elements_streamed = hot_->elements_streamed->value();
  s.maps_accelerated = hot_->maps_accelerated->value();
  s.maps_interpreted = hot_->maps_interpreted->value();
  s.reduces_accelerated = hot_->reduces_accelerated->value();
  s.reduces_interpreted = hot_->reduces_interpreted->value();
  s.candidates_profiled = hot_->candidates_profiled->value();
  s.bytes_to_device = hot_->bytes_to_device->value();
  s.bytes_from_device = hot_->bytes_from_device->value();
  s.fifo_high_water = hot_->fifo_high_water->value();
  stats_snapshot_ = std::move(s);
  return stats_snapshot_;
}

void LiquidRuntime::reset_stats() {
  metrics_.reset();
  std::lock_guard<std::mutex> lock(subs_mu_);
  substitutions_.clear();
}

const char* LiquidRuntime::placement_name() const {
  switch (config_.placement) {
    case Placement::kAuto: return "auto";
    case Placement::kCpuOnly: return "cpu";
    case Placement::kGpuOnly: return "gpu";
    case Placement::kFpgaOnly: return "fpga";
    case Placement::kAdaptive: return "adaptive";
  }
  return "?";
}

void LiquidRuntime::record_substitution(SubstitutionRecord rec,
                                        std::string extra_args) {
  hot_->substitutions->add();
  if (TraceRecorder* r = TraceRecorder::current()) {
    std::string body = JsonArgs()
                           .add("tasks", rec.task_ids)
                           .add("device", to_string(rec.device))
                           .add("fused", rec.fused)
                           .add("policy", placement_name())
                           .str();
    if (!extra_args.empty()) {
      body += ',';
      body += extra_args;
    }
    r->instant("decision", "substitution", std::move(body));
  }
  std::lock_guard<std::mutex> lock(subs_mu_);
  substitutions_.push_back(std::move(rec));
}

// ---------------------------------------------------------------------------
// TaskGraphHost: graph construction (§4.1)
// ---------------------------------------------------------------------------

namespace {
Value wrap(std::shared_ptr<LiquidRuntime::RtGraph> g) {
  return Value::opaque(std::static_pointer_cast<void>(std::move(g)));
}
}  // namespace

Value LiquidRuntime::make_source(Value array, int rate) {
  auto g = std::make_shared<RtGraph>();
  RtNode n;
  n.kind = RtNode::Kind::kSource;
  n.array = std::move(array);
  n.rate = rate;
  g->nodes.push_back(std::move(n));
  return wrap(std::move(g));
}

Value LiquidRuntime::make_sink(Value array) {
  auto g = std::make_shared<RtGraph>();
  RtNode n;
  n.kind = RtNode::Kind::kSink;
  n.array = std::move(array);
  g->nodes.push_back(std::move(n));
  return wrap(std::move(g));
}

Value LiquidRuntime::make_task(const std::string& task_id, int method_index,
                               bool relocated) {
  auto g = std::make_shared<RtGraph>();
  RtNode n;
  n.kind = RtNode::Kind::kFilter;
  n.method_index = method_index;
  n.task_id = task_id;
  n.relocated = relocated;
  n.arity = program_.bytecode->methods[static_cast<size_t>(method_index)]
                .num_params;
  g->nodes.push_back(std::move(n));
  return wrap(std::move(g));
}

Value LiquidRuntime::connect(Value lhs, Value rhs) {
  auto a = graph_of(lhs);
  auto b = graph_of(rhs);
  auto g = std::make_shared<RtGraph>();
  g->nodes = a->nodes;
  g->nodes.insert(g->nodes.end(), b->nodes.begin(), b->nodes.end());
  return wrap(std::move(g));
}

// ---------------------------------------------------------------------------
// Task substitution (§4.2)
// ---------------------------------------------------------------------------

void LiquidRuntime::substitute(RtGraph& g) {
  if (g.substituted) return;
  g.substituted = true;
  TraceSpan span("runtime", "substitute");
  if (config_.placement == Placement::kAdaptive) {
    substitute_adaptive(g);
    return;
  }
  if (config_.placement == Placement::kCpuOnly) {
    for (const auto& n : g.nodes) {
      if (n.kind == RtNode::Kind::kFilter && n.relocated) {
        record_substitution({n.task_id, DeviceKind::kCpu, /*fused=*/false},
                            {});
      }
    }
    return;
  }

  std::vector<DeviceKind> preference;
  switch (config_.placement) {
    case Placement::kAuto:
      preference = {DeviceKind::kGpu, DeviceKind::kFpga};
      break;
    case Placement::kGpuOnly:
      preference = {DeviceKind::kGpu};
      break;
    case Placement::kFpgaOnly:
      preference = {DeviceKind::kFpga};
      break;
    case Placement::kCpuOnly:
    case Placement::kAdaptive:
      return;  // handled above
  }

  std::vector<RtNode> out;
  size_t i = 0;
  while (i < g.nodes.size()) {
    const RtNode& n = g.nodes[i];
    if (n.kind != RtNode::Kind::kFilter || !n.relocated) {
      out.push_back(n);
      ++i;
      continue;
    }
    // Maximal run of consecutive relocated filters [i, j).
    size_t j = i;
    std::vector<std::string> ids;
    while (j < g.nodes.size() && g.nodes[j].kind == RtNode::Kind::kFilter &&
           g.nodes[j].relocated) {
      ids.push_back(g.nodes[j].task_id);
      ++j;
    }
    // Prefer the largest substitution (§4.2): the whole fused segment.
    Artifact* seg = nullptr;
    if (ids.size() > 1 && config_.allow_fusion) {
      for (DeviceKind d : preference) {
        seg = program_.store.find(ArtifactStore::segment_id(ids), d);
        if (seg) break;
      }
    }
    if (seg) {
      RtNode dev;
      dev.kind = RtNode::Kind::kDevice;
      dev.artifact = seg;
      dev.arity = seg->manifest().arity;
      dev.label = seg->manifest().task_id;
      out.push_back(std::move(dev));
      std::string joined;
      for (size_t k = 0; k < ids.size(); ++k) {
        if (k) joined += "+";
        joined += ids[k];
      }
      record_substitution({joined, seg->manifest().device, /*fused=*/true},
                          {});
      i = j;
      continue;
    }
    // Per-filter substitution, preferring accelerators over bytecode.
    for (size_t k = i; k < j; ++k) {
      const RtNode& f = g.nodes[k];
      Artifact* chosen = nullptr;
      for (DeviceKind d : preference) {
        chosen = program_.store.find(f.task_id, d);
        if (chosen) break;
      }
      if (chosen) {
        RtNode dev;
        dev.kind = RtNode::Kind::kDevice;
        dev.artifact = chosen;
        dev.arity = chosen->manifest().arity;
        dev.label = chosen->manifest().task_id;
        out.push_back(std::move(dev));
        record_substitution(
            {f.task_id, chosen->manifest().device, /*fused=*/false}, {});
      } else {
        out.push_back(f);
        record_substitution({f.task_id, DeviceKind::kCpu, /*fused=*/false},
                            {});
      }
    }
    i = j;
  }
  g.nodes = std::move(out);
}

void LiquidRuntime::substitute_adaptive(RtGraph& g) {
  // Calibration prefix: the first few elements of the *actual* stream, so
  // profiling sees representative data (runtime introspection, §7).
  const bc::ArrayRef& src = g.nodes.front().array.as_array();
  size_t k_cal = std::min(config_.calibration_elements, src->size());
  std::vector<Value> stream;
  stream.reserve(k_cal);
  for (size_t i = 0; i < k_cal; ++i) stream.push_back(bc::array_get(*src, i));

  // Candidate scores are rendered into the decision event so a trace shows
  // not just the winner but every loser and by how much.
  const bool tracing = TraceRecorder::current() != nullptr;

  auto profile = [&](Artifact* a,
                     const std::vector<Value>& in) -> std::pair<double,
                                                               std::vector<Value>> {
    size_t arity = static_cast<size_t>(a->manifest().arity);
    size_t usable = (in.size() / arity) * arity;
    std::span<const Value> batch(in.data(), usable);
    hot_->candidates_profiled->add();
    if (usable == 0) return {0.0, {}};
    // Warm once, then time the better of two runs.
    std::vector<Value> out = a->process(batch);
    double best = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      out = a->process(batch);
      auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return {best, std::move(out)};
  };

  /// One "{"tasks":...,"device":...,"time_us":...}" entry per candidate.
  auto cand_entry = [](Artifact* a, double seconds) {
    return "{" +
           JsonArgs()
               .add("tasks", a->manifest().task_id)
               .add("device", to_string(a->manifest().device))
               .add("time_us", seconds * 1e6)
               .str() +
           "}";
  };
  auto join_entries = [](const std::vector<std::string>& entries) {
    std::string out = "[";
    for (size_t k = 0; k < entries.size(); ++k) {
      if (k) out += ',';
      out += entries[k];
    }
    out += ']';
    return out;
  };

  // Candidate ordering breaks ties toward accelerators (paper default).
  auto candidates_for = [&](const std::string& id) {
    std::vector<Artifact*> out;
    for (DeviceKind d :
         {DeviceKind::kGpu, DeviceKind::kFpga, DeviceKind::kCpu}) {
      if (Artifact* a = program_.store.find(id, d)) out.push_back(a);
    }
    return out;
  };

  std::vector<RtNode> rewritten;
  rewritten.push_back(g.nodes.front());

  size_t i = 1;
  while (i + 1 < g.nodes.size()) {
    const RtNode& n = g.nodes[i];
    if (n.kind != RtNode::Kind::kFilter || !n.relocated) {
      // Advance the calibration stream through the untouched filter.
      if (n.kind == RtNode::Kind::kFilter && !stream.empty()) {
        size_t arity = static_cast<size_t>(n.arity);
        std::vector<Value> next;
        std::vector<Value> args(arity);
        for (size_t e = 0; e + arity <= stream.size(); e += arity) {
          for (size_t j = 0; j < arity; ++j) args[j] = stream[e + j];
          next.push_back(interp_.call(n.method_index, args));
        }
        stream = std::move(next);
      }
      rewritten.push_back(n);
      ++i;
      continue;
    }

    // Maximal relocated run [i, j).
    size_t j = i;
    std::vector<std::string> ids;
    while (j < g.nodes.size() && g.nodes[j].kind == RtNode::Kind::kFilter &&
           g.nodes[j].relocated) {
      ids.push_back(g.nodes[j].task_id);
      ++j;
    }

    // Plan A: the fused segment on its best device.
    Artifact* fused_best = nullptr;
    double fused_time = 1e300;
    std::vector<Value> fused_out;
    std::vector<std::string> fused_cands;
    if (ids.size() > 1 && config_.allow_fusion) {
      for (Artifact* cand : candidates_for(ArtifactStore::segment_id(ids))) {
        auto [t, out] = profile(cand, stream);
        if (tracing) fused_cands.push_back(cand_entry(cand, t));
        if (t < fused_time) {
          fused_time = t;
          fused_best = cand;
          fused_out = std::move(out);
        }
      }
    }

    // Plan B: each filter independently on its best device.
    double chain_time = 0;
    std::vector<Artifact*> chain_choice;
    std::vector<std::vector<std::string>> chain_cands;
    std::vector<Value> chain_stream = stream;
    for (size_t k = i; k < j; ++k) {
      Artifact* best = nullptr;
      double best_t = 1e300;
      std::vector<Value> best_out;
      std::vector<std::string> cands;
      for (Artifact* cand : candidates_for(g.nodes[k].task_id)) {
        auto [t, out] = profile(cand, chain_stream);
        if (tracing) cands.push_back(cand_entry(cand, t));
        if (t < best_t) {
          best_t = t;
          best = cand;
          best_out = std::move(out);
        }
      }
      LM_CHECK_MSG(best != nullptr,
                   "no artifact at all for " << g.nodes[k].task_id);
      chain_time += best_t;
      chain_choice.push_back(best);
      chain_cands.push_back(std::move(cands));
      chain_stream = std::move(best_out);
    }

    if (fused_best && fused_time <= chain_time) {
      RtNode dev;
      dev.kind = RtNode::Kind::kDevice;
      dev.artifact = fused_best;
      dev.arity = fused_best->manifest().arity;
      dev.label = fused_best->manifest().task_id;
      rewritten.push_back(std::move(dev));
      std::string joined;
      for (size_t k = 0; k < ids.size(); ++k) {
        if (k) joined += "+";
        joined += ids[k];
      }
      std::string extra;
      if (tracing) {
        // The losing per-filter plan rides along so the trace explains
        // *why* fusion won.
        std::vector<std::string> all = fused_cands;
        for (auto& cs : chain_cands) {
          all.insert(all.end(), cs.begin(), cs.end());
        }
        extra = JsonArgs()
                    .add("fused_time_us", fused_time * 1e6)
                    .add("chain_time_us", chain_time * 1e6)
                    .add_raw("candidates", join_entries(all))
                    .str();
      }
      record_substitution(
          {joined, fused_best->manifest().device, /*fused=*/true},
          std::move(extra));
      stream = std::move(fused_out);
    } else {
      for (size_t k = 0; k < chain_choice.size(); ++k) {
        Artifact* a = chain_choice[k];
        if (a->manifest().device == DeviceKind::kCpu) {
          rewritten.push_back(g.nodes[i + k]);  // keep as interpreter filter
        } else {
          RtNode dev;
          dev.kind = RtNode::Kind::kDevice;
          dev.artifact = a;
          dev.arity = a->manifest().arity;
          dev.label = a->manifest().task_id;
          rewritten.push_back(std::move(dev));
        }
        std::string extra;
        if (tracing) {
          JsonArgs e;
          if (!fused_cands.empty()) {
            e.add("fused_time_us", fused_time * 1e6);
          }
          e.add_raw("candidates", join_entries(chain_cands[k]));
          extra = std::move(e).str();
        }
        record_substitution(
            {g.nodes[i + k].task_id, a->manifest().device, /*fused=*/false},
            std::move(extra));
      }
      stream = std::move(chain_stream);
    }
    i = j;
  }
  rewritten.push_back(g.nodes.back());
  g.nodes = std::move(rewritten);
}

// ---------------------------------------------------------------------------
// Execution (§4.1: thread per task, FIFO connections)
// ---------------------------------------------------------------------------

namespace {

void validate_shape(const std::vector<LiquidRuntime::RtNode>& nodes) {
  using Kind = LiquidRuntime::RtNode::Kind;
  if (nodes.size() < 2 || nodes.front().kind != Kind::kSource ||
      nodes.back().kind != Kind::kSink) {
    throw RuntimeError(
        "task graph must be source => filters... => sink to execute");
  }
  for (size_t i = 1; i + 1 < nodes.size(); ++i) {
    if (nodes[i].kind != Kind::kFilter && nodes[i].kind != Kind::kDevice) {
      throw RuntimeError("interior task-graph nodes must be filters");
    }
  }
}

}  // namespace

void LiquidRuntime::start(Value graph) {
  auto g = graph_of(graph);
  if (g->started || g->executed) return;
  substitute(*g);
  validate_shape(g->nodes);
  if (!config_.use_threads) {
    // Inline mode has no asynchrony; run to completion now.
    execute(*g);
    return;
  }
  if (TraceRecorder* rec = TraceRecorder::current()) {
    g->trace_start_us = rec->now_us();
  }
  run_threaded(*g);  // spawns threads; finish() joins
  g->started = true;
}

void LiquidRuntime::finish(Value graph) {
  auto g = graph_of(graph);
  if (g->executed) return;
  if (!g->started) {
    substitute(*g);
    validate_shape(g->nodes);
    execute(*g);
    return;
  }
  // Started earlier: join.
  finalize_graph(*g);
}

void LiquidRuntime::execute(RtGraph& g) {
  if (config_.use_threads) {
    if (TraceRecorder* rec = TraceRecorder::current()) {
      g.trace_start_us = rec->now_us();
    }
    run_threaded(g);
    finalize_graph(g);
  } else {
    TraceSpan span("runtime", "graph.run");
    run_inline(g);
    g.executed = true;
    hot_->graphs_executed->add();
    if (g.error) std::rethrow_exception(g.error);
  }
}

/// Joins worker threads, harvests per-graph observability (FIFO high-water
/// marks), and rethrows the first task error.
void LiquidRuntime::finalize_graph(RtGraph& g) {
  for (auto& t : g.threads) t.join();
  g.threads.clear();
  g.executed = true;
  hot_->graphs_executed->add();
  hot_->elements_streamed->add(g.nodes.front().array.as_array()->size());

  TraceRecorder* rec = TraceRecorder::current();
  for (size_t i = 0; i < g.fifos.size(); ++i) {
    uint64_t hw = g.fifos[i]->high_water();
    hot_->fifo_high_water->observe(hw);
    if (rec) {
      rec->counter("fifo", "fifo." + std::to_string(i) + ".high_water",
                   static_cast<double>(hw));
    }
  }
  if (rec && g.trace_start_us >= 0) {
    rec->complete("runtime", "graph.run", g.trace_start_us,
                  rec->now_us() - g.trace_start_us,
                  JsonArgs()
                      .add("nodes", static_cast<uint64_t>(g.nodes.size()))
                      .str());
  }
  if (g.error) std::rethrow_exception(g.error);
}

void LiquidRuntime::run_inline(RtGraph& g) {
  TraceRecorder* rec = TraceRecorder::current();
  const bc::ArrayRef& src = g.nodes.front().array.as_array();
  std::vector<Value> stream;
  stream.reserve(src->size());
  for (size_t i = 0; i < src->size(); ++i) {
    stream.push_back(bc::array_get(*src, i));
  }
  hot_->elements_streamed->add(stream.size());

  for (size_t ni = 1; ni + 1 < g.nodes.size(); ++ni) {
    RtNode& n = g.nodes[ni];
    if (n.kind == RtNode::Kind::kDevice) {
      TraceSpan span;
      if (rec) span.begin(rec, "task", "device:" + n.label);
      const TransferStats& ts = n.artifact->transfer_stats();
      uint64_t to0 = ts.bytes_to_device, from0 = ts.bytes_from_device;
      size_t k = static_cast<size_t>(n.arity);
      size_t usable = (stream.size() / k) * k;
      stream = n.artifact->process(
          std::span<const Value>(stream.data(), usable));
      hot_->device_batches->add();
      hot_->bytes_to_device->add(ts.bytes_to_device - to0);
      hot_->bytes_from_device->add(ts.bytes_from_device - from0);
      if (span.active()) {
        span.set_args(JsonArgs()
                          .add("elements", static_cast<uint64_t>(usable))
                          .add("bytes_to_device", ts.bytes_to_device - to0)
                          .add("bytes_from_device",
                               ts.bytes_from_device - from0)
                          .str());
      }
    } else {
      TraceSpan span;
      if (rec) span.begin(rec, "task", "filter:" + n.task_id);
      size_t k = static_cast<size_t>(n.arity);
      std::vector<Value> next;
      next.reserve(stream.size() / k + 1);
      std::vector<Value> args(k);
      for (size_t i = 0; i + k <= stream.size(); i += k) {
        for (size_t j = 0; j < k; ++j) args[j] = stream[i + j];
        next.push_back(interp_.call(n.method_index, args));
      }
      if (span.active()) {
        span.set_args(JsonArgs()
                          .add("fires", static_cast<uint64_t>(next.size()))
                          .str());
      }
      stream = std::move(next);
    }
  }

  const bc::ArrayRef& dst = g.nodes.back().array.as_array();
  if (stream.size() > dst->size()) {
    throw RuntimeError("sink array too small: produced " +
                       std::to_string(stream.size()) + " elements into " +
                       std::to_string(dst->size()));
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    bc::array_set(*dst, i, stream[i]);
  }
}

void LiquidRuntime::run_threaded(RtGraph& g) {
  size_t n_nodes = g.nodes.size();
  g.fifos.clear();
  for (size_t i = 0; i + 1 < n_nodes; ++i) {
    g.fifos.push_back(std::make_shared<ValueFifo>(config_.fifo_capacity));
  }
  auto* graph = &g;
  // Captured once: the recorder must stay installed for the graph's
  // lifetime (install/uninstall around whole runs, not mid-stream).
  TraceRecorder* rec = TraceRecorder::current();

  for (size_t ni = 0; ni < n_nodes; ++ni) {
    RtNode* node = &g.nodes[ni];
    std::shared_ptr<ValueFifo> in = ni > 0 ? g.fifos[ni - 1] : nullptr;
    std::shared_ptr<ValueFifo> out = ni + 1 < n_nodes ? g.fifos[ni] : nullptr;

    switch (node->kind) {
      case RtNode::Kind::kSource:
        g.threads.emplace_back([node, out, graph, rec] {
          try {
            TraceSpan span;
            if (rec) span.begin(rec, "task", "source");
            const bc::ArrayRef& src = node->array.as_array();
            uint64_t pushed = 0;
            for (size_t i = 0; i < src->size(); ++i) {
              if (!out->push(bc::array_get(*src, i))) break;  // closed
              ++pushed;
            }
            out->finish();
            if (span.active()) {
              span.set_args(JsonArgs().add("elements", pushed).str());
            }
          } catch (...) {
            graph->note_error(std::current_exception());
            out->finish();
          }
        });
        break;

      case RtNode::Kind::kSink:
        g.threads.emplace_back([node, in, graph, rec] {
          try {
            TraceSpan span;
            if (rec) span.begin(rec, "task", "sink");
            const bc::ArrayRef& dst = node->array.as_array();
            size_t i = 0;
            while (auto v = in->pop()) {
              if (i >= dst->size()) {
                throw RuntimeError("sink array too small");
              }
              bc::array_set(*dst, i++, *v);
            }
            if (span.active()) {
              span.set_args(
                  JsonArgs().add("elements", static_cast<uint64_t>(i)).str());
            }
          } catch (...) {
            graph->note_error(std::current_exception());
          }
        });
        break;

      case RtNode::Kind::kFilter:
        g.threads.emplace_back([this, node, in, out, graph, rec] {
          try {
            TraceSpan span;
            if (rec) span.begin(rec, "task", "filter:" + node->task_id);
            // A private interpreter per task thread: the module is shared
            // read-only, so this is race-free.
            bc::Interpreter local(*program_.bytecode);
            size_t k = static_cast<size_t>(node->arity);
            std::vector<Value> args(k);
            uint64_t fires = 0;
            for (;;) {
              size_t got = 0;
              for (; got < k; ++got) {
                auto v = in->pop();
                if (!v) break;
                args[got] = std::move(*v);
              }
              if (got < k) break;  // stream ended (partial firing dropped)
              if (!out->push(local.call(node->method_index, args))) break;
              ++fires;
            }
            out->finish();
            if (span.active()) {
              span.set_args(JsonArgs().add("fires", fires).str());
            }
          } catch (...) {
            graph->note_error(std::current_exception());
            out->finish();
          }
        });
        break;

      case RtNode::Kind::kDevice:
        g.threads.emplace_back([this, node, in, out, graph, rec] {
          try {
            TraceSpan span;
            if (rec) span.begin(rec, "task", "device:" + node->label);
            const TransferStats& tstats = node->artifact->transfer_stats();
            uint64_t to0 = tstats.bytes_to_device;
            uint64_t from0 = tstats.bytes_from_device;
            uint64_t batches = 0, elements = 0;
            size_t k = static_cast<size_t>(node->arity);
            std::vector<Value> pending;
            for (;;) {
              auto batch =
                  in->pop_batch(config_.device_batch * k - pending.size());
              if (batch.empty()) break;  // end of stream
              pending.insert(pending.end(),
                             std::make_move_iterator(batch.begin()),
                             std::make_move_iterator(batch.end()));
              size_t usable = (pending.size() / k) * k;
              if (usable == 0) continue;
              std::vector<Value> results;
              {
                // The "drain" span: one device firing over a batch.
                TraceSpan drain;
                if (rec) {
                  drain.begin(rec, "task", "drain:" + node->label);
                  drain.set_args(
                      JsonArgs()
                          .add("elements", static_cast<uint64_t>(usable))
                          .str());
                }
                results = node->artifact->process(
                    std::span<const Value>(pending.data(), usable));
              }
              ++batches;
              elements += usable;
              pending.erase(pending.begin(),
                            pending.begin() + static_cast<long>(usable));
              bool closed = false;
              for (auto& r : results) {
                if (!out->push(std::move(r))) {
                  closed = true;
                  break;
                }
              }
              if (closed) break;
            }
            out->finish();
            hot_->device_batches->add(batches);
            hot_->bytes_to_device->add(tstats.bytes_to_device - to0);
            hot_->bytes_from_device->add(tstats.bytes_from_device - from0);
            if (span.active()) {
              span.set_args(
                  JsonArgs()
                      .add("batches", batches)
                      .add("elements", elements)
                      .add("bytes_to_device", tstats.bytes_to_device - to0)
                      .add("bytes_from_device",
                           tstats.bytes_from_device - from0)
                      .str());
            }
          } catch (...) {
            graph->note_error(std::current_exception());
            out->finish();
          }
        });
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// AccelHooks: data-parallel operator offload (§2.2)
// ---------------------------------------------------------------------------

bool LiquidRuntime::try_map(const std::string& task_id,
                            std::span<const Value> args, uint32_t array_mask,
                            Value* out) {
  if (!config_.accelerate_maps || config_.placement == Placement::kCpuOnly ||
      config_.placement == Placement::kFpgaOnly) {
    hot_->maps_interpreted->add();
    return false;
  }
  Artifact* a = program_.store.find(task_id, DeviceKind::kGpu);
  if (!a) {
    hot_->maps_interpreted->add();
    return false;
  }
  *out = static_cast<GpuKernelArtifact*>(a)->run_map(args, array_mask);
  hot_->maps_accelerated->add();
  return true;
}

bool LiquidRuntime::try_reduce(const std::string& task_id, const Value& array,
                               Value* out) {
  if (!config_.accelerate_maps || config_.placement == Placement::kCpuOnly ||
      config_.placement == Placement::kFpgaOnly) {
    hot_->reduces_interpreted->add();
    return false;
  }
  Artifact* a = program_.store.find(task_id, DeviceKind::kGpu);
  if (!a || array.as_array()->size() == 0) {
    hot_->reduces_interpreted->add();
    return false;
  }
  *out = static_cast<GpuKernelArtifact*>(a)->run_reduce(array);
  hot_->reduces_accelerated->add();
  return true;
}

}  // namespace lm::runtime
