#include "runtime/liquid_runtime.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>

#include "obs/flight_recorder.h"
#include "runtime/executor.h"
#include "runtime/fifo.h"
#include "util/error.h"

namespace lm::runtime {

using bc::Value;
using obs::JsonArgs;
using obs::TraceRecorder;
using obs::TraceSpan;

// ---------------------------------------------------------------------------
// Runtime graph representation (§4.1)
// ---------------------------------------------------------------------------

struct LiquidRuntime::RtNode {
  enum class Kind { kSource, kSink, kFilter, kDevice };
  Kind kind = Kind::kFilter;

  // Source / sink.
  Value array;
  int rate = 1;

  // Filter (bytecode-scheduled task).
  int method_index = -1;
  std::string task_id;
  bool relocated = false;
  int arity = 1;

  // Device node (after substitution).
  Artifact* artifact = nullptr;
  std::string label;
  /// Remote artifacts only: the local artifact this node swaps to when the
  /// transport dies mid-stream (graceful degradation, DESIGN.md §9).
  Artifact* fallback = nullptr;

  /// kAdaptive + enable_resubstitution: every calibrated candidate for this
  /// node (including the chosen one), so the drift check can swap mid-run.
  struct ResubAlternative {
    Artifact* artifact = nullptr;
    double us_per_elem = 0;  // calibration score
  };
  std::vector<ResubAlternative> resub_alts;
};

struct LiquidRuntime::RtGraph {
  std::vector<RtNode> nodes;
  bool substituted = false;
  bool started = false;
  bool executed = false;

  /// Process-unique run id, assigned when the graph reaches the executor.
  /// Stamped into every span the run emits (graph.run, exec, drains, fifo
  /// edges) so the attribution engine can separate concurrent graphs.
  uint64_t gid = 0;

  std::vector<std::shared_ptr<ValueFifo>> fifos;
  /// The graph's executor tasks (one per node). Owned here; the executor
  /// and the FIFO wakers hold raw pointers, valid until destruction —
  /// which wait_done() gates on every task having retired.
  std::vector<std::unique_ptr<ExecTask>> tasks;
  /// Co-owned worker pool: a graph handle that outlives the runtime can
  /// still drain (the pool dies with its last graph).
  std::shared_ptr<Executor> executor;
  std::mutex err_mu;
  std::exception_ptr error;

  /// Completion latch: counts unretired tasks. The executor calls
  /// task_retired() as its last touch of each task, so live == 0 means no
  /// worker will ever dereference this graph again.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t live = 0;

  /// start() timestamp when a recorder was installed (for the graph.run
  /// span emitted at finish()); negative when untraced.
  double trace_start_us = -1;

  /// A graph may be start()ed and never finish()ed (the paper's start() is
  /// fire-and-forget); draining here keeps teardown safe when the last
  /// handle drops — outputs are complete once the handle is gone.
  ~RtGraph() {
    if (!tasks.empty() && !executed) {
      try {
        wait_done();
      } catch (...) {
        // A deterministic-mode deadlock verdict with nowhere to report:
        // unwedge whatever is left and wait for the latch directly.
        for (auto& f : fifos) f->close();
        std::unique_lock<std::mutex> lock(done_mu);
        done_cv.wait(lock, [&] { return live == 0; });
      }
    }
  }

  bool done() {
    std::lock_guard<std::mutex> lock(done_mu);
    return live == 0;
  }

  void task_retired() {
    // Notify *under* the lock: the waiter in wait_done() may destroy this
    // graph the moment it observes live == 0, and it cannot return from
    // wait() until this thread releases done_mu — which happens only after
    // the broadcast has finished touching done_cv.
    std::lock_guard<std::mutex> lock(done_mu);
    --live;
    done_cv.notify_all();
  }

  /// Blocks until every task retired. Deterministic executors have no
  /// worker threads, so this is also where their steps actually run.
  void wait_done() {
    if (executor && executor->deterministic()) {
      executor->drive([this] { return done(); });
    } else {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&] { return live == 0; });
    }
  }

  void note_error(std::exception_ptr e) {
    // The fault lands in the flight recorder before anything else: even if
    // teardown hangs, the black box already holds the story.
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      obs::FlightRecorder::instance().record("fault", "task-error", ex.what());
    } catch (...) {
      obs::FlightRecorder::instance().record("fault", "task-error",
                                             "unknown exception");
    }
    std::lock_guard<std::mutex> lock(err_mu);
    if (!error) error = e;
    // Unblock everyone.
    for (auto& f : fifos) {
      f->close();
    }
  }
};

/// Cached instrument pointers: one registry lookup at construction, one
/// relaxed atomic RMW per increment afterwards.
struct LiquidRuntime::HotCounters {
  obs::MetricsRegistry::Counter* graphs_executed;
  obs::MetricsRegistry::Counter* elements_streamed;
  obs::MetricsRegistry::Counter* maps_accelerated;
  obs::MetricsRegistry::Counter* maps_interpreted;
  obs::MetricsRegistry::Counter* reduces_accelerated;
  obs::MetricsRegistry::Counter* reduces_interpreted;
  obs::MetricsRegistry::Counter* candidates_profiled;
  obs::MetricsRegistry::Counter* static_cost_seeds;
  obs::MetricsRegistry::Counter* placements_static;
  obs::MetricsRegistry::Counter* placements_measured;
  obs::MetricsRegistry::Counter* substitutions;
  obs::MetricsRegistry::Counter* resubstitutions;
  obs::MetricsRegistry::Counter* trace_dropped;
  obs::MetricsRegistry::Counter* flight_dumps;
  obs::MetricsRegistry::Counter* bytes_to_device;
  obs::MetricsRegistry::Counter* bytes_from_device;
  obs::MetricsRegistry::Counter* device_batches;
  obs::MetricsRegistry::MaxGauge* fifo_high_water;

  explicit HotCounters(obs::MetricsRegistry& m)
      : graphs_executed(&m.counter("runtime.graphs_executed")),
        elements_streamed(&m.counter("runtime.elements_streamed")),
        maps_accelerated(&m.counter("runtime.maps_accelerated")),
        maps_interpreted(&m.counter("runtime.maps_interpreted")),
        reduces_accelerated(&m.counter("runtime.reduces_accelerated")),
        reduces_interpreted(&m.counter("runtime.reduces_interpreted")),
        candidates_profiled(&m.counter("runtime.candidates_profiled")),
        static_cost_seeds(&m.counter("analysis.static_cost_seeds")),
        placements_static(&m.counter("analysis.placements_static")),
        placements_measured(&m.counter("analysis.placements_measured")),
        substitutions(&m.counter("runtime.substitutions")),
        resubstitutions(&m.counter("runtime.resubstitutions")),
        trace_dropped(&m.counter("trace.dropped_events")),
        flight_dumps(&m.counter("flight.dumps")),
        bytes_to_device(&m.counter("marshal.bytes_to_device")),
        bytes_from_device(&m.counter("marshal.bytes_from_device")),
        device_batches(&m.counter("marshal.device_batches")),
        fifo_high_water(&m.max_gauge("fifo.high_water")) {}
};

std::shared_ptr<LiquidRuntime::RtGraph> LiquidRuntime::graph_of(
    const Value& v) {
  auto p = std::static_pointer_cast<RtGraph>(v.as_opaque());
  LM_CHECK_MSG(p != nullptr, "value is not a task graph");
  return p;
}

namespace {
Value wrap(std::shared_ptr<LiquidRuntime::RtGraph> g);

/// The analyzer keys StaticCostModel rows by short device names ("cpu",
/// "gpu", "fpga"); artifacts record batches under cost_label() strings
/// ("cpu/bytecode", ...). This maps a runtime device to the analyzer key.
const char* static_device_key(DeviceKind d) {
  switch (d) {
    case DeviceKind::kCpu: return "cpu";
    case DeviceKind::kGpu: return "gpu";
    case DeviceKind::kFpga: return "fpga";
  }
  return "?";
}
}  // namespace

// ---------------------------------------------------------------------------
// Construction and interpreter wiring
// ---------------------------------------------------------------------------

LiquidRuntime::LiquidRuntime(CompiledProgram& program, RuntimeConfig config)
    : program_(program), config_(config), interp_(*program.bytecode) {
  LM_CHECK_MSG(program.bytecode != nullptr,
               "runtime needs a compiled program");
  hot_ = std::make_unique<HotCounters>(metrics_);
  interp_.set_task_host(this);
  interp_.set_accel_hooks(this);
  // Seed the cost models with the compiler's static estimates so a cold
  // registry can already rank candidates (source=static); the first real
  // batch flips each entry to source=measured.
  for (const analysis::StaticCostEstimate& e :
       program_.static_costs.estimates) {
    for (DeviceKind d : {DeviceKind::kCpu, DeviceKind::kGpu,
                         DeviceKind::kFpga}) {
      if (e.device != static_device_key(d)) continue;
      cost_models_.entry(e.task_id, to_string(d)).seed_static(e.us_per_elem);
      hot_->static_cost_seeds->add();
    }
  }
  if (config_.flight_ring_capacity != 0 &&
      config_.flight_ring_capacity !=
          obs::FlightRecorder::instance().ring_capacity()) {
    obs::FlightRecorder::instance().set_ring_capacity(
        config_.flight_ring_capacity);
  }
}

LiquidRuntime::~LiquidRuntime() = default;

void LiquidRuntime::add_remote_artifact(std::unique_ptr<Artifact> artifact) {
  LM_CHECK(artifact != nullptr);
  LM_CHECK_MSG(artifact->is_remote(),
               "add_remote_artifact is for net:: proxies only");
  remote_store_.add(std::move(artifact));
}

Artifact* LiquidRuntime::find_candidate(const std::string& id,
                                        DeviceKind d) const {
  Artifact* local = program_.store.find(id, d);
  Artifact* remote = remote_store_.find(id, d);
  // Bytecode across the wire is strictly worse than bytecode here; servers
  // don't list CPU artifacts, but guard anyway.
  if (!remote || d == DeviceKind::kCpu) return local;
  if (config_.prefer_remote || !local) return remote;
  return local;
}

Artifact* LiquidRuntime::fallback_for(
    const Artifact* chosen, const std::vector<std::string>& task_ids) {
  if (!chosen || !chosen->is_remote() || task_ids.empty()) return nullptr;
  if (task_ids.size() == 1) {
    return program_.store.find(task_ids.front(), DeviceKind::kCpu);
  }
  // Fused segment: the store holds no monolithic CPU artifact under
  // "seg:..." ids, so chain the members' CPU artifacts (cached per segment
  // — two graphs may substitute the same pipeline).
  std::string seg = ArtifactStore::segment_id(task_ids);
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (const auto& c : fallback_chains_) {
    if (c->manifest().task_id == seg) return c.get();
  }
  std::vector<Artifact*> stages;
  for (const std::string& id : task_ids) {
    Artifact* s = program_.store.find(id, DeviceKind::kCpu);
    if (!s) return nullptr;  // no net to fall into; run remote without one
    stages.push_back(s);
  }
  ArtifactManifest m;
  m.task_id = seg;
  m.device = DeviceKind::kCpu;
  m.param_types = stages.front()->manifest().param_types;
  m.return_type = stages.back()->manifest().return_type;
  m.arity = stages.front()->manifest().arity;
  m.artifact_text = "// cpu fallback chain for " + seg;
  fallback_chains_.push_back(
      std::make_unique<ChainArtifact>(std::move(m), std::move(stages)));
  return fallback_chains_.back().get();
}

Value LiquidRuntime::call(const std::string& qualified_name,
                          std::vector<Value> args) {
  return interp_.call(qualified_name, std::move(args));
}

void LiquidRuntime::sync_trace_drops() const {
  if (TraceRecorder* r = TraceRecorder::current()) {
    uint64_t cur = r->dropped_events();
    uint64_t seen = trace_drops_seen_.exchange(cur, std::memory_order_relaxed);
    if (cur > seen) hot_->trace_dropped->add(cur - seen);
  }
}

const RuntimeStats& LiquidRuntime::stats() const {
  sync_trace_drops();
  RuntimeStats s;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    s.substitutions = substitutions_;
    s.resubstitutions = resubstitutions_;
  }
  s.graphs_executed = hot_->graphs_executed->value();
  s.elements_streamed = hot_->elements_streamed->value();
  s.maps_accelerated = hot_->maps_accelerated->value();
  s.maps_interpreted = hot_->maps_interpreted->value();
  s.reduces_accelerated = hot_->reduces_accelerated->value();
  s.reduces_interpreted = hot_->reduces_interpreted->value();
  s.candidates_profiled = hot_->candidates_profiled->value();
  s.bytes_to_device = hot_->bytes_to_device->value();
  s.bytes_from_device = hot_->bytes_from_device->value();
  s.fifo_high_water = hot_->fifo_high_water->value();
  s.trace_dropped_events = hot_->trace_dropped->value();
  stats_snapshot_ = std::move(s);
  return stats_snapshot_;
}

void LiquidRuntime::reset_stats() {
  metrics_.reset();
  std::lock_guard<std::mutex> lock(subs_mu_);
  substitutions_.clear();
  resubstitutions_.clear();
}

obs::PerfReport LiquidRuntime::report() const {
  sync_trace_drops();
  obs::PerfReport rep;
  rep.policy = placement_name();
  for (const obs::CostModelRegistry::Row& row : cost_models_.rows()) {
    const obs::CostEntry& e = *row.entry;
    if (e.batches() == 0) continue;
    obs::PerfReport::TaskRow r;
    r.task = row.task;
    r.device = row.device;
    r.batches = e.batches();
    r.elements = e.elements();
    const obs::LatencyHistogram& h = e.batch_latency();
    r.p50_us = h.percentile_us(50);
    r.p90_us = h.percentile_us(90);
    r.p99_us = h.percentile_us(99);
    r.max_us = static_cast<double>(h.max_ns()) / 1e3;
    r.mean_us = h.mean_ns() / 1e3;
    r.ewma_us_per_elem = e.ewma_us_per_elem();
    r.static_us_per_elem = e.static_us_per_elem();
    r.cost_source = e.source();
    r.bytes_to_device = e.bytes_to_device();
    r.bytes_from_device = e.bytes_from_device();
    rep.tasks.push_back(std::move(r));
  }
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (const SubstitutionRecord& s : substitutions_) {
      rep.substitutions.push_back(
          {s.task_ids, to_string(s.device), s.fused, s.source});
    }
    for (const ResubstitutionRecord& r : resubstitutions_) {
      rep.resubstitutions.push_back(
          {r.task_ids, to_string(r.from), to_string(r.to), r.live_us_per_elem,
           r.calibrated_us_per_elem, r.before_p50_us, r.before_p99_us,
           r.at_batch});
    }
  }
  // Remote proxies piggyback the server's device-execute latency on their
  // replies (net::ReplyTelemetry); fold those histograms in as their own
  // ":server" rows so wire time (the proxy's cost-model row above) and
  // device time stay separable per task.
  for (const Artifact* a : remote_store_.artifacts()) {
    const obs::LatencyHistogram* sh = a->server_histogram();
    if (!sh || sh->count() == 0) continue;
    obs::LatencyHistogram merged;
    merged.merge(*sh);
    obs::PerfReport::TaskRow r;
    r.task = a->manifest().task_id;
    r.device = a->cost_label() + ":server";
    r.batches = merged.count();
    r.p50_us = merged.percentile_us(50);
    r.p90_us = merged.percentile_us(90);
    r.p99_us = merged.percentile_us(99);
    r.max_us = static_cast<double>(merged.max_ns()) / 1e3;
    r.mean_us = merged.mean_ns() / 1e3;
    rep.tasks.push_back(std::move(r));
  }
  rep.metrics = metrics_.snapshot();
  rep.dropped_trace_events = hot_->trace_dropped->value();
  refresh_attributions();
  {
    std::lock_guard<std::mutex> lock(attr_mu_);
    rep.attributions = attributions_;
  }
  return rep;
}

std::shared_ptr<Executor> LiquidRuntime::ensure_executor() {
  std::lock_guard<std::mutex> lock(exec_mu_);
  if (!executor_) {
    Executor::Options o;
    o.workers = config_.worker_threads;
    o.seed = config_.scheduler_seed;
    o.metrics = &metrics_;
    executor_ = std::make_shared<Executor>(o);
  }
  return executor_;
}

void LiquidRuntime::collect_telemetry(
    std::vector<obs::GaugeSample>& out) const {
  sync_trace_drops();
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    if (executor_) executor_->collect_telemetry(out);
  }
  {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    size_t gi = 0;
    for (const auto& w : active_graphs_) {
      std::shared_ptr<RtGraph> g = w.lock();
      if (!g) continue;
      for (size_t qi = 0; qi < g->fifos.size(); ++qi) {
        std::vector<std::pair<std::string, std::string>> labels = {
            {"graph", std::to_string(gi)}, {"queue", std::to_string(qi)}};
        out.emplace_back("fifo.depth",
                         static_cast<double>(g->fifos[qi]->size()), labels);
        out.emplace_back("fifo.capacity",
                         static_cast<double>(g->fifos[qi]->capacity()),
                         std::move(labels));
      }
      ++gi;
    }
  }
  for (const obs::CostModelRegistry::Row& row : cost_models_.rows()) {
    std::vector<std::pair<std::string, std::string>> labels = {
        {"task", row.task}, {"device", row.device}};
    const obs::CostEntry& e = *row.entry;
    out.emplace_back("task.in_flight", static_cast<double>(e.in_flight()),
                     labels);
    out.emplace_back("task.batches", static_cast<double>(e.batches()),
                     labels);
    out.emplace_back("task.elements", static_cast<double>(e.elements()),
                     labels);
    out.emplace_back("task.ewma_us_per_elem", e.ewma_us_per_elem(),
                     std::move(labels));
  }
  // Attribution gauges. attr.analyzed_graphs is exported unconditionally
  // (0 before any analysis) so lmtop --check can assert the series exists
  // even when the scrape races the first graph; the per-category and wall
  // gauges describe the most recently analyzed graph. The scrape is a
  // consumer: graphs queued since the last one are analyzed here, on the
  // exporter thread, not on the workload's.
  refresh_attributions();
  {
    std::lock_guard<std::mutex> lock(attr_mu_);
    out.emplace_back("attr.analyzed_graphs",
                     static_cast<double>(attributions_.size()),
                     std::vector<std::pair<std::string, std::string>>{});
    if (!attributions_.empty()) {
      const obs::Attribution& a = attributions_.back();
      out.emplace_back("attr.wall_us", a.wall_us,
                       std::vector<std::pair<std::string, std::string>>{});
      out.emplace_back("attr.coverage", a.coverage(),
                       std::vector<std::pair<std::string, std::string>>{});
      for (const obs::Attribution::Category& c : a.categories) {
        out.emplace_back("attr.category_us", c.us,
                         std::vector<std::pair<std::string, std::string>>{
                             {"category", c.name}});
      }
    }
  }
}

void LiquidRuntime::refresh_attributions() const {
  std::lock_guard<std::mutex> lock(attr_mu_);
  if (attr_pending_.empty()) return;
  obs::TraceRecorder* rec = obs::TraceRecorder::current();
  if (rec == nullptr) return;  // recorder gone; keep the queue for later
  std::vector<uint64_t> pending = std::move(attr_pending_);
  attr_pending_.clear();
  std::vector<obs::Attribution> atts = obs::attribute_trace(rec->events());
  // One attempt per gid: a gid the trace cannot resolve (events dropped)
  // is abandoned rather than retried — the events will not come back.
  for (uint64_t gid : pending) {
    for (obs::Attribution& a : atts) {
      if (a.gid != gid || a.wall_us <= 0) continue;
      attributions_.push_back(std::move(a));
      break;
    }
  }
}

std::vector<obs::Attribution> LiquidRuntime::attributions() const {
  refresh_attributions();
  std::lock_guard<std::mutex> lock(attr_mu_);
  return attributions_;
}

void LiquidRuntime::dump_flight(const std::string& reason) const {
  if (config_.flight_dump_path.empty()) return;
  if (obs::FlightRecorder::instance().dump_to_file(config_.flight_dump_path,
                                                   reason)) {
    hot_->flight_dumps->add();
  }
}

const char* LiquidRuntime::placement_name() const {
  switch (config_.placement) {
    case Placement::kAuto: return "auto";
    case Placement::kCpuOnly: return "cpu";
    case Placement::kGpuOnly: return "gpu";
    case Placement::kFpgaOnly: return "fpga";
    case Placement::kAdaptive: return "adaptive";
  }
  return "?";
}

void LiquidRuntime::record_substitution(SubstitutionRecord rec,
                                        std::string extra_args) {
  hot_->substitutions->add();
  if (rec.source == "static") {
    hot_->placements_static->add();
  } else if (rec.source == "measured") {
    hot_->placements_measured->add();
  }
  obs::FlightRecorder::instance().record("decision", "substitution",
                                         rec.task_ids);
  if (TraceRecorder* r = TraceRecorder::current()) {
    JsonArgs args;
    args.add("tasks", rec.task_ids)
        .add("device", to_string(rec.device))
        .add("fused", rec.fused)
        .add("policy", placement_name());
    if (rec.remote) {
      args.add("remote", true).add("endpoint", rec.endpoint);
    }
    if (config_.placement == Placement::kAdaptive) {
      args.add("calibrated", rec.calibrated);
      if (rec.score_us_per_elem >= 0) {
        args.add("score_us_per_elem", rec.score_us_per_elem);
      }
    }
    if (!rec.source.empty()) args.add("source", rec.source);
    std::string body = std::move(args).str();
    if (!extra_args.empty()) {
      body += ',';
      body += extra_args;
    }
    r->instant("decision", "substitution", std::move(body));
  }
  std::lock_guard<std::mutex> lock(subs_mu_);
  substitutions_.push_back(std::move(rec));
}

void LiquidRuntime::record_resubstitution(ResubstitutionRecord rec) {
  hot_->resubstitutions->add();
  obs::FlightRecorder::instance().record(
      "decision", "resubstitution", rec.task_ids, /*dur_us=*/-1.0,
      rec.at_batch, static_cast<uint64_t>(rec.live_us_per_elem * 1000.0));
  if (TraceRecorder* r = TraceRecorder::current()) {
    r->instant("decision", "resubstitution",
               JsonArgs()
                   .add("tasks", rec.task_ids)
                   .add("reason", rec.reason)
                   .add("from", to_string(rec.from))
                   .add("to", to_string(rec.to))
                   .add("live_us_per_elem", rec.live_us_per_elem)
                   .add("calibrated_us_per_elem", rec.calibrated_us_per_elem)
                   .add("before_p50_us", rec.before_p50_us)
                   .add("before_p99_us", rec.before_p99_us)
                   .add("at_batch", rec.at_batch)
                   .str());
  }
  // The swap is a "something changed mid-run" moment worth a black-box
  // snapshot: it captures the drain history that triggered the decision.
  dump_flight("resubstitution: " + rec.task_ids);
  std::lock_guard<std::mutex> lock(subs_mu_);
  resubstitutions_.push_back(std::move(rec));
}

// ---------------------------------------------------------------------------
// TaskGraphHost: graph construction (§4.1)
// ---------------------------------------------------------------------------

namespace {
Value wrap(std::shared_ptr<LiquidRuntime::RtGraph> g) {
  return Value::opaque(std::static_pointer_cast<void>(std::move(g)));
}
}  // namespace

Value LiquidRuntime::make_source(Value array, int rate) {
  auto g = std::make_shared<RtGraph>();
  RtNode n;
  n.kind = RtNode::Kind::kSource;
  n.array = std::move(array);
  n.rate = rate;
  g->nodes.push_back(std::move(n));
  return wrap(std::move(g));
}

Value LiquidRuntime::make_sink(Value array) {
  auto g = std::make_shared<RtGraph>();
  RtNode n;
  n.kind = RtNode::Kind::kSink;
  n.array = std::move(array);
  g->nodes.push_back(std::move(n));
  return wrap(std::move(g));
}

Value LiquidRuntime::make_task(const std::string& task_id, int method_index,
                               bool relocated) {
  auto g = std::make_shared<RtGraph>();
  RtNode n;
  n.kind = RtNode::Kind::kFilter;
  n.method_index = method_index;
  n.task_id = task_id;
  n.relocated = relocated;
  n.arity = program_.bytecode->methods[static_cast<size_t>(method_index)]
                .num_params;
  g->nodes.push_back(std::move(n));
  return wrap(std::move(g));
}

Value LiquidRuntime::connect(Value lhs, Value rhs) {
  auto a = graph_of(lhs);
  auto b = graph_of(rhs);
  auto g = std::make_shared<RtGraph>();
  g->nodes = a->nodes;
  g->nodes.insert(g->nodes.end(), b->nodes.begin(), b->nodes.end());
  return wrap(std::move(g));
}

// ---------------------------------------------------------------------------
// Task substitution (§4.2)
// ---------------------------------------------------------------------------

void LiquidRuntime::substitute(RtGraph& g) {
  if (g.substituted) return;
  g.substituted = true;
  TraceSpan span("runtime", "substitute");
  if (config_.placement == Placement::kAdaptive) {
    substitute_adaptive(g);
    return;
  }
  if (config_.placement == Placement::kCpuOnly) {
    for (const auto& n : g.nodes) {
      if (n.kind == RtNode::Kind::kFilter && n.relocated) {
        record_substitution({n.task_id, DeviceKind::kCpu, /*fused=*/false},
                            {});
      }
    }
    return;
  }

  std::vector<DeviceKind> preference;
  switch (config_.placement) {
    case Placement::kAuto:
      preference = {DeviceKind::kGpu, DeviceKind::kFpga};
      break;
    case Placement::kGpuOnly:
      preference = {DeviceKind::kGpu};
      break;
    case Placement::kFpgaOnly:
      preference = {DeviceKind::kFpga};
      break;
    case Placement::kCpuOnly:
    case Placement::kAdaptive:
      return;  // handled above
  }

  std::vector<RtNode> out;
  size_t i = 0;
  while (i < g.nodes.size()) {
    const RtNode& n = g.nodes[i];
    if (n.kind != RtNode::Kind::kFilter || !n.relocated) {
      out.push_back(n);
      ++i;
      continue;
    }
    // Maximal run of consecutive relocated filters [i, j).
    size_t j = i;
    std::vector<std::string> ids;
    while (j < g.nodes.size() && g.nodes[j].kind == RtNode::Kind::kFilter &&
           g.nodes[j].relocated) {
      ids.push_back(g.nodes[j].task_id);
      ++j;
    }
    // Prefer the largest substitution (§4.2): the whole fused segment.
    Artifact* seg = nullptr;
    if (ids.size() > 1 && config_.allow_fusion) {
      for (DeviceKind d : preference) {
        seg = find_candidate(ArtifactStore::segment_id(ids), d);
        if (seg) break;
      }
    }
    if (seg) {
      RtNode dev;
      dev.kind = RtNode::Kind::kDevice;
      dev.artifact = seg;
      dev.arity = seg->manifest().arity;
      dev.label = seg->manifest().task_id;
      dev.fallback = fallback_for(seg, ids);
      out.push_back(std::move(dev));
      std::string joined;
      for (size_t k = 0; k < ids.size(); ++k) {
        if (k) joined += "+";
        joined += ids[k];
      }
      SubstitutionRecord rec{joined, seg->manifest().device, /*fused=*/true};
      rec.remote = seg->is_remote();
      if (rec.remote) rec.endpoint = seg->location();
      record_substitution(std::move(rec), {});
      i = j;
      continue;
    }
    // Per-filter substitution, preferring accelerators over bytecode.
    for (size_t k = i; k < j; ++k) {
      const RtNode& f = g.nodes[k];
      Artifact* chosen = nullptr;
      for (DeviceKind d : preference) {
        chosen = find_candidate(f.task_id, d);
        if (chosen) break;
      }
      if (chosen) {
        RtNode dev;
        dev.kind = RtNode::Kind::kDevice;
        dev.artifact = chosen;
        dev.arity = chosen->manifest().arity;
        dev.label = chosen->manifest().task_id;
        dev.fallback = fallback_for(chosen, {f.task_id});
        out.push_back(std::move(dev));
        SubstitutionRecord rec{f.task_id, chosen->manifest().device,
                               /*fused=*/false};
        rec.remote = chosen->is_remote();
        if (rec.remote) rec.endpoint = chosen->location();
        record_substitution(std::move(rec), {});
      } else {
        out.push_back(f);
        record_substitution({f.task_id, DeviceKind::kCpu, /*fused=*/false},
                            {});
      }
    }
    i = j;
  }
  g.nodes = std::move(out);
}

void LiquidRuntime::substitute_adaptive(RtGraph& g) {
  if (!config_.enable_calibration) {
    substitute_static_seeded(g);
    return;
  }
  // Calibration prefix: the first few elements of the *actual* stream, so
  // profiling sees representative data (runtime introspection, §7).
  const bc::ArrayRef& src = g.nodes.front().array.as_array();
  size_t k_cal = std::min(config_.calibration_elements, src->size());
  std::vector<Value> stream;
  stream.reserve(k_cal);
  for (size_t i = 0; i < k_cal; ++i) stream.push_back(bc::array_get(*src, i));

  // Candidate scores are rendered into the decision event so a trace shows
  // not just the winner but every loser and by how much.
  const bool tracing = TraceRecorder::current() != nullptr;

  /// A candidate's calibration result. `eligible` is false when the prefix
  /// could not feed the artifact even once (usable == 0): such a candidate
  /// carries no measurement and must never win on its (absent) score.
  struct Scored {
    Artifact* artifact = nullptr;
    double seconds = 0;
    double us_per_elem = 0;
    bool eligible = false;
  };

  auto profile = [&](Artifact* a, const std::vector<Value>& in,
                     std::vector<Value>* out) -> Scored {
    size_t arity = static_cast<size_t>(a->manifest().arity);
    size_t usable = (in.size() / arity) * arity;
    if (usable == 0) {
      // Regression guard: a zero time here used to make an un-runnable
      // candidate look infinitely fast and beat every real measurement.
      return {a, 0, 0, false};
    }
    std::span<const Value> batch(in.data(), usable);
    hot_->candidates_profiled->add();
    std::vector<Value> result;
    double best = 1e300;
    try {
      // Warm once, then time the better of two runs.
      result = a->process(batch);
      for (int rep = 0; rep < 2; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        result = a->process(batch);
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
      }
    } catch (const TransportError&) {
      // A remote candidate whose endpoint died during calibration simply
      // drops out of the race; the run proceeds with whoever answered.
      return {a, 0, 0, false};
    }
    *out = std::move(result);
    return {a, best, best * 1e6 / static_cast<double>(usable), true};
  };

  /// One "{"tasks":...,"device":...,"time_us":...}" entry per candidate;
  /// uncalibratable candidates show "eligible":false instead of a time.
  auto cand_entry = [](const Scored& s) {
    JsonArgs j;
    j.add("tasks", s.artifact->manifest().task_id)
        .add("device", to_string(s.artifact->manifest().device));
    if (s.artifact->is_remote()) j.add("endpoint", s.artifact->location());
    if (s.eligible) {
      j.add("time_us", s.seconds * 1e6);
    } else {
      j.add("eligible", false);
    }
    return "{" + std::move(j).str() + "}";
  };
  auto join_entries = [](const std::vector<std::string>& entries) {
    std::string out = "[";
    for (size_t k = 0; k < entries.size(); ++k) {
      if (k) out += ',';
      out += entries[k];
    }
    out += ']';
    return out;
  };

  // Candidate ordering breaks ties toward accelerators (paper default),
  // and local before remote on the same device so equal measurements avoid
  // the network hop. Remote candidates race on their *measured* time, which
  // inherently charges the round-trip and wire transfer.
  auto candidates_for = [&](const std::string& id) {
    std::vector<Artifact*> out;
    for (DeviceKind d :
         {DeviceKind::kGpu, DeviceKind::kFpga, DeviceKind::kCpu}) {
      if (Artifact* a = program_.store.find(id, d)) out.push_back(a);
      if (d == DeviceKind::kCpu) continue;  // servers never list bytecode
      if (Artifact* a = remote_store_.find(id, d)) out.push_back(a);
    }
    return out;
  };

  std::vector<RtNode> rewritten;
  rewritten.push_back(g.nodes.front());

  size_t i = 1;
  while (i + 1 < g.nodes.size()) {
    const RtNode& n = g.nodes[i];
    if (n.kind != RtNode::Kind::kFilter || !n.relocated) {
      // Advance the calibration stream through the untouched filter.
      if (n.kind == RtNode::Kind::kFilter && !stream.empty()) {
        size_t arity = static_cast<size_t>(n.arity);
        std::vector<Value> next;
        std::vector<Value> args(arity);
        for (size_t e = 0; e + arity <= stream.size(); e += arity) {
          for (size_t j = 0; j < arity; ++j) args[j] = stream[e + j];
          next.push_back(interp_.call(n.method_index, args));
        }
        stream = std::move(next);
      }
      rewritten.push_back(n);
      ++i;
      continue;
    }

    // Maximal relocated run [i, j).
    size_t j = i;
    std::vector<std::string> ids;
    while (j < g.nodes.size() && g.nodes[j].kind == RtNode::Kind::kFilter &&
           g.nodes[j].relocated) {
      ids.push_back(g.nodes[j].task_id);
      ++j;
    }

    // Plan A: the fused segment on its best device.
    Scored fused_best;  // eligible=false until some candidate measures
    std::vector<Value> fused_out;
    std::vector<std::string> fused_entries;
    std::vector<RtNode::ResubAlternative> fused_alts;
    std::vector<Artifact*> fused_cands;
    if (ids.size() > 1 && config_.allow_fusion) {
      fused_cands = candidates_for(ArtifactStore::segment_id(ids));
      for (Artifact* cand : fused_cands) {
        std::vector<Value> out;
        Scored s = profile(cand, stream, &out);
        if (tracing) fused_entries.push_back(cand_entry(s));
        if (!s.eligible) continue;
        fused_alts.push_back({cand, s.us_per_elem});
        if (!fused_best.eligible || s.seconds < fused_best.seconds) {
          fused_best = s;
          fused_out = std::move(out);
        }
      }
    }

    // Plan B: each filter independently on its best device.
    struct Choice {
      Scored best;  // best.eligible=false → static-preference fallback
      std::vector<RtNode::ResubAlternative> alts;
      std::vector<std::string> entries;
    };
    double chain_time = 0;
    bool any_chain_calibrated = false;
    std::vector<Choice> chain;
    std::vector<Value> chain_stream = stream;
    for (size_t k = i; k < j; ++k) {
      Choice c;
      std::vector<Value> best_out;
      std::vector<Artifact*> cands = candidates_for(g.nodes[k].task_id);
      LM_CHECK_MSG(!cands.empty(),
                   "no artifact at all for " << g.nodes[k].task_id);
      for (Artifact* cand : cands) {
        std::vector<Value> out;
        Scored s = profile(cand, chain_stream, &out);
        if (tracing) c.entries.push_back(cand_entry(s));
        if (!s.eligible) continue;
        c.alts.push_back({cand, s.us_per_elem});
        if (!c.best.eligible || s.seconds < c.best.seconds) {
          c.best = s;
          best_out = std::move(out);
        }
      }
      if (c.best.eligible) {
        any_chain_calibrated = true;
        chain_time += c.best.seconds;
        chain_stream = std::move(best_out);
      } else {
        // No candidate could be calibrated (prefix shorter than every
        // arity). Fall back to the static §4.2 preference order —
        // candidates_for lists accelerators first — with the record marked
        // uncalibrated, instead of crowning a bogus zero score.
        c.best.artifact = cands.front();
      }
      chain.push_back(std::move(c));
    }

    std::string joined;
    for (size_t k = 0; k < ids.size(); ++k) {
      if (k) joined += "+";
      joined += ids[k];
    }

    auto emit_device = [&](Artifact* a,
                           std::vector<RtNode::ResubAlternative> alts,
                           const std::vector<std::string>& fb_ids) {
      RtNode dev;
      dev.kind = RtNode::Kind::kDevice;
      dev.artifact = a;
      dev.arity = a->manifest().arity;
      dev.label = a->manifest().task_id;
      dev.fallback = fallback_for(a, fb_ids);
      // A node can only re-substitute toward a *measured* alternative, so
      // it needs at least one calibrated loser besides its own score.
      if (config_.enable_resubstitution && alts.size() >= 2) {
        dev.resub_alts = std::move(alts);
      }
      rewritten.push_back(std::move(dev));
    };

    // When nothing at all could be calibrated, preserve the §4.2 static
    // preference: the largest substitution (fused) on the preferred device.
    const bool fused_fallback =
        !fused_cands.empty() && !fused_best.eligible && !any_chain_calibrated;

    if (fused_best.eligible && fused_best.seconds <= chain_time) {
      emit_device(fused_best.artifact, std::move(fused_alts), ids);
      std::string extra;
      if (tracing) {
        // The losing per-filter plan rides along so the trace explains
        // *why* fusion won.
        std::vector<std::string> all = fused_entries;
        for (auto& c : chain) {
          all.insert(all.end(), c.entries.begin(), c.entries.end());
        }
        extra = JsonArgs()
                    .add("fused_time_us", fused_best.seconds * 1e6)
                    .add("chain_time_us", chain_time * 1e6)
                    .add_raw("candidates", join_entries(all))
                    .str();
      }
      {
        Artifact* a = fused_best.artifact;
        SubstitutionRecord rec{joined, a->manifest().device, /*fused=*/true,
                               fused_best.us_per_elem, /*calibrated=*/true};
        rec.source = "measured";
        rec.remote = a->is_remote();
        if (rec.remote) rec.endpoint = a->location();
        record_substitution(std::move(rec), std::move(extra));
      }
      stream = std::move(fused_out);
    } else if (fused_fallback) {
      Artifact* a = fused_cands.front();
      emit_device(a, {}, ids);
      std::string extra;
      if (tracing) {
        extra = JsonArgs()
                    .add_raw("candidates", join_entries(fused_entries))
                    .str();
      }
      SubstitutionRecord rec{joined, a->manifest().device, /*fused=*/true,
                             /*score_us_per_elem=*/-1.0, /*calibrated=*/false};
      rec.remote = a->is_remote();
      if (rec.remote) rec.endpoint = a->location();
      record_substitution(std::move(rec), std::move(extra));
      // The calibration stream was too short to advance; leave it be.
    } else {
      for (size_t k = 0; k < chain.size(); ++k) {
        Choice& c = chain[k];
        Artifact* a = c.best.artifact;
        // A CPU-won filter normally stays an interpreter node, but a node
        // that may later swap devices must drain in device batches.
        const bool resub_node =
            config_.enable_resubstitution && c.alts.size() >= 2;
        if (a->manifest().device == DeviceKind::kCpu && !resub_node &&
            !a->is_remote()) {
          rewritten.push_back(g.nodes[i + k]);  // keep as interpreter filter
        } else {
          emit_device(a, std::move(c.alts), {g.nodes[i + k].task_id});
        }
        std::string extra;
        if (tracing) {
          JsonArgs e;
          if (!fused_entries.empty() && fused_best.eligible) {
            e.add("fused_time_us", fused_best.seconds * 1e6);
          }
          e.add_raw("candidates", join_entries(c.entries));
          extra = std::move(e).str();
        }
        SubstitutionRecord rec{
            g.nodes[i + k].task_id, a->manifest().device, /*fused=*/false,
            c.best.eligible ? c.best.us_per_elem : -1.0, c.best.eligible};
        if (c.best.eligible) rec.source = "measured";
        rec.remote = a->is_remote();
        if (rec.remote) rec.endpoint = a->location();
        record_substitution(std::move(rec), std::move(extra));
      }
      stream = std::move(chain_stream);
    }
    i = j;
  }
  rewritten.push_back(g.nodes.back());
  g.nodes = std::move(rewritten);
}

void LiquidRuntime::substitute_static_seeded(RtGraph& g) {
  // Cold start: no calibration prefix runs. Candidates are ranked by the
  // compiler's static cost estimates (seeded into the cost models at
  // construction); decisions log source=static so a trace distinguishes
  // them from measured ones. Only local artifacts compete — the estimator
  // models this process's executors, not a remote server's.
  const bool tracing = TraceRecorder::current() != nullptr;

  auto seed_of = [&](const std::string& id, DeviceKind d) -> double {
    const analysis::StaticCostEstimate* e =
        program_.static_costs.find(id, static_device_key(d));
    return e ? e->us_per_elem : -1.0;
  };

  struct Pick {
    Artifact* artifact = nullptr;
    double score = -1.0;  // negative → no seed; chosen by §4.2 preference
  };
  auto pick_for = [&](const std::string& id) {
    Pick best;
    Artifact* pref = nullptr;
    for (DeviceKind d :
         {DeviceKind::kGpu, DeviceKind::kFpga, DeviceKind::kCpu}) {
      Artifact* a = program_.store.find(id, d);
      if (!a) continue;
      if (!pref) pref = a;
      double s = seed_of(id, d);
      if (s >= 0 && (!best.artifact || s < best.score)) best = {a, s};
    }
    if (!best.artifact) best.artifact = pref;
    return best;
  };

  auto seed_entry = [&](const std::string& id, Artifact* a, double s) {
    JsonArgs j;
    j.add("tasks", id).add("device", to_string(a->manifest().device));
    if (s >= 0) {
      j.add("static_us_per_elem", s);
    } else {
      j.add("seeded", false);
    }
    return "{" + std::move(j).str() + "}";
  };

  std::vector<RtNode> out;
  size_t i = 0;
  while (i < g.nodes.size()) {
    const RtNode& n = g.nodes[i];
    if (n.kind != RtNode::Kind::kFilter || !n.relocated) {
      out.push_back(n);
      ++i;
      continue;
    }
    size_t j = i;
    std::vector<std::string> ids;
    while (j < g.nodes.size() && g.nodes[j].kind == RtNode::Kind::kFilter &&
           g.nodes[j].relocated) {
      ids.push_back(g.nodes[j].task_id);
      ++j;
    }

    // Per-filter plan: every member on its statically cheapest device.
    std::vector<Pick> chain;
    double chain_score = 0;
    bool chain_scored = true;
    for (const std::string& id : ids) {
      Pick p = pick_for(id);
      LM_CHECK_MSG(p.artifact != nullptr, "no artifact at all for " << id);
      chain_scored = chain_scored && p.score >= 0;
      if (p.score >= 0) chain_score += p.score;
      chain.push_back(p);
    }

    // Fused plan: the whole segment, if its seed beats the chain's sum.
    Pick fused;
    if (ids.size() > 1 && config_.allow_fusion) {
      fused = pick_for(ArtifactStore::segment_id(ids));
    }

    std::string joined;
    for (size_t k = 0; k < ids.size(); ++k) {
      if (k) joined += "+";
      joined += ids[k];
    }

    const bool fuse =
        fused.artifact &&
        (fused.score >= 0
             ? (!chain_scored || fused.score <= chain_score)
             : !chain_scored);  // neither scored → prefer larger (§4.2)

    if (fuse) {
      RtNode dev;
      dev.kind = RtNode::Kind::kDevice;
      dev.artifact = fused.artifact;
      dev.arity = fused.artifact->manifest().arity;
      dev.label = fused.artifact->manifest().task_id;
      out.push_back(std::move(dev));
      SubstitutionRecord rec{joined, fused.artifact->manifest().device,
                             /*fused=*/true, fused.score,
                             /*calibrated=*/false};
      if (fused.score >= 0) rec.source = "static";
      std::string extra;
      if (tracing) {
        JsonArgs e;
        if (fused.score >= 0) e.add("fused_static_us", fused.score);
        if (chain_scored) e.add("chain_static_us", chain_score);
        extra = std::move(e).str();
      }
      record_substitution(std::move(rec), std::move(extra));
    } else {
      for (size_t k = 0; k < chain.size(); ++k) {
        const Pick& p = chain[k];
        Artifact* a = p.artifact;
        if (a->manifest().device == DeviceKind::kCpu) {
          out.push_back(g.nodes[i + k]);  // keep as interpreter filter
        } else {
          RtNode dev;
          dev.kind = RtNode::Kind::kDevice;
          dev.artifact = a;
          dev.arity = a->manifest().arity;
          dev.label = a->manifest().task_id;
          out.push_back(std::move(dev));
        }
        SubstitutionRecord rec{ids[k], a->manifest().device, /*fused=*/false,
                               p.score, /*calibrated=*/false};
        if (p.score >= 0) rec.source = "static";
        std::string extra;
        if (tracing) {
          extra = JsonArgs()
                      .add_raw("candidates",
                               "[" + seed_entry(ids[k], a, p.score) + "]")
                      .str();
        }
        record_substitution(std::move(rec), std::move(extra));
      }
    }
    i = j;
  }
  g.nodes = std::move(out);
}

// ---------------------------------------------------------------------------
// Execution (§4.1: thread per task, FIFO connections)
// ---------------------------------------------------------------------------

namespace {

void validate_shape(const std::vector<LiquidRuntime::RtNode>& nodes) {
  using Kind = LiquidRuntime::RtNode::Kind;
  if (nodes.size() < 2 || nodes.front().kind != Kind::kSource ||
      nodes.back().kind != Kind::kSink) {
    throw RuntimeError(
        "task graph must be source => filters... => sink to execute");
  }
  for (size_t i = 1; i + 1 < nodes.size(); ++i) {
    if (nodes[i].kind != Kind::kFilter && nodes[i].kind != Kind::kDevice) {
      throw RuntimeError("interior task-graph nodes must be filters");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// DeviceRun: per-device-node batch driver (§7 online profiling)
// ---------------------------------------------------------------------------

/// Drives one device node's drains: times every batch into the node's
/// (task, device) cost model, accounts marshaling traffic, feeds the flight
/// recorder, and — when the node carries calibrated alternatives — runs the
/// periodic drift check that may swap the artifact mid-run. Used by both
/// the threaded and the inline scheduler so they profile identically.
class LiquidRuntime::DeviceRun {
 public:
  DeviceRun(LiquidRuntime& rt, RtNode& node, TraceRecorder* rec)
      : rt_(rt), node_(node), rec_(rec) {
    bind(node.artifact);
  }

  size_t arity() const { return static_cast<size_t>(cur_->manifest().arity); }

  /// Identity stamped into drain spans so the attribution engine can bind
  /// them to the owning graph's task lane (executor mode only; inline runs
  /// keep gid 0 and are skipped by the engine).
  void set_trace_ids(uint64_t gid, int node) {
    trace_gid_ = gid;
    trace_node_ = node;
  }

  std::vector<Value> process(std::span<const Value> batch) {
    const TransferStats& ts = cur_->transfer_stats();
    uint64_t to0 = ts.bytes_to_device, from0 = ts.bytes_from_device;
    double t0_us = rec_ ? rec_->now_us() : 0;
    auto t0 = std::chrono::steady_clock::now();
    // In-flight bracket on the entry bound at batch start: invoke() may
    // rebind cost_ mid-batch (remote fallback), and the end must land on
    // the same entry the begin did.
    struct InFlight {
      obs::CostEntry* e;
      explicit InFlight(obs::CostEntry* entry) : e(entry) {
        e->begin_batch();
      }
      ~InFlight() { e->end_batch(); }
    };
    std::vector<Value> out;
    {
      InFlight guard(cost_);
      out = invoke(batch);
    }
    auto t1 = std::chrono::steady_clock::now();
    double dt = std::chrono::duration<double>(t1 - t0).count();
    if (rec_) {
      rec_->complete("task", "drain:" + cur_->manifest().task_id, t0_us,
                     dt * 1e6,
                     JsonArgs()
                         .add("elements", static_cast<uint64_t>(batch.size()))
                         .add("gid", trace_gid_)
                         .add("node", trace_node_)
                         .add("device", cur_->cost_label())
                         .str());
    }
    uint64_t dto = ts.bytes_to_device - to0;
    uint64_t dfrom = ts.bytes_from_device - from0;
    cost_->record_batch(dt, batch.size(), rt_.config_.cost_ewma_alpha);
    cost_->record_transfer(dto, dfrom);
    rt_.hot_->device_batches->add();
    rt_.hot_->bytes_to_device->add(dto);
    rt_.hot_->bytes_from_device->add(dfrom);
    ++batches_;
    elements_ += batch.size();
    bytes_to_ += dto;
    bytes_from_ += dfrom;
    obs::FlightRecorder::instance().record("task", "drain",
                                           cur_->manifest().task_id, dt * 1e6,
                                           batch.size(), dto + dfrom);
    maybe_resubstitute();
    return out;
  }

  uint64_t batches() const { return batches_; }
  uint64_t elements() const { return elements_; }
  uint64_t bytes_to_device() const { return bytes_to_; }
  uint64_t bytes_from_device() const { return bytes_from_; }

  // -- asynchronous batches (remote artifacts over the poll loop) --

  bool can_issue_async() const { return cur_->supports_async(); }
  bool async_in_flight() const { return async_ != nullptr; }
  bool async_ready() const {
    return async_ && async_->ready->load(std::memory_order_acquire);
  }

  /// Starts one batch without blocking; `on_done` fires (from an arbitrary
  /// thread) when the reply or failure arrives, after which collect_async()
  /// resolves it. At most one batch in flight per node.
  void issue_async(std::vector<Value> batch, std::function<void()> on_done) {
    LM_CHECK_MSG(!async_, "device node already has a batch in flight");
    auto a = std::make_unique<Async>();
    a->inputs = std::move(batch);
    a->artifact = cur_;
    a->cost = cost_;
    a->ts = &cur_->transfer_stats();
    a->to0 = a->ts->bytes_to_device;
    a->from0 = a->ts->bytes_from_device;
    a->t0_us = rec_ ? rec_->now_us() : 0;
    a->t0 = std::chrono::steady_clock::now();
    a->ready = std::make_shared<std::atomic<bool>>(false);
    cost_->begin_batch();
    auto ready = a->ready;
    std::function<void()> cb = [ready, done = std::move(on_done)] {
      ready->store(true, std::memory_order_release);
      done();
    };
    try {
      a->op = cur_->process_async(
          std::span<const Value>(a->inputs.data(), a->inputs.size()),
          std::move(cb));
    } catch (...) {
      cost_->end_batch();
      throw;
    }
    async_ = std::move(a);
  }

  /// Resolves a completed async batch on the calling worker thread: decodes
  /// the reply and runs the same accounting as process(). On a transport
  /// failure it swaps to the node's local fallback and replays the batch
  /// synchronously — artifacts are pure functions of their input batch, so
  /// at-least-once is safe (mirrors invoke()'s degradation path).
  std::vector<Value> collect_async() {
    std::unique_ptr<Async> a = std::move(async_);
    std::vector<Value> out;
    try {
      out = a->op->take_results();
    } catch (const TransportError& e) {
      a->cost->end_batch();
      if (node_.fallback == nullptr) throw;
      obs::FlightRecorder::instance().record("fault", "remote-transport",
                                             e.what());
      ResubstitutionRecord rec;
      rec.task_ids = a->artifact->manifest().task_id;
      rec.from = a->artifact->manifest().device;
      rec.to = node_.fallback->manifest().device;
      rec.live_us_per_elem = a->cost->ewma_us_per_elem();
      rec.before_p50_us = a->cost->batch_latency().percentile_us(50);
      rec.before_p99_us = a->cost->batch_latency().percentile_us(99);
      rec.at_batch = batches_;
      rec.reason = "remote-failure";
      rt_.metrics_.counter("net.remote_fallbacks").add();
      bind(node_.fallback);
      swapped_ = true;  // the fallback is final
      rt_.record_resubstitution(std::move(rec));
      return process(
          std::span<const Value>(a->inputs.data(), a->inputs.size()));
    } catch (...) {
      a->cost->end_batch();
      throw;
    }
    auto t1 = std::chrono::steady_clock::now();
    double dt = std::chrono::duration<double>(t1 - a->t0).count();
    a->cost->end_batch();
    size_t n = a->inputs.size();
    if (rec_) {
      rec_->complete("task", "drain:" + a->artifact->manifest().task_id,
                     a->t0_us, dt * 1e6,
                     JsonArgs()
                         .add("elements", static_cast<uint64_t>(n))
                         .add("gid", trace_gid_)
                         .add("node", trace_node_)
                         .add("device", a->artifact->cost_label())
                         .str());
    }
    uint64_t dto = a->ts->bytes_to_device - a->to0;
    uint64_t dfrom = a->ts->bytes_from_device - a->from0;
    a->cost->record_batch(dt, n, rt_.config_.cost_ewma_alpha);
    a->cost->record_transfer(dto, dfrom);
    rt_.hot_->device_batches->add();
    rt_.hot_->bytes_to_device->add(dto);
    rt_.hot_->bytes_from_device->add(dfrom);
    ++batches_;
    elements_ += n;
    bytes_to_ += dto;
    bytes_from_ += dfrom;
    obs::FlightRecorder::instance().record("task", "drain",
                                           a->artifact->manifest().task_id,
                                           dt * 1e6, n, dto + dfrom);
    maybe_resubstitute();
    return out;
  }

 private:
  void bind(Artifact* a) {
    cur_ = a;
    // cost_label() keeps a remote GPU's history separate from the local
    // GPU's: the remote entry absorbs round-trip and wire time, so scores
    // compared across the two are wire-cost-aware by construction.
    cost_ = &rt_.cost_models_.entry(a->manifest().task_id, a->cost_label());
  }

  /// cur_->process with graceful degradation: when a *remote* artifact's
  /// transport dies (endpoint down, timeout, connection killed mid-batch),
  /// swap to the node's local fallback and replay the same batch — artifacts
  /// are pure functions of their input batch, so at-least-once is safe. The
  /// failed attempt's time is charged to the fallback's first batch; an
  /// acceptable smear given the swap happens at most once per node.
  std::vector<Value> invoke(std::span<const Value> batch) {
    if (!cur_->is_remote() || node_.fallback == nullptr) {
      return cur_->process(batch);
    }
    try {
      return cur_->process(batch);
    } catch (const TransportError& e) {
      obs::FlightRecorder::instance().record("fault", "remote-transport",
                                             e.what());
      ResubstitutionRecord rec;
      rec.task_ids = cur_->manifest().task_id;
      rec.from = cur_->manifest().device;
      rec.to = node_.fallback->manifest().device;
      rec.live_us_per_elem = cost_->ewma_us_per_elem();
      rec.before_p50_us = cost_->batch_latency().percentile_us(50);
      rec.before_p99_us = cost_->batch_latency().percentile_us(99);
      rec.at_batch = batches_;
      rec.reason = "remote-failure";
      rt_.metrics_.counter("net.remote_fallbacks").add();
      bind(node_.fallback);
      swapped_ = true;  // the fallback is final; no drift swaps after this
      rt_.record_resubstitution(std::move(rec));
      return cur_->process(batch);
    }
  }

  /// Every `resubstitution_interval` batches: if the live per-element cost
  /// has drifted past the best calibrated loser by more than the configured
  /// margin, swap artifacts for the remainder of the stream. One swap per
  /// node per run keeps the policy stable (no flapping).
  void maybe_resubstitute() {
    if (swapped_ || node_.resub_alts.size() < 2) return;
    if (++since_check_ < rt_.config_.resubstitution_interval) return;
    since_check_ = 0;
    double live = cost_->ewma_us_per_elem();
    if (live <= 0) return;
    const RtNode::ResubAlternative* target = nullptr;
    for (const auto& alt : node_.resub_alts) {
      if (alt.artifact == cur_) continue;
      if (!target || alt.us_per_elem < target->us_per_elem) target = &alt;
    }
    if (!target) return;
    if (live <=
        target->us_per_elem * (1.0 + rt_.config_.resubstitution_drift)) {
      return;
    }
    ResubstitutionRecord rec;
    rec.task_ids = cur_->manifest().task_id;
    rec.from = cur_->manifest().device;
    rec.to = target->artifact->manifest().device;
    rec.live_us_per_elem = live;
    rec.calibrated_us_per_elem = target->us_per_elem;
    rec.before_p50_us = cost_->batch_latency().percentile_us(50);
    rec.before_p99_us = cost_->batch_latency().percentile_us(99);
    rec.at_batch = batches_;
    bind(target->artifact);
    swapped_ = true;
    rt_.record_resubstitution(std::move(rec));
  }

  /// State of the (single) in-flight asynchronous batch. Everything the
  /// issue side measured is pinned here so collect_async() charges the
  /// batch to the entry and artifact that actually served it, even if the
  /// node rebinds in between.
  struct Async {
    std::unique_ptr<AsyncBatch> op;
    std::shared_ptr<std::atomic<bool>> ready;
    std::vector<Value> inputs;  // kept for fallback replay
    Artifact* artifact = nullptr;
    obs::CostEntry* cost = nullptr;
    const TransferStats* ts = nullptr;
    uint64_t to0 = 0, from0 = 0;
    double t0_us = 0;
    std::chrono::steady_clock::time_point t0;
  };

  LiquidRuntime& rt_;
  RtNode& node_;
  TraceRecorder* rec_;
  Artifact* cur_ = nullptr;
  obs::CostEntry* cost_ = nullptr;
  std::unique_ptr<Async> async_;
  uint64_t batches_ = 0, elements_ = 0, bytes_to_ = 0, bytes_from_ = 0;
  uint64_t since_check_ = 0;
  bool swapped_ = false;
  uint64_t trace_gid_ = 0;
  int trace_node_ = -1;
};

void LiquidRuntime::start(Value graph) {
  auto g = graph_of(graph);
  if (g->started || g->executed) return;
  substitute(*g);
  validate_shape(g->nodes);
  if (!config_.use_threads) {
    // Inline mode has no asynchrony; run to completion now.
    execute(*g);
    return;
  }
  if (TraceRecorder* rec = TraceRecorder::current()) {
    g->trace_start_us = rec->now_us();
  }
  run_executor(*g);  // submits tasks; finish() waits on the latch
  {
    // Expose the running graph to the telemetry plane (live FIFO depths).
    // Prune dead entries here rather than on scrape so the exporter path
    // stays read-mostly.
    std::lock_guard<std::mutex> lock(graphs_mu_);
    std::erase_if(active_graphs_,
                  [](const std::weak_ptr<RtGraph>& w) { return w.expired(); });
    active_graphs_.push_back(g);
  }
  g->started = true;
}

void LiquidRuntime::finish(Value graph) {
  auto g = graph_of(graph);
  if (g->executed) return;
  if (!g->started) {
    substitute(*g);
    validate_shape(g->nodes);
    execute(*g);
    return;
  }
  // Started earlier: join.
  finalize_graph(*g);
}

void LiquidRuntime::execute(RtGraph& g) {
  if (config_.use_threads) {
    if (TraceRecorder* rec = TraceRecorder::current()) {
      g.trace_start_us = rec->now_us();
    }
    run_executor(g);
    finalize_graph(g);
  } else {
    TraceSpan span("runtime", "graph.run");
    try {
      run_inline(g);
    } catch (...) {
      g.note_error(std::current_exception());
    }
    g.executed = true;
    hot_->graphs_executed->add();
    if (g.error) {
      dump_flight("task-fault");
      std::rethrow_exception(g.error);
    }
  }
}

/// Waits for every task to retire (deterministic mode: actually runs the
/// steps), harvests per-graph observability (FIFO high-water marks), and
/// rethrows the first task error.
void LiquidRuntime::finalize_graph(RtGraph& g) {
  g.wait_done();
  g.tasks.clear();
  g.executed = true;
  hot_->graphs_executed->add();
  hot_->elements_streamed->add(g.nodes.front().array.as_array()->size());

  TraceRecorder* rec = TraceRecorder::current();
  for (size_t i = 0; i < g.fifos.size(); ++i) {
    uint64_t hw = g.fifos[i]->high_water();
    hot_->fifo_high_water->observe(hw);
    if (rec) {
      rec->counter("fifo", "fifo." + std::to_string(i) + ".high_water",
                   static_cast<double>(hw));
      // Edge statistics for the attribution engine: cumulative blocked
      // time on both sides of the FIFO between node i and node i+1.
      rec->instant("fifo", "edge:" + std::to_string(i),
                   JsonArgs()
                       .add("gid", g.gid)
                       .add("edge", static_cast<int>(i))
                       .add("producer_blocked_us",
                            g.fifos[i]->producer_blocked_us())
                       .add("consumer_blocked_us",
                            g.fifos[i]->consumer_blocked_us())
                       .add("high_water", hw)
                       .add("capacity",
                            static_cast<uint64_t>(g.fifos[i]->capacity()))
                       .str());
    }
  }
  if (rec && g.trace_start_us >= 0) {
    rec->complete("runtime", "graph.run", g.trace_start_us,
                  rec->now_us() - g.trace_start_us,
                  JsonArgs()
                      .add("nodes", static_cast<uint64_t>(g.nodes.size()))
                      .add("gid", g.gid)
                      .str());
    if (config_.attribution && g.gid != 0) {
      // Attribution is post-mortem analysis: only queue the gid here. The
      // trace walk runs at the first consumer (attributions(), report(),
      // a telemetry scrape) so the run itself never pays for it.
      std::lock_guard<std::mutex> lock(attr_mu_);
      attr_pending_.push_back(g.gid);
    }
  }
  if (g.error) {
    dump_flight("task-fault");
    std::rethrow_exception(g.error);
  }
}

void LiquidRuntime::run_inline(RtGraph& g) {
  TraceRecorder* rec = TraceRecorder::current();
  const bc::ArrayRef& src = g.nodes.front().array.as_array();
  std::vector<Value> stream;
  stream.reserve(src->size());
  for (size_t i = 0; i < src->size(); ++i) {
    stream.push_back(bc::array_get(*src, i));
  }
  hot_->elements_streamed->add(stream.size());

  for (size_t ni = 1; ni + 1 < g.nodes.size(); ++ni) {
    RtNode& n = g.nodes[ni];
    if (n.kind == RtNode::Kind::kDevice) {
      TraceSpan span;
      if (rec) span.begin(rec, "task", "device:" + n.label);
      DeviceRun run(*this, n, rec);
      size_t k = run.arity();
      size_t usable = (stream.size() / k) * k;
      // Chunked like the threaded path: the cost model sees the same batch
      // granularity and the drift check can fire mid-stream.
      size_t chunk = std::max<size_t>(config_.device_batch, 1) * k;
      std::vector<Value> next;
      next.reserve(usable / k);
      for (size_t off = 0; off < usable; off += chunk) {
        size_t len = std::min(chunk, usable - off);
        std::vector<Value> produced =
            run.process(std::span<const Value>(stream.data() + off, len));
        next.insert(next.end(), std::make_move_iterator(produced.begin()),
                    std::make_move_iterator(produced.end()));
      }
      stream = std::move(next);
      if (span.active()) {
        span.set_args(JsonArgs()
                          .add("batches", run.batches())
                          .add("elements", run.elements())
                          .add("bytes_to_device", run.bytes_to_device())
                          .add("bytes_from_device", run.bytes_from_device())
                          .str());
      }
    } else {
      TraceSpan span;
      if (rec) span.begin(rec, "task", "filter:" + n.task_id);
      size_t k = static_cast<size_t>(n.arity);
      std::vector<Value> next;
      next.reserve(stream.size() / k + 1);
      std::vector<Value> args(k);
      for (size_t i = 0; i + k <= stream.size(); i += k) {
        for (size_t j = 0; j < k; ++j) args[j] = stream[i + j];
        next.push_back(interp_.call(n.method_index, args));
      }
      if (span.active()) {
        span.set_args(JsonArgs()
                          .add("fires", static_cast<uint64_t>(next.size()))
                          .str());
      }
      stream = std::move(next);
    }
  }

  const bc::ArrayRef& dst = g.nodes.back().array.as_array();
  if (stream.size() > dst->size()) {
    throw RuntimeError("sink array too small: produced " +
                       std::to_string(stream.size()) + " elements into " +
                       std::to_string(dst->size()));
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    bc::array_set(*dst, i, stream[i]);
  }
}

// ---------------------------------------------------------------------------
// Executor tasks: one cooperative state machine per graph node
// ---------------------------------------------------------------------------

namespace {
/// Work budget per step: FIFO transfers / firings a task performs before
/// yielding kReady. Bounds step latency so workers interleave tasks fairly
/// and the deterministic scheduler gets frequent decision points.
constexpr size_t kStepQuantum = 256;
}  // namespace

/// Shared shape of all node tasks: step() delegates to run_slice() and
/// converts a thrown error into the graph's hop-by-hop unwind (close the
/// input so the producer above fails fast, record the error — which sweeps
/// every queue — then finish the output), exactly like the old per-node
/// threads. Emits one "task" complete-span covering first step through
/// retirement so traces keep their per-task rows.
class LiquidRuntime::NodeTask : public ExecTask {
 public:
  NodeTask(LiquidRuntime& rt, RtGraph* g, std::shared_ptr<ValueFifo> in,
           std::shared_ptr<ValueFifo> out, std::string trace_name)
      : rt_(rt),
        graph_(g),
        in_(std::move(in)),
        out_(std::move(out)),
        rec_(TraceRecorder::current()),
        trace_name_(std::move(trace_name)) {}

  StepResult step() final {
    if (rec_ && first_us_ < 0) first_us_ = rec_->now_us();
    try {
      StepResult r = run_slice();
      if (r == StepResult::kDone) emit_span();
      return r;
    } catch (...) {
      if (in_) in_->close();
      graph_->note_error(std::current_exception());
      if (out_) out_->finish();
      emit_span();
      return StepResult::kDone;
    }
  }

  void retired() final { graph_->task_retired(); }

  /// The label this task's "task"/"exec" spans carry ("source",
  /// "filter:<id>", "device:<label>", ...).
  const std::string& span_name() const { return trace_name_; }

 protected:
  /// One bounded slice of the node's work, using only try-operations.
  virtual StepResult run_slice() = 0;
  virtual std::string span_args() const { return {}; }

  LiquidRuntime& rt_;
  RtGraph* graph_;
  std::shared_ptr<ValueFifo> in_, out_;
  /// Captured once at construction: the recorder must stay installed for
  /// the graph's lifetime (install/uninstall around whole runs).
  TraceRecorder* rec_;

 private:
  void emit_span() {
    if (!rec_ || first_us_ < 0) return;
    rec_->complete("task", trace_name_, first_us_, rec_->now_us() - first_us_,
                   span_args());
  }

  std::string trace_name_;
  double first_us_ = -1;
};

class LiquidRuntime::SourceTask final : public NodeTask {
 public:
  SourceTask(LiquidRuntime& rt, RtGraph* g, RtNode* node,
             std::shared_ptr<ValueFifo> out)
      : NodeTask(rt, g, nullptr, std::move(out), "source"), node_(node) {}

 protected:
  StepResult run_slice() override {
    const bc::ArrayRef& src = node_->array.as_array();
    for (size_t budget = kStepQuantum; budget > 0; --budget) {
      if (i_ >= src->size()) {
        out_->finish();
        return StepResult::kDone;
      }
      // The element is staged across a kWouldBlock park: try_push consumes
      // it only on kOk, so nothing is lost or duplicated.
      if (!staged_) {
        v_ = bc::array_get(*src, i_);
        staged_ = true;
      }
      switch (out_->try_push(v_)) {
        case FifoSignal::kOk:
          staged_ = false;
          ++i_;
          ++pushed_;
          break;
        case FifoSignal::kWouldBlock:
          set_block_reason(BlockReason::kPush);
          return StepResult::kBlocked;
        default:  // kShutdown: downstream died, nothing left to do here
          return StepResult::kDone;
      }
    }
    return StepResult::kReady;
  }

  std::string span_args() const override {
    return JsonArgs().add("elements", pushed_).str();
  }

 private:
  RtNode* node_;
  size_t i_ = 0;
  Value v_;
  bool staged_ = false;
  uint64_t pushed_ = 0;
};

class LiquidRuntime::SinkTask final : public NodeTask {
 public:
  SinkTask(LiquidRuntime& rt, RtGraph* g, RtNode* node,
           std::shared_ptr<ValueFifo> in)
      : NodeTask(rt, g, std::move(in), nullptr, "sink"), node_(node) {}

 protected:
  StepResult run_slice() override {
    const bc::ArrayRef& dst = node_->array.as_array();
    for (size_t budget = kStepQuantum; budget > 0; --budget) {
      Value v;
      switch (in_->try_pop(&v)) {
        case FifoSignal::kOk:
          if (i_ >= dst->size()) {
            throw RuntimeError("sink array too small");
          }
          bc::array_set(*dst, i_++, v);
          break;
        case FifoSignal::kWouldBlock:
          set_block_reason(BlockReason::kPop);
          return StepResult::kBlocked;
        default:  // kEndOfStream (complete) or kShutdown (error unwind)
          return StepResult::kDone;
      }
    }
    return StepResult::kReady;
  }

  std::string span_args() const override {
    return JsonArgs().add("elements", static_cast<uint64_t>(i_)).str();
  }

 private:
  RtNode* node_;
  size_t i_ = 0;
};

class LiquidRuntime::FilterTask final : public NodeTask {
 public:
  FilterTask(LiquidRuntime& rt, RtGraph* g, RtNode* node,
             std::shared_ptr<ValueFifo> in, std::shared_ptr<ValueFifo> out)
      : NodeTask(rt, g, std::move(in), std::move(out),
                 "filter:" + node->task_id),
        node_(node),
        interp_(*rt.program_.bytecode),
        args_(static_cast<size_t>(node->arity)) {}

 protected:
  StepResult run_slice() override {
    const size_t k = args_.size();
    for (size_t budget = kStepQuantum; budget > 0; --budget) {
      // Flush the staged result before computing another.
      if (staged_) {
        switch (out_->try_push(result_)) {
          case FifoSignal::kOk:
            staged_ = false;
            ++fires_;
            continue;
          case FifoSignal::kWouldBlock:
            set_block_reason(BlockReason::kPush);
            return StepResult::kBlocked;
          default:
            // Downstream dead: become a dead consumer of our own input,
            // unwinding the producer blocked above us.
            in_->close();
            return StepResult::kDone;
        }
      }
      // Gather one firing's worth of arguments (resumes across parks).
      while (got_ < k) {
        Value v;
        FifoSignal s = in_->try_pop(&v);
        if (s == FifoSignal::kOk) {
          args_[got_++] = std::move(v);
          continue;
        }
        if (s == FifoSignal::kWouldBlock) {
          set_block_reason(BlockReason::kPop);
          return StepResult::kBlocked;
        }
        // End of stream (a trailing partial firing is dropped) or shutdown.
        out_->finish();
        return StepResult::kDone;
      }
      result_ = interp_.call(node_->method_index, args_);
      got_ = 0;
      staged_ = true;
    }
    return StepResult::kReady;
  }

  std::string span_args() const override {
    return JsonArgs().add("fires", fires_).str();
  }

 private:
  RtNode* node_;
  /// A private interpreter per task: the module is shared read-only, and
  /// two steps of the same task never run concurrently.
  bc::Interpreter interp_;
  std::vector<Value> args_;
  size_t got_ = 0;
  Value result_;
  bool staged_ = false;
  uint64_t fires_ = 0;
};

class LiquidRuntime::DeviceTask final : public NodeTask {
 public:
  DeviceTask(LiquidRuntime& rt, RtGraph* g, RtNode* node,
             std::shared_ptr<ValueFifo> in, std::shared_ptr<ValueFifo> out)
      : NodeTask(rt, g, std::move(in), std::move(out),
                 "device:" + node->label),
        run_(rt, *node, TraceRecorder::current()) {}

  /// Forwards the owning graph's identity into this node's drain spans.
  void bind_trace_ids(uint64_t gid, int node) { run_.set_trace_ids(gid, node); }

 protected:
  StepResult run_slice() override {
    // 1. Resolve a completed asynchronous batch — or keep waiting on it
    //    (a close() waker may fire while the RPC is still in flight; the
    //    reply or its deadline will wake us again).
    if (run_.async_in_flight()) {
      if (!run_.async_ready()) {
        set_block_reason(BlockReason::kRpc);
        return StepResult::kBlocked;
      }
      std::vector<Value> produced = run_.collect_async();
      for (auto& v : produced) outbuf_.push_back(std::move(v));
    }
    // 2. Flush buffered results downstream.
    while (!outbuf_.empty()) {
      switch (out_->try_push(outbuf_.front())) {
        case FifoSignal::kOk:
          outbuf_.pop_front();
          break;
        case FifoSignal::kWouldBlock:
          set_block_reason(BlockReason::kPush);
          return StepResult::kBlocked;
        default:
          in_->close();  // hop-by-hop unwind
          return StepResult::kDone;
      }
    }
    if (eof_) {
      out_->finish();
      return StepResult::kDone;
    }
    // 3. Gather up to one device batch, firing opportunistically on
    //    whatever arrived (like the old pop_batch loop — batch size only
    //    affects amortization, never the output, which depends solely on
    //    element order).
    const size_t k = run_.arity();
    const size_t target = std::max<size_t>(rt_.config_.device_batch, 1) * k;
    while (pending_.size() < target) {
      FifoSignal s = in_->try_pop_batch(target - pending_.size(), &pending_);
      if (s == FifoSignal::kWouldBlock) break;
      if (s != FifoSignal::kOk) {
        eof_ = true;  // kEndOfStream, or kShutdown: drain what we have
        break;
      }
    }
    size_t usable = (pending_.size() / k) * k;
    if (usable == 0) {
      if (eof_) {
        out_->finish();
        return StepResult::kDone;
      }
      set_block_reason(BlockReason::kPop);
      return StepResult::kBlocked;  // parked after the failed try above
    }
    // 4. One batch per step. Remote artifacts go asynchronous: the RPC
    //    parks this task, not a worker thread.
    if (run_.can_issue_async()) {
      std::vector<Value> chunk(
          std::make_move_iterator(pending_.begin()),
          std::make_move_iterator(pending_.begin() +
                                  static_cast<long>(usable)));
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<long>(usable));
      Executor* ex = executor();
      // Begin-before-issue / end-after-wake: the external-pending bracket
      // must cover the whole window in which the completion callback is
      // the only thing that can wake this task, or deterministic drive()
      // could mistake a live wait for a deadlock.
      ex->note_external_begin();
      try {
        run_.issue_async(std::move(chunk), [this, ex] {
          ex->wake(this);
          ex->note_external_end();
        });
      } catch (...) {
        ex->note_external_end();
        throw;
      }
      set_block_reason(BlockReason::kRpc);
      return StepResult::kBlocked;  // woken by the completion callback
    }
    std::vector<Value> produced =
        run_.process(std::span<const Value>(pending_.data(), usable));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<long>(usable));
    for (auto& v : produced) outbuf_.push_back(std::move(v));
    return StepResult::kReady;  // flush (and refill) next step
  }

  std::string span_args() const override {
    return JsonArgs()
        .add("batches", run_.batches())
        .add("elements", run_.elements())
        .add("bytes_to_device", run_.bytes_to_device())
        .add("bytes_from_device", run_.bytes_from_device())
        .str();
  }

 private:
  DeviceRun run_;
  std::vector<Value> pending_;
  std::deque<Value> outbuf_;
  bool eof_ = false;
};

namespace {
/// Process-unique run ids for executor graphs; 0 means "never reached the
/// executor" and is skipped by the attribution engine.
std::atomic<uint64_t> g_next_gid{1};
}  // namespace

void LiquidRuntime::run_executor(RtGraph& g) {
  std::shared_ptr<Executor> ex = ensure_executor();
  g.executor = ex;
  g.gid = g_next_gid.fetch_add(1, std::memory_order_relaxed);
  size_t n_nodes = g.nodes.size();
  g.fifos.clear();
  for (size_t i = 0; i + 1 < n_nodes; ++i) {
    g.fifos.push_back(std::make_shared<ValueFifo>(config_.fifo_capacity));
  }
  g.tasks.clear();
  for (size_t ni = 0; ni < n_nodes; ++ni) {
    RtNode* node = &g.nodes[ni];
    std::shared_ptr<ValueFifo> in = ni > 0 ? g.fifos[ni - 1] : nullptr;
    std::shared_ptr<ValueFifo> out = ni + 1 < n_nodes ? g.fifos[ni] : nullptr;
    switch (node->kind) {
      case RtNode::Kind::kSource:
        g.tasks.push_back(
            std::make_unique<SourceTask>(*this, &g, node, std::move(out)));
        break;
      case RtNode::Kind::kSink:
        g.tasks.push_back(
            std::make_unique<SinkTask>(*this, &g, node, std::move(in)));
        break;
      case RtNode::Kind::kFilter:
        g.tasks.push_back(std::make_unique<FilterTask>(
            *this, &g, node, std::move(in), std::move(out)));
        break;
      case RtNode::Kind::kDevice: {
        auto dev = std::make_unique<DeviceTask>(*this, &g, node,
                                                std::move(in), std::move(out));
        dev->bind_trace_ids(g.gid, static_cast<int>(ni));
        g.tasks.push_back(std::move(dev));
        break;
      }
    }
    // Stamp identity so the executor's coalesced "exec" dispatch spans can
    // be bound back to this graph's node lane by the attribution engine.
    auto* task = static_cast<NodeTask*>(g.tasks.back().get());
    task->set_trace_info(task->span_name(), g.gid, static_cast<int>(ni));
  }
  g.live = g.tasks.size();
  // Readiness wiring: FIFO i sits between node i (producer) and node i+1
  // (consumer); its not-full edge wakes the producer, its not-empty edge
  // the consumer. Raw pointers are safe — the graph owns the tasks and
  // co-owns the executor, and destroys itself only after every task
  // retired (the completion latch).
  for (size_t i = 0; i < g.fifos.size(); ++i) {
    Executor* exp = ex.get();
    ExecTask* prod = g.tasks[i].get();
    ExecTask* cons = g.tasks[i + 1].get();
    g.fifos[i]->set_producer_waker([exp, prod] { exp->wake(prod); });
    g.fifos[i]->set_consumer_waker([exp, cons] { exp->wake(cons); });
  }
  for (auto& t : g.tasks) ex->submit(t.get());
}

// ---------------------------------------------------------------------------
// AccelHooks: data-parallel operator offload (§2.2)
// ---------------------------------------------------------------------------

bool LiquidRuntime::try_map(const std::string& task_id,
                            std::span<const Value> args, uint32_t array_mask,
                            Value* out) {
  if (!config_.accelerate_maps || config_.placement == Placement::kCpuOnly ||
      config_.placement == Placement::kFpgaOnly) {
    hot_->maps_interpreted->add();
    return false;
  }
  Artifact* a = program_.store.find(task_id, DeviceKind::kGpu);
  if (!a) {
    hot_->maps_interpreted->add();
    return false;
  }
  *out = static_cast<GpuKernelArtifact*>(a)->run_map(args, array_mask);
  hot_->maps_accelerated->add();
  return true;
}

bool LiquidRuntime::try_reduce(const std::string& task_id, const Value& array,
                               Value* out) {
  if (!config_.accelerate_maps || config_.placement == Placement::kCpuOnly ||
      config_.placement == Placement::kFpgaOnly) {
    hot_->reduces_interpreted->add();
    return false;
  }
  Artifact* a = program_.store.find(task_id, DeviceKind::kGpu);
  if (!a || array.as_array()->size() == 0) {
    hot_->reduces_interpreted->add();
    return false;
  }
  *out = static_cast<GpuKernelArtifact*>(a)->run_reduce(array);
  hot_->reduces_accelerated->add();
  return true;
}

}  // namespace lm::runtime
