// Bounded FIFO connecting tasks (§4.1: "A connect operation '=>' creates a
// FIFO queue between tasks").
//
// Two API layers share one queue:
//
//  * the blocking API (push/pop/pop_batch) — the original thread-per-task
//    interface, kept for direct users and tests;
//  * the nonblocking try-API (try_push/try_pop/try_pop_batch) returning
//    FifoSignal — what executor tasks use, paired with *wakers*.
//
// Wakers are edge-triggered callbacks wired once before execution starts:
// the consumer waker fires on empty→nonempty, finish() and close(); the
// producer waker fires on full→not-full and close(). Combined with the
// executor's park protocol (a task may only park after a failed
// try-operation, and a wake on a running task is never lost) edges are
// sufficient: a failed try observed the state under the lock, so the next
// transition out of that state is guaranteed to fire.
//
// Shutdown ordering fix: close() now *discards* queued values and makes
// every subsequent pop fail fast with kShutdown (nullopt on the blocking
// API). Previously a closed queue still handed out buffered values, so a
// consumer blocked at shutdown could observe data after the producer side
// had been torn down — and a consumer mid-pop could hang on a queue whose
// producer would never push again. Closed means dead, in both directions,
// immediately.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "bytecode/value.h"

namespace lm::runtime {

/// Result of a nonblocking FIFO operation.
enum class FifoSignal {
  kOk,           // the operation transferred at least one value
  kWouldBlock,   // full (push) or empty-but-open (pop); park and retry
  kEndOfStream,  // pop only: producer finished and the queue drained
  kShutdown,     // the queue was closed (error unwind); stop immediately
};

/// Single-producer single-consumer in usage (the scheduler wires one writer
/// and one reader per queue), but safe for any number of threads.
class ValueFifo {
 public:
  explicit ValueFifo(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Registers the callbacks readiness edges fire. Must be wired before
  /// execution starts (reads are unsynchronized once tasks run); wakers
  /// must be idempotent and must not re-enter this FIFO.
  void set_consumer_waker(std::function<void()> w) {
    consumer_waker_ = std::move(w);
  }
  void set_producer_waker(std::function<void()> w) {
    producer_waker_ = std::move(w);
  }

  /// Nonblocking push. kOk, kWouldBlock (full) or kShutdown (closed).
  /// `v` is consumed only on kOk.
  FifoSignal try_push(bc::Value& v) {
    bool fire;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return FifoSignal::kShutdown;
      if (q_.size() >= capacity_) {
        mark_blocked_locked(prod_blocked_since_);
        return FifoSignal::kWouldBlock;
      }
      settle_blocked_locked(prod_blocked_since_, prod_blocked_ns_);
      fire = q_.empty();
      if (fire) settle_blocked_locked(cons_blocked_since_, cons_blocked_ns_);
      q_.push_back(std::move(v));
      if (q_.size() > high_water_) high_water_ = q_.size();
      not_empty_.notify_one();
    }
    if (fire && consumer_waker_) consumer_waker_();
    return FifoSignal::kOk;
  }

  /// Nonblocking pop. kOk, kWouldBlock (empty, stream open), kEndOfStream
  /// (empty, producer finished) or kShutdown (closed).
  FifoSignal try_pop(bc::Value* out) {
    bool fire;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return FifoSignal::kShutdown;
      if (q_.empty()) {
        if (finished_) return FifoSignal::kEndOfStream;
        mark_blocked_locked(cons_blocked_since_);
        return FifoSignal::kWouldBlock;
      }
      settle_blocked_locked(cons_blocked_since_, cons_blocked_ns_);
      fire = q_.size() == capacity_;
      if (fire) settle_blocked_locked(prod_blocked_since_, prod_blocked_ns_);
      *out = std::move(q_.front());
      q_.pop_front();
      not_full_.notify_one();
    }
    if (fire && producer_waker_) producer_waker_();
    return FifoSignal::kOk;
  }

  /// Nonblocking batch pop: appends up to `max` values to `out`. Same
  /// signals as try_pop; kOk means at least one value was appended.
  FifoSignal try_pop_batch(size_t max, std::vector<bc::Value>* out) {
    if (max == 0) return FifoSignal::kOk;
    bool fire;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return FifoSignal::kShutdown;
      if (q_.empty()) {
        if (finished_) return FifoSignal::kEndOfStream;
        mark_blocked_locked(cons_blocked_since_);
        return FifoSignal::kWouldBlock;
      }
      settle_blocked_locked(cons_blocked_since_, cons_blocked_ns_);
      fire = q_.size() == capacity_;
      if (fire) settle_blocked_locked(prod_blocked_since_, prod_blocked_ns_);
      while (!q_.empty() && max-- > 0) {
        out->push_back(std::move(q_.front()));
        q_.pop_front();
      }
      not_full_.notify_all();
    }
    if (fire && producer_waker_) producer_waker_();
    return FifoSignal::kOk;
  }

  /// Blocks while full. Returns false if the queue was closed by the
  /// consumer (downstream failure) — the producer should stop.
  bool push(bc::Value v) {
    bool fire;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (q_.size() >= capacity_ && !closed_) {
        mark_blocked_locked(prod_blocked_since_);
      }
      not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
      settle_blocked_locked(prod_blocked_since_, prod_blocked_ns_);
      if (closed_) return false;
      fire = q_.empty();
      if (fire) settle_blocked_locked(cons_blocked_since_, cons_blocked_ns_);
      q_.push_back(std::move(v));
      if (q_.size() > high_water_) high_water_ = q_.size();
      not_empty_.notify_one();
    }
    if (fire && consumer_waker_) consumer_waker_();
    return true;
  }

  /// Marks end-of-stream; consumers drain then see nullopt/kEndOfStream.
  void finish() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished_ = true;
      settle_blocked_locked(cons_blocked_since_, cons_blocked_ns_);
      not_empty_.notify_all();
    }
    if (consumer_waker_) consumer_waker_();
  }

  /// Blocks for the next value; nullopt at end-of-stream or shutdown.
  std::optional<bc::Value> pop() {
    bool fire;
    bc::Value v;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (q_.empty() && !finished_ && !closed_) {
        mark_blocked_locked(cons_blocked_since_);
      }
      not_empty_.wait(lock,
                      [&] { return !q_.empty() || finished_ || closed_; });
      settle_blocked_locked(cons_blocked_since_, cons_blocked_ns_);
      if (closed_ || q_.empty()) return std::nullopt;
      fire = q_.size() == capacity_;
      if (fire) settle_blocked_locked(prod_blocked_since_, prod_blocked_ns_);
      v = std::move(q_.front());
      q_.pop_front();
      not_full_.notify_one();
    }
    if (fire && producer_waker_) producer_waker_();
    return v;
  }

  /// Pops up to `max` values (at least 1 unless the stream ended). Blocks
  /// for the first value only — device nodes use this to batch.
  std::vector<bc::Value> pop_batch(size_t max) {
    bool fire;
    std::vector<bc::Value> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (q_.empty() && !finished_ && !closed_) {
        mark_blocked_locked(cons_blocked_since_);
      }
      not_empty_.wait(lock,
                      [&] { return !q_.empty() || finished_ || closed_; });
      settle_blocked_locked(cons_blocked_since_, cons_blocked_ns_);
      if (closed_) return out;
      fire = q_.size() == capacity_;
      if (fire) settle_blocked_locked(prod_blocked_since_, prod_blocked_ns_);
      while (!q_.empty() && out.size() < max) {
        out.push_back(std::move(q_.front()));
        q_.pop_front();
      }
      not_full_.notify_all();
    }
    if (fire && !out.empty() && producer_waker_) producer_waker_();
    return out;
  }

  /// Closes the queue (error propagation): queued values are discarded,
  /// pending and future pushes fail fast, pending and future pops observe
  /// kShutdown — a consumer blocked at shutdown can never hang on data
  /// that will not come.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      settle_blocked_locked(prod_blocked_since_, prod_blocked_ns_);
      settle_blocked_locked(cons_blocked_since_, cons_blocked_ns_);
      q_.clear();
      not_full_.notify_all();
      not_empty_.notify_all();
    }
    if (producer_waker_) producer_waker_();
    if (consumer_waker_) consumer_waker_();
  }

  size_t capacity() const { return capacity_; }

  /// Maximum queue occupancy ever observed (the §7 introspection metric:
  /// a FIFO that runs at capacity marks the producer side as the
  /// bottleneck; one that never fills marks the consumer).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  /// Cumulative time the producer side spent blocked on a full queue (from
  /// a failed try_push / a blocking push's wait until the not-full edge).
  /// Includes any in-progress blocked window. Attribution input (§12).
  double producer_blocked_us() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_us_locked(prod_blocked_since_, prod_blocked_ns_);
  }
  /// Cumulative time the consumer side spent blocked on an empty-but-open
  /// queue, symmetric to producer_blocked_us().
  double consumer_blocked_us() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_us_locked(cons_blocked_since_, cons_blocked_ns_);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// mu_ held. Starts a blocked window unless one is already open.
  static void mark_blocked_locked(Clock::time_point& since) {
    if (since == Clock::time_point{}) since = Clock::now();
  }
  /// mu_ held. Closes an open blocked window into the accumulator.
  static void settle_blocked_locked(Clock::time_point& since,
                                    int64_t& total_ns) {
    if (since != Clock::time_point{}) {
      total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - since)
                      .count();
      since = {};
    }
  }
  static double blocked_us_locked(Clock::time_point since, int64_t total_ns) {
    if (since != Clock::time_point{}) {
      total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - since)
                      .count();
    }
    return static_cast<double>(total_ns) / 1e3;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<bc::Value> q_;
  size_t high_water_ = 0;
  bool finished_ = false;
  bool closed_ = false;
  Clock::time_point prod_blocked_since_{};
  Clock::time_point cons_blocked_since_{};
  int64_t prod_blocked_ns_ = 0;
  int64_t cons_blocked_ns_ = 0;
  /// Wired before execution, read without the lock afterwards (see
  /// set_consumer_waker).
  std::function<void()> consumer_waker_;
  std::function<void()> producer_waker_;
};

}  // namespace lm::runtime
