// Bounded blocking FIFO connecting tasks (§4.1: "A connect operation '=>'
// creates a FIFO queue between tasks" and threads "block on the incoming
// connections until enough data is available").
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "bytecode/value.h"

namespace lm::runtime {

/// Single-producer single-consumer in usage (the scheduler wires one writer
/// and one reader per queue), but safe for any number of threads.
class ValueFifo {
 public:
  explicit ValueFifo(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while full. Returns false if the queue was closed by the
  /// consumer (downstream failure) — the producer should stop.
  bool push(bc::Value v) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
    q_.push_back(std::move(v));
    if (q_.size() > high_water_) high_water_ = q_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Marks end-of-stream; consumers drain then see nullopt.
  void finish() {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
    not_empty_.notify_all();
  }

  /// Blocks for the next value; nullopt at end-of-stream.
  std::optional<bc::Value> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !q_.empty() || finished_ || closed_; });
    if (q_.empty()) return std::nullopt;
    bc::Value v = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    return v;
  }

  /// Pops up to `max` values (at least 1 unless the stream ended). Blocks
  /// for the first value only — device nodes use this to batch.
  std::vector<bc::Value> pop_batch(size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !q_.empty() || finished_ || closed_; });
    std::vector<bc::Value> out;
    while (!q_.empty() && out.size() < max) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    not_full_.notify_all();
    return out;
  }

  /// Closes the queue from the consumer side (error propagation): pending
  /// and future pushes fail fast.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t capacity() const { return capacity_; }

  /// Maximum queue occupancy ever observed (the §7 introspection metric:
  /// a FIFO that runs at capacity marks the producer side as the
  /// bottleneck; one that never fills marks the consumer).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<bc::Value> q_;
  size_t high_water_ = 0;
  bool finished_ = false;
  bool closed_ = false;
};

}  // namespace lm::runtime
