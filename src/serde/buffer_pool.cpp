#include "serde/buffer_pool.h"

#include <utility>

namespace lm::serde {

std::vector<uint8_t> BufferPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    ++allocations_;
    return {};
  }
  ++reuses_;
  std::vector<uint8_t> buf = std::move(free_.back());
  free_.pop_back();
  buf.clear();
  return buf;
}

void BufferPool::release(std::vector<uint8_t>&& buf) {
  if (buf.capacity() == 0) return;  // nothing worth keeping
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= kMaxFree) return;  // drop: bound idle memory
  free_.push_back(std::move(buf));
}

uint64_t BufferPool::allocations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocations_;
}

uint64_t BufferPool::reuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuses_;
}

BufferPool& wire_pool() {
  static BufferPool pool;
  return pool;
}

}  // namespace lm::serde
