// The universal byte-stream wire format (§4.3, Fig. 3).
//
// "The runtime implementation adopts a universal 'wire' format that relies
// only on sending a byte stream." Communication between the managed host
// (our VM) and a native device artifact takes three steps each way:
//
//   host Value --serialize--> byte stream --cross boundary--> C-side value
//   C-side value --pack--> byte stream --cross boundary--> host Value
//
// The format is schema-driven, not self-describing: "during the task
// substitution process, the runtime will find a custom serializer based on
// the task I/O data type". Scalars are little-endian; arrays are a u32
// element count followed by densely packed elements; bit arrays pack 8 bits
// per byte (bit 0 in the LSB), which is both the FPGA-friendly layout and
// the densest wire encoding.
#pragma once

#include <memory>
#include <string>

#include "bytecode/value.h"
#include "lime/type.h"
#include "util/byte_buffer.h"

namespace lm::serde {

/// A per-type (de)serialization strategy (§4.3 "custom serializer").
class Serializer {
 public:
  virtual ~Serializer() = default;

  virtual void serialize(const bc::Value& v, ByteWriter& out) const = 0;
  virtual bc::Value deserialize(ByteReader& in) const = 0;

  /// The Lime type this serializer handles (diagnostics / manifests).
  virtual std::string type_name() const = 0;

  /// Exact wire size in bytes for a given value (for transfer accounting).
  virtual size_t wire_size(const bc::Value& v) const = 0;
};

/// Looks up the serializer for a Lime task I/O type. Throws InternalError
/// for types that can never cross a task boundary (non-values).
std::shared_ptr<const Serializer> serializer_for(const lime::TypeRef& type);

}  // namespace lm::serde
