// The native side of Fig. 3: the JNI-like boundary and C-style values.
//
// Paper: "The communication steps between the host JVM and the native
// device entail (1) serializing a Lime value to a byte array, (2) crossing
// the JNI boundary, and (3) converting this byte array into a C-style
// value. The return path is a mirror image."
//
// NativeBoundary simulates step (2): only raw byte buffers may cross, and
// every crossing copies (as a real JNI GetByteArrayRegion would). CValue is
// the C-style value of step (3): a densely packed buffer a device artifact
// can consume directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "bytecode/value.h"
#include "lime/type.h"

namespace lm::serde {

/// The host/native frontier. Deliberately the only way bytes move between
/// the managed world and device artifacts; its counters feed the E3
/// marshaling experiment.
class NativeBoundary {
 public:
  /// Host → native copy (JNI "GetByteArrayRegion" direction).
  std::vector<uint8_t> cross_to_native(std::span<const uint8_t> bytes);

  /// Native → host copy ("NewByteArray + SetByteArrayRegion" direction).
  std::vector<uint8_t> cross_to_host(std::span<const uint8_t> bytes);

  uint64_t crossings() const {
    return crossings_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_to_native() const {
    return bytes_to_native_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_to_host() const {
    return bytes_to_host_.load(std::memory_order_relaxed);
  }
  void reset_stats();

  /// Process-wide totals over every boundary instance (boundaries are
  /// created per process() call, so per-instance counters alone cannot
  /// answer "how many bytes crossed in this run").
  static uint64_t total_bytes_to_native();
  static uint64_t total_bytes_to_host();
  static uint64_t total_crossings();

 private:
  // Atomic: a boundary may be driven while another thread reads stats.
  std::atomic<uint64_t> crossings_{0};
  std::atomic<uint64_t> bytes_to_native_{0};
  std::atomic<uint64_t> bytes_to_host_{0};
};

/// A C-style value: either one scalar or a dense array. "Marshaling on the
/// C side is similar but more specialized because the data is generally
/// densely packed" (§4.3). Bit arrays arrive packed on the wire but are
/// widened to one byte per bit here so device kernels can index them.
struct CValue {
  bc::ElemCode elem = bc::ElemCode::kI32;
  bool is_array = false;
  size_t count = 0;               // elements (1 for scalars)
  std::vector<uint8_t> storage;   // packed native layout

  // Typed views (LM_CHECKed against elem).
  std::span<const int32_t> i32s() const;
  std::span<const int64_t> i64s() const;
  std::span<const float> f32s() const;
  std::span<const double> f64s() const;
  std::span<const uint8_t> bytes() const;  // bool / bit (1 byte per element)
  std::span<int32_t> i32s();
  std::span<int64_t> i64s();
  std::span<float> f32s();
  std::span<double> f64s();
  std::span<uint8_t> bytes();

  static CValue make(bc::ElemCode elem, bool is_array, size_t count);
};

/// Step (3) of Fig. 3: wire bytes → C-style value, driven by the task's
/// declared I/O type.
CValue unmarshal_native(std::span<const uint8_t> wire,
                        const lime::TypeRef& type);

/// Mirror path: C-style value → wire bytes (bit arrays re-pack).
std::vector<uint8_t> marshal_native(const CValue& v);

}  // namespace lm::serde
