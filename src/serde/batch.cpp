#include "serde/batch.h"

#include "serde/wire.h"
#include "util/byte_buffer.h"

namespace lm::serde {

using bc::ArrayRef;
using bc::Value;

namespace {

std::vector<uint8_t> pack_batch_impl(std::span<const Value> elems,
                                     const lime::TypeRef& elem_type,
                                     ByteWriter w) {
  ArrayRef arr = bc::make_array(bc::elem_code_for(elem_type), elems.size());
  for (size_t i = 0; i < elems.size(); ++i) bc::array_set(*arr, i, elems[i]);
  arr->is_value = true;
  auto ser = serializer_for(lime::Type::value_array(elem_type));
  ser->serialize(Value::array(arr), w);
  return w.take();
}

}  // namespace

std::vector<uint8_t> pack_batch(std::span<const Value> elems,
                                const lime::TypeRef& elem_type) {
  return pack_batch_impl(elems, elem_type, ByteWriter());
}

std::vector<uint8_t> pack_batch(std::span<const Value> elems,
                                const lime::TypeRef& elem_type,
                                BufferPool& pool) {
  return pack_batch_impl(elems, elem_type, ByteWriter(pool.acquire()));
}

std::vector<Value> unpack_batch(std::span<const uint8_t> bytes,
                                const lime::TypeRef& elem_type) {
  auto ser = serializer_for(lime::Type::value_array(elem_type));
  ByteReader r(bytes);
  Value v = ser->deserialize(r);
  const ArrayRef& arr = v.as_array();
  std::vector<Value> out;
  out.reserve(arr->size());
  for (size_t i = 0; i < arr->size(); ++i) {
    out.push_back(bc::array_get(*arr, i));
  }
  return out;
}

}  // namespace lm::serde
