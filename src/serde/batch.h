// Batch framing over the universal wire format (§4.3, Fig. 3).
//
// A device artifact consumes a *batch* of stream elements per firing; on
// the wire a batch is simply a value array of the stream's element type,
// serialized with the element type's custom serializer. These helpers are
// the single encode/decode path shared by the in-process native boundary
// (runtime/artifact.cpp) and the remote transport (src/net/), so a batch
// that crosses a socket is byte-identical to one that crosses the JNI-like
// boundary — the property that makes remote artifacts drop-in substitutes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bytecode/value.h"
#include "lime/type.h"
#include "serde/buffer_pool.h"

namespace lm::serde {

/// Serializes `elems` (each of `elem_type`) as one wire-format value array.
std::vector<uint8_t> pack_batch(std::span<const bc::Value> elems,
                                const lime::TypeRef& elem_type);

/// Same encoding into a buffer recycled from `pool`. The caller owns the
/// result; handing it back with pool.release() once the bytes have been
/// consumed is what makes the next batch allocation-free.
std::vector<uint8_t> pack_batch(std::span<const bc::Value> elems,
                                const lime::TypeRef& elem_type,
                                BufferPool& pool);

/// Inverse of pack_batch. Throws RuntimeError on underflow and
/// InternalError when `elem_type` has no wire format.
std::vector<bc::Value> unpack_batch(std::span<const uint8_t> bytes,
                                    const lime::TypeRef& elem_type);

}  // namespace lm::serde
