// Recycled wire buffers for the batch encode path.
//
// Every batch that crosses the native boundary or a socket used to be
// serialized into a freshly grown std::vector<uint8_t>; on streaming
// workloads that is one malloc-and-grow cycle per firing on the hottest
// path in the runtime. A BufferPool keeps retired buffers and hands their
// capacity back to the next encoder, so a steady-state pipeline reaches
// zero fresh wire-buffer allocations after warm-up (net_test asserts
// this via the counters below).
//
// The pool is deliberately simple: a mutex-guarded free list with a small
// cap. Buffers are plain std::vector<uint8_t> — acquire() moves one out,
// release() moves it back — so call sites that forget to release merely
// lose the reuse, never the bytes.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace lm::serde {

class BufferPool {
 public:
  /// At most this many retired buffers are kept; extras are freed on
  /// release (bounds worst-case idle memory to cap × largest batch).
  static constexpr size_t kMaxFree = 16;

  /// A buffer to encode into: empty, but carrying a retired buffer's
  /// capacity when one is available. Counts as a fresh allocation only
  /// when the free list was empty.
  std::vector<uint8_t> acquire();

  /// Returns a buffer's storage for reuse. The moved-from vector is left
  /// empty; contents are discarded.
  void release(std::vector<uint8_t>&& buf);

  /// Number of acquire() calls that found the free list empty (and so hit
  /// the allocator). Flat across a warm steady state.
  uint64_t allocations() const;
  /// Number of acquire() calls served from a retired buffer.
  uint64_t reuses() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<uint8_t>> free_;
  uint64_t allocations_ = 0;
  uint64_t reuses_ = 0;
};

/// The process-wide pool used by the runtime's wire paths (batch framing
/// in runtime/artifact.cpp and src/net/). Thread-safe.
BufferPool& wire_pool();

}  // namespace lm::serde
