#include "serde/wire.h"

#include <unordered_map>

#include "util/error.h"

namespace lm::serde {

using bc::ArrayRef;
using bc::ElemCode;
using bc::Value;
using lime::TypeKind;
using lime::TypeRef;

namespace {

class IntSerializer final : public Serializer {
 public:
  void serialize(const Value& v, ByteWriter& out) const override {
    out.i32(v.as_i32());
  }
  Value deserialize(ByteReader& in) const override {
    return Value::i32(in.i32());
  }
  std::string type_name() const override { return "int"; }
  size_t wire_size(const Value&) const override { return 4; }
};

class LongSerializer final : public Serializer {
 public:
  void serialize(const Value& v, ByteWriter& out) const override {
    out.i64(v.as_i64());
  }
  Value deserialize(ByteReader& in) const override {
    return Value::i64(in.i64());
  }
  std::string type_name() const override { return "long"; }
  size_t wire_size(const Value&) const override { return 8; }
};

class FloatSerializer final : public Serializer {
 public:
  void serialize(const Value& v, ByteWriter& out) const override {
    out.f32(v.as_f32());
  }
  Value deserialize(ByteReader& in) const override {
    return Value::f32(in.f32());
  }
  std::string type_name() const override { return "float"; }
  size_t wire_size(const Value&) const override { return 4; }
};

class DoubleSerializer final : public Serializer {
 public:
  void serialize(const Value& v, ByteWriter& out) const override {
    out.f64(v.as_f64());
  }
  Value deserialize(ByteReader& in) const override {
    return Value::f64(in.f64());
  }
  std::string type_name() const override { return "double"; }
  size_t wire_size(const Value&) const override { return 8; }
};

class BooleanSerializer final : public Serializer {
 public:
  void serialize(const Value& v, ByteWriter& out) const override {
    out.u8(v.as_bool() ? 1 : 0);
  }
  Value deserialize(ByteReader& in) const override {
    return Value::boolean(in.u8() != 0);
  }
  std::string type_name() const override { return "boolean"; }
  size_t wire_size(const Value&) const override { return 1; }
};

class BitSerializer final : public Serializer {
 public:
  void serialize(const Value& v, ByteWriter& out) const override {
    out.u8(v.as_bit() ? 1 : 0);
  }
  Value deserialize(ByteReader& in) const override {
    return Value::bit(in.u8() != 0);
  }
  std::string type_name() const override { return "bit"; }
  size_t wire_size(const Value&) const override { return 1; }
};

/// Value enums travel as their int ordinal.
class EnumSerializer final : public Serializer {
 public:
  explicit EnumSerializer(std::string name) : name_(std::move(name)) {}
  void serialize(const Value& v, ByteWriter& out) const override {
    out.i32(v.as_i32());
  }
  Value deserialize(ByteReader& in) const override {
    return Value::i32(in.i32());
  }
  std::string type_name() const override { return name_; }
  size_t wire_size(const Value&) const override { return 4; }

 private:
  std::string name_;
};

/// Dense array serializer: u32 count + packed element data. Bit arrays pack
/// 8 bits per byte.
class ArraySerializer final : public Serializer {
 public:
  ArraySerializer(ElemCode elem, std::string name, bool value_array)
      : elem_(elem), name_(std::move(name)), value_array_(value_array) {}

  void serialize(const Value& v, ByteWriter& out) const override {
    const ArrayRef& a = v.as_array();
    LM_CHECK_MSG(a->elem == elem_, "array serializer type mismatch: have "
                                       << bc::to_string(a->elem) << ", want "
                                       << bc::to_string(elem_));
    auto n = static_cast<uint32_t>(a->size());
    out.u32(n);
    switch (elem_) {
      case ElemCode::kI32: {
        const auto& d = std::get<std::vector<int32_t>>(a->data);
        out.raw(d.data(), d.size() * sizeof(int32_t));
        return;
      }
      case ElemCode::kI64: {
        const auto& d = std::get<std::vector<int64_t>>(a->data);
        out.raw(d.data(), d.size() * sizeof(int64_t));
        return;
      }
      case ElemCode::kF32: {
        const auto& d = std::get<std::vector<float>>(a->data);
        out.raw(d.data(), d.size() * sizeof(float));
        return;
      }
      case ElemCode::kF64: {
        const auto& d = std::get<std::vector<double>>(a->data);
        out.raw(d.data(), d.size() * sizeof(double));
        return;
      }
      case ElemCode::kBool: {
        const auto& d = std::get<std::vector<uint8_t>>(a->data);
        out.raw(d.data(), d.size());
        return;
      }
      case ElemCode::kBit: {
        // Pack 8 bits per byte, LSB first — the FPGA wire layout.
        const auto& d = std::get<std::vector<uint8_t>>(a->data);
        for (size_t base = 0; base < d.size(); base += 8) {
          uint8_t byte = 0;
          for (size_t k = 0; k < 8 && base + k < d.size(); ++k) {
            if (d[base + k]) byte |= static_cast<uint8_t>(1u << k);
          }
          out.u8(byte);
        }
        return;
      }
      case ElemCode::kBoxed:
        throw InternalError("boxed arrays cannot cross a task boundary");
    }
  }

  Value deserialize(ByteReader& in) const override {
    uint32_t n = in.u32();
    ArrayRef a = bc::make_array(elem_, n, value_array_);
    switch (elem_) {
      case ElemCode::kI32:
        in.raw(std::get<std::vector<int32_t>>(a->data).data(),
               n * sizeof(int32_t));
        break;
      case ElemCode::kI64:
        in.raw(std::get<std::vector<int64_t>>(a->data).data(),
               n * sizeof(int64_t));
        break;
      case ElemCode::kF32:
        in.raw(std::get<std::vector<float>>(a->data).data(), n * sizeof(float));
        break;
      case ElemCode::kF64:
        in.raw(std::get<std::vector<double>>(a->data).data(),
               n * sizeof(double));
        break;
      case ElemCode::kBool:
        in.raw(std::get<std::vector<uint8_t>>(a->data).data(), n);
        break;
      case ElemCode::kBit: {
        auto& d = std::get<std::vector<uint8_t>>(a->data);
        for (size_t base = 0; base < n; base += 8) {
          uint8_t byte = in.u8();
          for (size_t k = 0; k < 8 && base + k < n; ++k) {
            d[base + k] = (byte >> k) & 1;
          }
        }
        break;
      }
      case ElemCode::kBoxed:
        throw InternalError("boxed arrays cannot cross a task boundary");
    }
    return Value::array(std::move(a));
  }

  std::string type_name() const override { return name_; }

  size_t wire_size(const Value& v) const override {
    size_t n = v.as_array()->size();
    switch (elem_) {
      case ElemCode::kI32: case ElemCode::kF32: return 4 + n * 4;
      case ElemCode::kI64: case ElemCode::kF64: return 4 + n * 8;
      case ElemCode::kBool: return 4 + n;
      case ElemCode::kBit: return 4 + (n + 7) / 8;
      case ElemCode::kBoxed: return 0;
    }
    return 0;
  }

 private:
  ElemCode elem_;
  std::string name_;
  bool value_array_;
};

}  // namespace

std::shared_ptr<const Serializer> serializer_for(const TypeRef& type) {
  LM_CHECK(type != nullptr);
  switch (type->kind) {
    case TypeKind::kInt:
      return std::make_shared<IntSerializer>();
    case TypeKind::kLong:
      return std::make_shared<LongSerializer>();
    case TypeKind::kFloat:
      return std::make_shared<FloatSerializer>();
    case TypeKind::kDouble:
      return std::make_shared<DoubleSerializer>();
    case TypeKind::kBoolean:
      return std::make_shared<BooleanSerializer>();
    case TypeKind::kBit:
      return std::make_shared<BitSerializer>();
    case TypeKind::kClass:
      return std::make_shared<EnumSerializer>(type->class_name);
    case TypeKind::kArray:
    case TypeKind::kValueArray: {
      ElemCode ec = bc::elem_code_for(type->elem);
      if (ec == ElemCode::kBoxed) {
        throw InternalError("no wire format for nested array type " +
                            type->to_string());
      }
      return std::make_shared<ArraySerializer>(
          ec, type->to_string(), type->kind == TypeKind::kValueArray);
    }
    default:
      throw InternalError("no wire format for type " + type->to_string());
  }
}

}  // namespace lm::serde
