#include "serde/native.h"

#include <cstring>

#include "util/byte_buffer.h"
#include "util/error.h"

namespace lm::serde {

using bc::ElemCode;
using lime::TypeKind;

namespace {
std::atomic<uint64_t> g_total_crossings{0};
std::atomic<uint64_t> g_total_bytes_to_native{0};
std::atomic<uint64_t> g_total_bytes_to_host{0};
}  // namespace

std::vector<uint8_t> NativeBoundary::cross_to_native(
    std::span<const uint8_t> bytes) {
  crossings_.fetch_add(1, std::memory_order_relaxed);
  bytes_to_native_.fetch_add(bytes.size(), std::memory_order_relaxed);
  g_total_crossings.fetch_add(1, std::memory_order_relaxed);
  g_total_bytes_to_native.fetch_add(bytes.size(), std::memory_order_relaxed);
  return {bytes.begin(), bytes.end()};
}

std::vector<uint8_t> NativeBoundary::cross_to_host(
    std::span<const uint8_t> bytes) {
  crossings_.fetch_add(1, std::memory_order_relaxed);
  bytes_to_host_.fetch_add(bytes.size(), std::memory_order_relaxed);
  g_total_crossings.fetch_add(1, std::memory_order_relaxed);
  g_total_bytes_to_host.fetch_add(bytes.size(), std::memory_order_relaxed);
  return {bytes.begin(), bytes.end()};
}

void NativeBoundary::reset_stats() {
  crossings_.store(0, std::memory_order_relaxed);
  bytes_to_native_.store(0, std::memory_order_relaxed);
  bytes_to_host_.store(0, std::memory_order_relaxed);
}

uint64_t NativeBoundary::total_bytes_to_native() {
  return g_total_bytes_to_native.load(std::memory_order_relaxed);
}
uint64_t NativeBoundary::total_bytes_to_host() {
  return g_total_bytes_to_host.load(std::memory_order_relaxed);
}
uint64_t NativeBoundary::total_crossings() {
  return g_total_crossings.load(std::memory_order_relaxed);
}

namespace {

size_t elem_bytes(ElemCode e) {
  switch (e) {
    case ElemCode::kI32: case ElemCode::kF32: return 4;
    case ElemCode::kI64: case ElemCode::kF64: return 8;
    case ElemCode::kBool: case ElemCode::kBit: return 1;
    case ElemCode::kBoxed: break;
  }
  throw InternalError("boxed values have no native layout");
}

template <typename T>
std::span<const T> typed_view(const CValue& v, ElemCode want1,
                              ElemCode want2 = ElemCode::kBoxed) {
  LM_CHECK_MSG(v.elem == want1 || v.elem == want2,
               "CValue elem mismatch: " << bc::to_string(v.elem));
  return {reinterpret_cast<const T*>(v.storage.data()), v.count};
}

template <typename T>
std::span<T> typed_view_mut(CValue& v, ElemCode want1,
                            ElemCode want2 = ElemCode::kBoxed) {
  LM_CHECK_MSG(v.elem == want1 || v.elem == want2,
               "CValue elem mismatch: " << bc::to_string(v.elem));
  return {reinterpret_cast<T*>(v.storage.data()), v.count};
}

}  // namespace

std::span<const int32_t> CValue::i32s() const {
  return typed_view<int32_t>(*this, ElemCode::kI32);
}
std::span<const int64_t> CValue::i64s() const {
  return typed_view<int64_t>(*this, ElemCode::kI64);
}
std::span<const float> CValue::f32s() const {
  return typed_view<float>(*this, ElemCode::kF32);
}
std::span<const double> CValue::f64s() const {
  return typed_view<double>(*this, ElemCode::kF64);
}
std::span<const uint8_t> CValue::bytes() const {
  return typed_view<uint8_t>(*this, ElemCode::kBool, ElemCode::kBit);
}
std::span<int32_t> CValue::i32s() {
  return typed_view_mut<int32_t>(*this, ElemCode::kI32);
}
std::span<int64_t> CValue::i64s() {
  return typed_view_mut<int64_t>(*this, ElemCode::kI64);
}
std::span<float> CValue::f32s() {
  return typed_view_mut<float>(*this, ElemCode::kF32);
}
std::span<double> CValue::f64s() {
  return typed_view_mut<double>(*this, ElemCode::kF64);
}
std::span<uint8_t> CValue::bytes() {
  return typed_view_mut<uint8_t>(*this, ElemCode::kBool, ElemCode::kBit);
}

CValue CValue::make(ElemCode elem, bool is_array, size_t count) {
  CValue v;
  v.elem = elem;
  v.is_array = is_array;
  v.count = count;
  v.storage.assign(count * elem_bytes(elem), 0);
  return v;
}

CValue unmarshal_native(std::span<const uint8_t> wire,
                        const lime::TypeRef& type) {
  LM_CHECK(type != nullptr);
  ByteReader r(wire);
  if (type->is_array_like()) {
    ElemCode ec = bc::elem_code_for(type->elem);
    uint32_t n = r.u32();
    CValue v = CValue::make(ec, true, n);
    if (ec == ElemCode::kBit) {
      // Wire is packed 8/byte; native unpacks to 1 byte per bit.
      auto out = v.bytes();
      for (size_t base = 0; base < n; base += 8) {
        uint8_t byte = r.u8();
        for (size_t k = 0; k < 8 && base + k < n; ++k) {
          out[base + k] = (byte >> k) & 1;
        }
      }
    } else {
      r.raw(v.storage.data(), v.storage.size());
    }
    return v;
  }
  // Scalar.
  switch (type->kind) {
    case TypeKind::kInt:
    case TypeKind::kClass: {  // enum ordinal
      CValue v = CValue::make(ElemCode::kI32, false, 1);
      v.i32s()[0] = r.i32();
      return v;
    }
    case TypeKind::kLong: {
      CValue v = CValue::make(ElemCode::kI64, false, 1);
      v.i64s()[0] = r.i64();
      return v;
    }
    case TypeKind::kFloat: {
      CValue v = CValue::make(ElemCode::kF32, false, 1);
      v.f32s()[0] = r.f32();
      return v;
    }
    case TypeKind::kDouble: {
      CValue v = CValue::make(ElemCode::kF64, false, 1);
      v.f64s()[0] = r.f64();
      return v;
    }
    case TypeKind::kBoolean: {
      CValue v = CValue::make(ElemCode::kBool, false, 1);
      v.bytes()[0] = r.u8();
      return v;
    }
    case TypeKind::kBit: {
      CValue v = CValue::make(ElemCode::kBit, false, 1);
      v.bytes()[0] = r.u8();
      return v;
    }
    default:
      throw InternalError("no native layout for type " + type->to_string());
  }
}

std::vector<uint8_t> marshal_native(const CValue& v) {
  ByteWriter w;
  if (v.is_array) {
    w.u32(static_cast<uint32_t>(v.count));
    if (v.elem == ElemCode::kBit) {
      auto in = v.bytes();
      for (size_t base = 0; base < v.count; base += 8) {
        uint8_t byte = 0;
        for (size_t k = 0; k < 8 && base + k < v.count; ++k) {
          if (in[base + k]) byte |= static_cast<uint8_t>(1u << k);
        }
        w.u8(byte);
      }
    } else {
      w.raw(v.storage.data(), v.storage.size());
    }
  } else {
    w.raw(v.storage.data(), v.storage.size());
  }
  return w.take();
}

}  // namespace lm::serde
