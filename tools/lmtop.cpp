// lmtop — live telemetry viewer for Liquid Metal processes.
//
// Polls the /metrics endpoint a runtime (`lmc --telemetry-port=N`) or a
// device server (`lmdev --telemetry-port N`) exports and renders a plain
// text dashboard: per-task throughput and in-flight batches, FIFO depths,
// remote-session health (RTT, reconnects, clock offset), and the headline
// counters. No curses, no curl — a scrape is one HTTP/1.0 GET.
//
//   lmtop host:port                poll every second, redraw
//   lmtop host:port --interval=250 poll every 250 ms
//   lmtop host:port --once         one scrape, one render, exit
//   lmtop host:port --raw          dump the exposition text verbatim
//   lmtop host:port --check        scrape once, validate the Prometheus
//                                  exposition grammar; exit 1 on malformed
//                                  output or an unreachable endpoint
//   lmtop host:port --check --check-series=a,b
//                                  additionally require each named series
//                                  to be present in the scrape
//
// --check is the machine mode: tools/check.sh points it at the live
// endpoints at 10 Hz during the loopback soaks, so a regression that
// breaks the exposition format (or wedges the exporter) fails CI.
// --check-series pins specific series (e.g. lm_attr_analyzed_graphs,
// lm_executor_queue_wait_us on a runtime exporter) so silently dropping
// a telemetry family also fails the gate.
//
// Fleet mode (ISSUE 10) watches N processes at once:
//
//   lmtop --fleet=h:p,h:p,…        ranked panel: state/health/queue/RTT
//                                  per endpoint, merged by obs::FleetView
//   … --drill=h:p                  drill-down: that endpoint's full
//                                  per-family rate/gauge tables
//   … --slo=rules.slo              evaluate SLO rules every round; violations
//                                  print, hit the flight recorder, and
//                                  (with --check) fail the exit code
//   … --check [--json]             machine mode: a few scrape cycles,
//                                  the cluster snapshot as JSON on
//                                  stdout, exit 1 on SLO violation or a
//                                  fleet with nothing up
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "net/client.h"
#include "net/scraper.h"
#include "net/telemetry_http.h"
#include "obs/fleet.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "util/strings.h"

namespace {

using namespace lm;

int usage() {
  std::cerr << "usage: lmtop <host:port> [--interval=ms] [--once] [--raw]\n"
               "             [--check] [--check-series=name,name..]\n"
               "       lmtop --fleet=host:port,.. [--interval=ms] [--once]\n"
               "             [--slo=file] [--drill=host:port] [--check]\n"
               "             [--json]\n";
  return 2;
}

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// Parses the exposition subset we emit: comments skipped, then
/// `name{k="v",..} value`. Escapes in label values are unwound. Assumes
/// the body already passed (or will be passed through) the validator —
/// this is a renderer, not a second grammar check.
std::vector<Sample> parse_metrics(const std::string& body) {
  std::vector<Sample> out;
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    Sample s;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        size_t eq = line.find('=', i);
        if (eq == std::string::npos) break;
        std::string key = line.substr(i, eq - i);
        i = eq + 1;
        if (i >= line.size() || line[i] != '"') break;
        ++i;
        std::string val;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) {
            ++i;
            if (line[i] == 'n') val += '\n';
            else val += line[i];
          } else {
            val += line[i];
          }
          ++i;
        }
        if (i < line.size()) ++i;  // closing quote
        s.labels[key] = val;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i < line.size()) ++i;  // closing brace
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) continue;
    s.value = std::strtod(line.c_str() + i, nullptr);
    out.push_back(std::move(s));
  }
  return out;
}

double find_value(const std::vector<Sample>& ms, const std::string& name,
                  const std::map<std::string, std::string>& labels,
                  bool* found = nullptr) {
  for (const Sample& s : ms) {
    if (s.name != name) continue;
    bool match = true;
    for (const auto& [k, v] : labels) {
      auto it = s.labels.find(k);
      if (it == s.labels.end() || it->second != v) {
        match = false;
        break;
      }
    }
    if (match) {
      if (found) *found = true;
      return s.value;
    }
  }
  if (found) *found = false;
  return 0;
}

std::string fmt(double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

/// One dashboard frame from a parsed scrape. `prev`/`dt_s` feed the
/// throughput column (delta elements over the poll interval).
void render(const std::string& endpoint, const std::string& health,
            const std::vector<Sample>& ms, const std::vector<Sample>& prev,
            double dt_s) {
  std::ostringstream os;
  os << "lmtop — " << endpoint << "   health: " << health << "\n\n";

  // Tasks: every (task, device) pair seen in the task.* gauge family.
  std::vector<std::pair<std::string, std::string>> tasks;
  for (const Sample& s : ms) {
    if (s.name != "lm_task_batches") continue;
    auto t = s.labels.find("task");
    auto d = s.labels.find("device");
    if (t == s.labels.end() || d == s.labels.end()) continue;
    tasks.emplace_back(t->second, d->second);
  }
  std::sort(tasks.begin(), tasks.end());
  if (!tasks.empty()) {
    os << "  task                     device              batches   "
          "elements    elem/s  inflight  us/elem\n";
    for (const auto& [task, dev] : tasks) {
      std::map<std::string, std::string> l = {{"task", task},
                                              {"device", dev}};
      double elems = find_value(ms, "lm_task_elements", l);
      double rate = 0;
      if (dt_s > 0) {
        bool had = false;
        double before = find_value(prev, "lm_task_elements", l, &had);
        if (had && elems >= before) rate = (elems - before) / dt_s;
      }
      char row[256];
      std::snprintf(row, sizeof(row),
                    "  %-24s %-18s %8s %10s %9s %9s %8s\n", task.c_str(),
                    dev.c_str(),
                    fmt(find_value(ms, "lm_task_batches", l)).c_str(),
                    fmt(elems).c_str(), fmt(rate).c_str(),
                    fmt(find_value(ms, "lm_task_in_flight", l)).c_str(),
                    fmt(find_value(ms, "lm_task_ewma_us_per_elem", l))
                        .c_str());
      os << row;
    }
    os << "\n";
  }

  // FIFOs: depth/capacity per (graph, queue).
  bool any_fifo = false;
  for (const Sample& s : ms) {
    if (s.name != "lm_fifo_depth") continue;
    if (!any_fifo) {
      os << "  fifo            depth / capacity\n";
      any_fifo = true;
    }
    auto g = s.labels.find("graph");
    auto q = s.labels.find("queue");
    std::string id = "g" + (g != s.labels.end() ? g->second : "?") + ".q" +
                     (q != s.labels.end() ? q->second : "?");
    double cap = find_value(ms, "lm_fifo_capacity", s.labels);
    char row[128];
    std::snprintf(row, sizeof(row), "  %-14s %6s / %s\n", id.c_str(),
                  fmt(s.value).c_str(), fmt(cap).c_str());
    os << row;
  }
  if (any_fifo) os << "\n";

  // Remote sessions: one row per endpoint label on remote.alive.
  bool any_remote = false;
  for (const Sample& s : ms) {
    if (s.name != "lm_remote_alive") continue;
    if (!any_remote) {
      os << "  remote               state     rtt_us  reconnects  "
            "clock_off_us\n";
      any_remote = true;
    }
    auto ep = s.labels.find("endpoint");
    std::string where = ep != s.labels.end() ? ep->second : "?";
    char row[192];
    std::snprintf(
        row, sizeof(row), "  %-20s %-8s %9s %11s %13s\n", where.c_str(),
        s.value > 0 ? "up" : "DOWN",
        fmt(find_value(ms, "lm_remote_rtt_ewma_us", s.labels)).c_str(),
        fmt(find_value(ms, "lm_remote_reconnects", s.labels)).c_str(),
        fmt(find_value(ms, "lm_remote_clock_offset_us", s.labels)).c_str());
    os << row;
  }
  if (any_remote) os << "\n";

  // Artifact cache (DESIGN.md §14): present when the scraped process
  // compiled with --cache. Hit rate is lifetime, not per-interval.
  bool have_cache = false;
  double chits = find_value(ms, "lm_cache_hits_total", {}, &have_cache);
  if (have_cache) {
    double cmiss = find_value(ms, "lm_cache_misses_total", {});
    double total = chits + cmiss;
    char row[256];
    std::snprintf(
        row, sizeof(row),
        "  cache:  hits %s  misses %s (%.1f%% hit)  stores %s  "
        "evictions %s  errors %s  %s byte(s) in %s entr%s\n\n",
        fmt(chits).c_str(), fmt(cmiss).c_str(),
        total > 0 ? 100.0 * chits / total : 0.0,
        fmt(find_value(ms, "lm_cache_stores_total", {})).c_str(),
        fmt(find_value(ms, "lm_cache_evictions_total", {})).c_str(),
        fmt(find_value(ms, "lm_cache_errors_total", {})).c_str(),
        fmt(find_value(ms, "lm_cache_bytes", {})).c_str(),
        fmt(find_value(ms, "lm_cache_entries", {})).c_str(),
        find_value(ms, "lm_cache_entries", {}) == 1.0 ? "y" : "ies");
    os << row;
  }

  // Critical-path attribution of the most recent graph run (lm_attr_*
  // gauges, exported once the runtime's attribution engine has analyzed a
  // completed executor graph).
  bool have_attr = false;
  double analyzed = find_value(ms, "lm_attr_analyzed_graphs", {}, &have_attr);
  if (have_attr && analyzed > 0) {
    double wall = find_value(ms, "lm_attr_wall_us", {});
    double cov = find_value(ms, "lm_attr_coverage", {});
    char head[160];
    std::snprintf(head, sizeof(head),
                  "  attribution (last of %s run(s)):  wall %s us   "
                  "coverage %.1f%%\n",
                  fmt(analyzed).c_str(), fmt(wall).c_str(), cov * 100.0);
    os << head;
    std::vector<std::pair<double, std::string>> cats;
    for (const Sample& s : ms) {
      if (s.name != "lm_attr_category_us") continue;
      auto c = s.labels.find("category");
      cats.emplace_back(s.value, c != s.labels.end() ? c->second : "?");
    }
    std::sort(cats.rbegin(), cats.rend());
    for (const auto& [us, cat] : cats) {
      char row[128];
      std::snprintf(row, sizeof(row), "    %-20s %12s us  %5.1f%%\n",
                    cat.c_str(), fmt(us).c_str(),
                    wall > 0 ? 100.0 * us / wall : 0.0);
      os << row;
    }
    os << "\n";
  }

  // Headline counters, when present.
  os << "  counters:";
  for (const char* name :
       {"lm_runtime_elements_streamed_total", "lm_net_requests_total",
        "lm_server_requests_total", "lm_trace_dropped_events_total",
        "lm_net_heartbeat_misses_total"}) {
    bool found = false;
    double v = find_value(ms, name, {}, &found);
    if (found) os << "  " << name << "=" << fmt(v);
  }
  os << "\n";
  std::cout << os.str();
  std::cout.flush();
}

// ---------------------------------------------------------------------------
// Fleet mode
// ---------------------------------------------------------------------------

/// Ranked cluster panel: FleetView already sorted endpoints best-first
/// (up > stale > down; then health desc, queue asc, RTT asc).
void render_fleet(const obs::FleetSnapshot& snap,
                  const std::vector<obs::SloViolation>& violations,
                  const std::string& drill) {
  std::ostringstream os;
  char head[160];
  std::snprintf(head, sizeof(head),
                "lmtop — fleet of %zu   up %zu  stale %zu  down %zu   "
                "staleness deadline %.0f ms\n\n",
                snap.endpoints.size(), snap.up, snap.stale, snap.down,
                snap.staleness_deadline_us / 1e3);
  os << head;
  os << "  endpoint              state    health   rtt_us   queue  "
        "inflight  hb_miss/s  exec_p99_us  ok/fail\n";
  for (const obs::EndpointStatus& e : snap.endpoints) {
    char row[256];
    std::snprintf(row, sizeof(row),
                  "  %-20s  %-7s  %6.2f  %7s  %6s  %8s  %9.2f  %11s  "
                  "%llu/%llu%s%s\n",
                  e.endpoint.c_str(), obs::to_string(e.state),
                  e.health_score, fmt(e.rtt_ewma_us).c_str(),
                  fmt(e.queue_depth).c_str(), fmt(e.in_flight).c_str(),
                  e.hb_miss_rate, fmt(e.exec_p99_us).c_str(),
                  static_cast<unsigned long long>(e.scrapes_ok),
                  static_cast<unsigned long long>(e.scrapes_failed),
                  e.last_error.empty() ? "" : "  ",
                  e.last_error.c_str());
    os << row;
  }
  if (!drill.empty()) {
    for (const obs::EndpointStatus& e : snap.endpoints) {
      if (e.endpoint != drill && drill != "all") continue;
      os << "\n  " << e.endpoint << " — drill-down\n";
      for (const auto& [name, v] : e.rates) {
        char row[160];
        std::snprintf(row, sizeof(row), "    rate   %-40s %12.3f /s\n",
                      name.c_str(), v);
        os << row;
      }
      for (const auto& [name, v] : e.gauges) {
        char row[160];
        std::snprintf(row, sizeof(row), "    gauge  %-40s %12s\n",
                      name.c_str(), fmt(v).c_str());
        os << row;
      }
      char foot[96];
      std::snprintf(foot, sizeof(foot),
                    "    counter resets observed: %llu\n",
                    static_cast<unsigned long long>(e.counter_resets));
      os << foot;
    }
  }
  if (!violations.empty()) {
    os << "\n  SLO violations this round:\n";
    for (const obs::SloViolation& v : violations) {
      char row[256];
      std::snprintf(row, sizeof(row), "    %-20s %s  (value %.6g vs %.6g)\n",
                    v.endpoint.c_str(), v.rule.c_str(), v.value,
                    v.threshold);
      os << row;
    }
  }
  os << "\n";
  std::cout << os.str();
  std::cout.flush();
}

int run_fleet(const std::vector<std::string>& endpoints, int interval_ms,
              bool once, bool check, bool json, const std::string& slo_path,
              const std::string& drill) {
  std::vector<obs::SloRule> rules;
  if (!slo_path.empty()) {
    std::ifstream in(slo_path);
    if (!in) {
      std::cerr << "lmtop: cannot read SLO rules: " << slo_path << "\n";
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    if (!obs::parse_slo_rules(ss.str(), &rules, &err)) {
      std::cerr << "lmtop: bad SLO rules (" << slo_path << "): " << err
                << "\n";
      return 2;
    }
  }
  obs::SloWatchdog watchdog(rules);

  net::TelemetryScraper::Options opts;
  opts.interval_ms = interval_ms;
  opts.timeout_ms = std::max(250, interval_ms);

  if (check) {
    // Machine mode: deterministic cycle count (3 rounds ≥ two rate
    // windows), snapshot JSON on stdout, violations → exit 1. check.sh
    // runs this against the live soak fleet.
    net::FleetCheckResult result =
        net::run_fleet_check(endpoints, &watchdog, 3, opts);
    std::cout << result.snapshot.to_json() << "\n";
    for (const obs::SloViolation& v : result.violations) {
      std::cerr << "lmtop: SLO violation: " << v.endpoint << ": " << v.rule
                << " (value " << v.value << ")\n";
    }
    if (result.snapshot.up == 0) {
      std::cerr << "lmtop: no endpoint up\n";
      return 1;
    }
    return result.violations.empty() ? 0 : 1;
  }

  net::TelemetryScraper scraper(endpoints, opts);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  for (;;) {
    scraper.scrape_once();
    obs::FleetSnapshot snap = scraper.snapshot();
    std::vector<obs::SloViolation> violations = watchdog.evaluate(snap);
    if (json) {
      std::cout << snap.to_json() << "\n";
    } else {
      if (tty && !once) std::cout << "\033[H\033[2J";
      render_fleet(snap, violations, drill);
      if (!tty && !once) std::cout << "---\n";
    }
    if (once) {
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint;
  int interval_ms = 1000;
  bool once = false, raw = false, check = false, json = false;
  std::vector<std::string> required_series;
  std::vector<std::string> fleet;
  std::string slo_path, drill;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--interval=", 0) == 0) {
      interval_ms = std::max(10, std::atoi(a.c_str() + 11));
    } else if (a == "--once") {
      once = true;
    } else if (a == "--raw") {
      raw = true;
    } else if (a == "--check") {
      check = true;
    } else if (a == "--json") {
      json = true;
    } else if (a.rfind("--fleet=", 0) == 0) {
      fleet = net::split_endpoint_list(a.substr(8));
    } else if (a.rfind("--slo=", 0) == 0) {
      slo_path = a.substr(6);
    } else if (a.rfind("--drill=", 0) == 0) {
      drill = a.substr(8);
    } else if (a.rfind("--check-series=", 0) == 0) {
      check = true;  // implies --check
      for (const auto& name : split(a.substr(15), ',')) {
        if (!name.empty()) required_series.push_back(name);
      }
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "lmtop: unknown flag " << a << "\n";
      return usage();
    } else {
      endpoint = a;
    }
  }
  if (!fleet.empty()) {
    return run_fleet(fleet, interval_ms, once, check, json, slo_path,
                     drill);
  }
  if (endpoint.empty()) return usage();

  std::string host;
  uint16_t port = 0;
  try {
    net::parse_endpoint(endpoint, &host, &port);
  } catch (const std::exception& e) {
    std::cerr << "lmtop: " << e.what() << "\n";
    return 2;
  }

  if (check) {
    // Machine mode: one scrape, grammar-checked. Any transport failure,
    // non-200, or exposition violation is a hard failure — this is what
    // the CI soak points at a live endpoint.
    try {
      std::string body;
      int status = net::http_get(host, port, "/metrics", &body);
      if (status != 200) {
        std::cerr << "lmtop: /metrics returned " << status << "\n";
        return 1;
      }
      std::string err;
      if (!obs::validate_prometheus_text(body, &err)) {
        std::cerr << "lmtop: malformed exposition: " << err << "\n";
        return 1;
      }
      std::vector<Sample> ms = parse_metrics(body);
      for (const std::string& name : required_series) {
        bool found = false;
        find_value(ms, name, {}, &found);
        if (!found) {
          std::cerr << "lmtop: required series " << name
                    << " missing from scrape\n";
          return 1;
        }
      }
      std::cout << "ok: " << ms.size() << " sample(s)";
      if (!required_series.empty()) {
        std::cout << ", " << required_series.size()
                  << " required series present";
      }
      std::cout << "\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "lmtop: scrape failed: " << e.what() << "\n";
      return 1;
    }
  }

  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  std::vector<Sample> prev;
  auto prev_t = std::chrono::steady_clock::now();
  bool first = true;
  for (;;) {
    std::string body, health = "unreachable";
    std::vector<Sample> ms;
    try {
      int status = net::http_get(host, port, "/metrics", &body);
      if (status == 200) ms = parse_metrics(body);
      std::string hbody;
      int hstatus = net::http_get(host, port, "/healthz", &hbody);
      health = hstatus == 200 ? "ok" : "degraded (503)";
    } catch (const std::exception& e) {
      health = std::string("unreachable (") + e.what() + ")";
    }
    if (raw) {
      std::cout << body;
      if (once) return 0;
    } else {
      auto now = std::chrono::steady_clock::now();
      double dt_s =
          first ? 0 : std::chrono::duration<double>(now - prev_t).count();
      if (tty && !once) std::cout << "\033[H\033[2J";
      render(endpoint, health, ms, prev, dt_s);
      if (!tty && !once) std::cout << "---\n";
      prev = std::move(ms);
      prev_t = now;
      first = false;
      if (once) return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
