#!/usr/bin/env bash
# Pre-merge gate: every claim the repo makes, re-verified from scratch.
#
#   1. plain build + full tier-1 test suite (also under LM_VERIFY_IR=1,
#      exercising the kernel-IR and netlist verifiers on every artifact),
#   2. ASan+UBSan build + tier-1,
#   3. TSan build + tier-1 (the runtime's concurrency claims),
#   4. remote loopback soak — lmdev serves examples/intpipe.lime from a
#      second process; lmc runs against it and the output must be identical
#      to a cpu-only run, including when the server crashes mid-stream
#      (deterministically via --fail-after, and best-effort via kill -9):
#      the runtime must complete on the local bytecode fallback. Repeated
#      under TSan (unless --quick) to race-check the transport. While each
#      lmdev serves, `lmtop --check` scrapes its /metrics at 10 Hz: one
#      malformed exposition or a wedged exporter (zero successful scrapes)
#      fails the gate; an endpoint dying mid-soak (fail-after, kill -9)
#      is expected and tolerated. A final pass scrapes lmc's own runtime
#      exporter (--telemetry-port) mid-run and asserts the attribution
#      (lm_attr_*) and executor queue-wait series are already published.
#   5. critical-path attribution gate — `lmc --explain=json` over a
#      pipeline run: every attributed graph's category totals must sum to
#      within 5% of its wall time, and two `--sched-seed` runs must yield
#      byte-identical structural attribution (DESIGN.md §12),
#   6. executor soak — a thousand task graphs multiplexed over a fixed
#      worker pool (thread count must stay O(workers), results exact),
#      run standalone in the plain build and again under TSan so the
#      executor's work-stealing and wake-up paths are race-checked at
#      full load.
#   7. `lmc --analyze --strict` over every shipped .lime example — the
#      static analyzer must report zero warnings/errors on them.
#   8. minimal-capacity differential soak — the deadlock verifier's
#      `--analyze=json` output names the minimal safe FIFO capacity per
#      graph; re-running the example pipelines at exactly that capacity
#      must produce byte-identical results to the default capacity
#      (plain build, and again under TSan unless --quick).
#   9. artifact cache soak (DESIGN.md §14) — cold compile populates a
#      fresh cache (stores, zero hits); a warm recompile must hit on every
#      backend (cpu/gpu/fpga) with byte-identical run output and zero
#      misses; corrupting one on-disk entry must be detected (cache.errors)
#      and recovered from with identical output; finally an lmdev compiled
#      with --cache=rw doubles as a compile service and a cache-off lmc
#      --compile-from peer must fetch every artifact by content key and
#      again produce identical output. Repeated under ASan+UBSan and TSan
#      (unless --quick).
#  10. fleet telemetry soak (DESIGN.md §15) — three lmdev exporters
#      scraped as one fleet at 10 Hz (lmtop --fleet --check) while a
#      loopback workload runs against one of them: all three must rank up
#      and the SLO rules must hold; then one server is kill -9ed and the
#      next check must rank it down within one staleness deadline and turn
#      the scrape_staleness SLO violation into a nonzero exit. Repeated
#      under TSan (unless --quick) to race-check the scraper fan-out.
#  11. clang-tidy (bugprone-*, performance-*, concurrency-*; see
#      .clang-tidy) over src/analysis + src/runtime. Skipped with a notice
#      when clang-tidy is not installed — the gate must not require it.
#
# Usage: tools/check.sh [--quick]
#   --quick skips the sanitizer builds (steps 2 and 3).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

step() { printf '\n== %s ==\n' "$*"; }

# Extracts the result line ("[i32 value ...]{...}") from an lmc run.
result_of() { grep '^\[' <<<"$1" | head -1; }

# Remote loopback soak against the binaries in $1 ("$2" labels the step,
# $3 is the element count — smaller under TSan).
soak() {
  local bdir="$1" label="$2" n="$3"
  local lmc="$bdir/tools/lmc" lmdev="$bdir/tools/lmdev"
  local ints
  ints="$(seq 1 "$n" | paste -sd, -)"
  local log out expected got pid port
  log="$(mktemp)"

  spawn_lmdev() {  # $@ = extra lmdev flags; sets $pid, $port and $tport
    : >"$log"
    "$lmdev" examples/intpipe.lime --quiet --telemetry-port 0 "$@" \
        >"$log" 2>&1 &
    pid=$!
    port=""; tport=""
    for _ in $(seq 1 100); do
      port="$(sed -n 's/.*serving .* on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$log")"
      tport="$(sed -n 's/.*telemetry on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$log")"
      [[ -n "$port" && -n "$tport" ]] && break
      sleep 0.1
    done
    [[ -n "$port" && -n "$tport" ]] || { echo "FAIL($label): lmdev never printed its endpoints"; cat "$log"; exit 1; }
  }

  # 10 Hz `lmtop --check` against a live exporter. The endpoint dying
  # mid-soak is expected (fail-after / kill -9 take the process down);
  # a malformed exposition or a non-200 is always fatal, and so is an
  # exporter that never answered one scrape (wedged).
  scrape_log=""
  scraper_pid=""
  start_scraper() {  # $1 = telemetry port
    scrape_log="$(mktemp)"
    local lmtop="$bdir/tools/lmtop" tp="$1"
    (
      while :; do
        "$lmtop" "127.0.0.1:$tp" --check >>"$scrape_log" 2>&1 || true
        sleep 0.1
      done
    ) &
    scraper_pid=$!
  }
  stop_scraper() {
    kill "$scraper_pid" 2>/dev/null || true
    wait "$scraper_pid" 2>/dev/null || true
    if grep -qE 'malformed exposition|/metrics returned' "$scrape_log"; then
      echo "FAIL($label): telemetry exposition broke under load"
      cat "$scrape_log"; exit 1
    fi
    grep -q '^ok:' "$scrape_log" || {
      echo "FAIL($label): telemetry exporter never answered a scrape"
      cat "$scrape_log"; exit 1; }
    rm -f "$scrape_log"
  }

  step "remote loopback soak ($label)"
  expected="$(result_of "$("$lmc" examples/intpipe.lime --run IntPipe.run \
      --ints "$ints" --placement cpu --quiet)")"
  [[ -n "$expected" ]] || { echo "FAIL($label): no local reference output"; exit 1; }

  # 4a. differential: remote run must be bit-identical to the cpu-only run
  # and must actually have substituted the remote artifact.
  spawn_lmdev
  start_scraper "$tport"
  out="$("$lmc" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
      --remote="127.0.0.1:$port")"
  stop_scraper
  kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true
  got="$(result_of "$out")"
  [[ "$got" == "$expected" ]] || { echo "FAIL($label): remote output diverged"; echo "want: $expected"; echo "got:  $got"; exit 1; }
  grep -q "@127\.0\.0\.1:$port" <<<"$out" || { echo "FAIL($label): no remote substitution happened"; echo "$out"; exit 1; }
  echo "ok: remote differential (scraped at 10 Hz)"

  # 4b. deterministic mid-stream crash (--fail-after): the run must still
  # exit 0 with identical output, completing on the bytecode fallback.
  spawn_lmdev --fail-after 2
  start_scraper "$tport"
  out="$("$lmc" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
      --remote="127.0.0.1:$port" --device-batch=64)"
  stop_scraper
  kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true
  got="$(result_of "$out")"
  [[ "$got" == "$expected" ]] || { echo "FAIL($label): output diverged across server crash"; echo "$out"; exit 1; }
  grep -q "re-substituted" <<<"$out" || { echo "FAIL($label): crash did not trigger the bytecode fallback"; echo "$out"; exit 1; }
  grep -q "remote-failure" <<<"$out" || { echo "FAIL($label): fallback not attributed to remote-failure"; echo "$out"; exit 1; }
  echo "ok: deterministic crash fallback"

  # 4c. best-effort kill -9 mid-run: completion + identical output are
  # required; whether the fallback fired depends on timing, so only the
  # invariants are asserted.
  spawn_lmdev
  "$lmc" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
      --remote="127.0.0.1:$port" --device-batch=64 >"$log.out" 2>&1 &
  local cpid=$!
  sleep 0.2
  kill -9 "$pid" 2>/dev/null || true
  wait "$cpid" || { echo "FAIL($label): lmc died after kill -9 of lmdev"; cat "$log.out"; exit 1; }
  wait "$pid" 2>/dev/null || true
  got="$(result_of "$(cat "$log.out")")"
  [[ "$got" == "$expected" ]] || { echo "FAIL($label): output diverged across kill -9"; cat "$log.out"; exit 1; }
  echo "ok: kill -9 survival"

  # 4d. the runtime's own exporter, scraped strictly mid-run: lmc streams
  # a long per-element remote exchange (--device-batch=1); the moment its
  # telemetry endpoint appears we SIGSTOP lmdev, freezing lmc inside a
  # pending reply (request timeout is 30 s, a 100 ms pause is invisible),
  # scrape the live /metrics, then SIGCONT and let the run finish.
  local ints4 expected4
  ints4="$(seq 1 16384 | paste -sd, -)"
  expected4="$(result_of "$("$lmc" examples/intpipe.lime --run IntPipe.run \
      --ints "$ints4" --placement cpu --quiet)")"
  spawn_lmdev
  "$lmc" examples/intpipe.lime --run IntPipe.run --ints "$ints4" \
      --remote="127.0.0.1:$port" --device-batch=1 --telemetry-port=0 \
      >"$log.out" 2>&1 &
  local cpid2=$! ctport=""
  for _ in $(seq 1 500); do
    ctport="$(sed -n 's/.*telemetry on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$log.out")"
    [[ -n "$ctport" ]] && break
    sleep 0.02
  done
  [[ -n "$ctport" ]] || { echo "FAIL($label): lmc never printed its telemetry endpoint"; cat "$log.out"; exit 1; }
  kill -STOP "$pid" 2>/dev/null || true
  # The runtime exporter must already publish the attribution + queue-wait
  # series mid-run (attr.analyzed_graphs is exported from the first scrape,
  # value 0 until a graph finishes).
  "$bdir/tools/lmtop" "127.0.0.1:$ctport" \
      --check-series=lm_attr_analyzed_graphs,lm_executor_queue_wait_us \
      || { echo "FAIL($label): lmc exposition failed the grammar check"; cat "$log.out"; exit 1; }
  kill -CONT "$pid" 2>/dev/null || true
  wait "$cpid2" || { echo "FAIL($label): lmc with --telemetry-port exited nonzero"; cat "$log.out"; exit 1; }
  kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true
  got="$(result_of "$(cat "$log.out")")"
  [[ "$got" == "$expected4" ]] || { echo "FAIL($label): output diverged with the exporter live"; cat "$log.out"; exit 1; }
  echo "ok: runtime exporter scrape mid-run"
  rm -f "$log" "$log.out"
}

# Artifact cache soak ($1 = build dir, $2 = label): cold/warm differential,
# corruption recovery, and the lmdev compile-service loopback warm start.
cache_soak() {
  local bdir="$1" label="$2"
  local lmc="$bdir/tools/lmc" lmdev="$bdir/tools/lmdev"
  local cdir ints expected cold warm out got victim log pid port
  cdir="$(mktemp -d)"
  ints="$(seq 1 256 | paste -sd, -)"
  step "artifact cache soak ($label)"

  # 9a. cold: a fresh cache stores every backend artifact, hits nothing.
  expected="$(result_of "$("$lmc" examples/intpipe.lime --run IntPipe.run \
      --ints "$ints" --quiet)")"
  [[ -n "$expected" ]] || { echo "FAIL($label): no cache-off reference output"; exit 1; }
  cold="$("$lmc" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
      --cache=rw --cache-dir="$cdir")"
  got="$(result_of "$cold")"
  [[ "$got" == "$expected" ]] || { echo "FAIL($label): cold cached output diverged"; echo "$cold"; exit 1; }
  grep -q 'cache.hits=0 ' <<<"$cold" || { echo "FAIL($label): cold run reported hits"; echo "$cold"; exit 1; }
  grep -q 'cache.stores=[1-9]' <<<"$cold" || { echo "FAIL($label): cold run stored nothing"; echo "$cold"; exit 1; }
  echo "ok: cold run populated the cache"

  # 9b. warm: every backend must hit (no local compiles at all) and the
  # run output must be byte-identical.
  warm="$("$lmc" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
      --cache=rw --cache-dir="$cdir")"
  got="$(result_of "$warm")"
  [[ "$got" == "$expected" ]] || { echo "FAIL($label): warm cached output diverged"; echo "$warm"; exit 1; }
  grep -q 'cpu: bytecode module (cached)' <<<"$warm" || { echo "FAIL($label): warm start recompiled the bytecode module"; echo "$warm"; exit 1; }
  grep -Eq 'gpu: .*\(cached\)' <<<"$warm" || { echo "FAIL($label): no gpu cache hit on warm start"; echo "$warm"; exit 1; }
  grep -Eq 'fpga: .*\(cached\)' <<<"$warm" || { echo "FAIL($label): no fpga cache hit on warm start"; echo "$warm"; exit 1; }
  if grep -E '^(cpu|gpu|fpga): ' <<<"$warm" | grep -qv '(cached)'; then
    echo "FAIL($label): warm start compiled something locally"; echo "$warm"; exit 1
  fi
  grep -q 'cache.misses=0 ' <<<"$warm" || { echo "FAIL($label): warm start missed"; echo "$warm"; exit 1; }
  echo "ok: warm start served every backend from cache"

  # 9c. corruption recovery: truncate one on-disk entry; the next run must
  # detect it (cache.errors), recompile, and produce identical output.
  victim="$(ls "$cdir"/objects/*.art | head -1)"
  [[ -n "$victim" ]] || { echo "FAIL($label): cache dir has no entries"; ls -R "$cdir"; exit 1; }
  head -c 16 "$victim" > "$victim.tmp" && mv "$victim.tmp" "$victim"
  out="$("$lmc" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
      --cache=rw --cache-dir="$cdir")"
  got="$(result_of "$out")"
  [[ "$got" == "$expected" ]] || { echo "FAIL($label): output diverged after entry corruption"; echo "$out"; exit 1; }
  grep -q 'cache.errors=[1-9]' <<<"$out" || { echo "FAIL($label): corrupted entry not detected"; echo "$out"; exit 1; }
  echo "ok: corrupt-entry recovery"

  # 9d. compile-service loopback warm start: lmdev (compiled with caching)
  # serves artifacts by content key; a cache-off lmc fetches all of them
  # instead of compiling, and the run output stays identical.
  log="$(mktemp)"
  "$lmdev" examples/intpipe.lime --quiet --cache=rw --cache-dir="$cdir" \
      >"$log" 2>&1 &
  pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/.*serving .* on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$log")"
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  [[ -n "$port" ]] || { echo "FAIL($label): lmdev never printed its endpoint"; cat "$log"; kill "$pid" 2>/dev/null || true; exit 1; }
  grep -q 'compile service:' "$log" || { echo "FAIL($label): lmdev exposed no compile-service entries"; cat "$log"; kill "$pid" 2>/dev/null || true; exit 1; }
  out="$("$lmc" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
      --cache=off --compile-from="127.0.0.1:$port")"
  kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true
  got="$(result_of "$out")"
  [[ "$got" == "$expected" ]] || { echo "FAIL($label): compile-service output diverged"; echo "$out"; exit 1; }
  grep -Eq '# compile-from .*: [1-9][0-9]* fetched, 0 missed' <<<"$out" \
      || { echo "FAIL($label): compile service did not serve every artifact"; echo "$out"; exit 1; }
  echo "ok: compile-service loopback warm start"
  rm -rf "$cdir" "$log"
}

# Fleet telemetry soak ($1 = build dir, $2 = label): three lmdev exporters
# scraped as one fleet while a loopback workload drives one of them, then a
# kill -9 of one member. The 100 ms scrape interval makes the staleness
# deadline 200 ms; the check's three cycles span that, so "ranked down
# within one deadline" is what the '"down":1' assertion verifies.
fleet_soak() {
  local bdir="$1" label="$2"
  local lmc="$bdir/tools/lmc" lmdev="$bdir/tools/lmdev" lmtop="$bdir/tools/lmtop"
  step "fleet telemetry soak ($label)"
  local logs=() pids=() tports=() dports=()
  local i log tp dp
  for i in 0 1 2; do
    log="$(mktemp)"
    "$lmdev" examples/intpipe.lime --quiet --telemetry-port 0 >"$log" 2>&1 &
    pids[i]=$!; logs[i]="$log"
  done
  for i in 0 1 2; do
    tp=""; dp=""
    for _ in $(seq 1 100); do
      dp="$(sed -n 's/.*serving .* on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "${logs[i]}")"
      tp="$(sed -n 's/.*telemetry on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "${logs[i]}")"
      [[ -n "$dp" && -n "$tp" ]] && break
      sleep 0.1
    done
    [[ -n "$dp" && -n "$tp" ]] || { echo "FAIL($label): fleet lmdev $i never printed its endpoints"; cat "${logs[i]}"; exit 1; }
    dports[i]="$dp"; tports[i]="$tp"
  done
  local fleet="127.0.0.1:${tports[0]},127.0.0.1:${tports[1]},127.0.0.1:${tports[2]}"
  local slo; slo="$(mktemp)"
  cat >"$slo" <<'EOF'
rate(net.heartbeat_misses) < 1/s
scrape_staleness < 2x
EOF

  # 10a. healthy fleet at 10 Hz under load: lmc drives server 0's device
  # port while the check scrapes all three telemetry endpoints.
  local ints out
  ints="$(seq 1 4096 | paste -sd, -)"
  "$lmc" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
      --remote="127.0.0.1:${dports[0]}" --device-batch=64 --quiet \
      >/dev/null 2>&1 &
  local wpid=$!
  out="$("$lmtop" --fleet="$fleet" --interval=100 --check --slo="$slo")" \
      || { echo "FAIL($label): healthy fleet check exited nonzero"; echo "$out"; exit 1; }
  grep -q '"up":3' <<<"$out" || { echo "FAIL($label): fleet check did not rank all 3 up"; echo "$out"; exit 1; }
  wait "$wpid" 2>/dev/null || true
  echo "ok: 3-server fleet up under load (10 Hz)"

  # 10b. lmc's machine-readable snapshot agrees (no .lime input needed).
  out="$("$lmc" --fleet="$fleet" --fleet-snapshot=json --fleet-interval=100)" \
      || { echo "FAIL($label): lmc --fleet-snapshot exited nonzero"; echo "$out"; exit 1; }
  grep -q '"up":3' <<<"$out" || { echo "FAIL($label): lmc snapshot disagrees with lmtop"; echo "$out"; exit 1; }
  echo "ok: lmc --fleet-snapshot=json"

  # 10c. kill -9 one member: ranked down within one staleness deadline,
  # and the scrape_staleness rule turns it into a nonzero exit.
  kill -9 "${pids[1]}" 2>/dev/null || true
  wait "${pids[1]}" 2>/dev/null || true
  local rc=0
  out="$("$lmtop" --fleet="$fleet" --interval=100 --check --slo="$slo" 2>"$slo.err")" || rc=$?
  [[ "$rc" -ne 0 ]] || { echo "FAIL($label): SLO watchdog missed the killed server"; echo "$out"; cat "$slo.err"; exit 1; }
  grep -q '"down":1' <<<"$out" || { echo "FAIL($label): killed server not ranked down"; echo "$out"; exit 1; }
  grep -q '"up":2' <<<"$out" || { echo "FAIL($label): survivors not ranked up"; echo "$out"; exit 1; }
  grep -q 'SLO violation' "$slo.err" || { echo "FAIL($label): no SLO violation reported"; cat "$slo.err"; exit 1; }
  echo "ok: kill -9 ranked down within one deadline, SLO exit nonzero"

  for i in 0 2; do
    kill "${pids[i]}" 2>/dev/null || true
    wait "${pids[i]}" 2>/dev/null || true
  done
  rm -f "${logs[@]}" "$slo" "$slo.err"
}

step "plain build + tier-1"
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS" -L tier1

step "tier-1 with IR verification (LM_VERIFY_IR=1)"
LM_VERIFY_IR=1 ctest --preset default -j "$JOBS" -L tier1

if [[ "$QUICK" == 0 ]]; then
  step "ASan+UBSan build + tier-1"
  cmake --preset sanitize >/dev/null
  cmake --build --preset sanitize -j "$JOBS"
  ctest --preset sanitize -j "$JOBS" -L tier1

  step "TSan build + tier-1"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan -j "$JOBS" -L tier1
fi

soak build plain 4096
if [[ "$QUICK" == 0 ]]; then
  soak build-tsan tsan 512
fi

cache_soak build plain
if [[ "$QUICK" == 0 ]]; then
  cache_soak build-asan asan
  cache_soak build-tsan tsan
fi

fleet_soak build plain
if [[ "$QUICK" == 0 ]]; then
  fleet_soak build-tsan tsan
fi

step "critical-path attribution: coverage + determinism (lmc --explain)"
LMC=build/tools/lmc
ints="$(seq 1 4096 | paste -sd, -)"
# 6a. every attributed graph's categories must sum to within 5% of its
# wall time — the engine's self-consistency invariant (DESIGN.md §12).
out="$("$LMC" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
    --explain=json --quiet)"
attr_line="$(grep '^{"attributions"' <<<"$out" || true)"
[[ -n "$attr_line" ]] || { echo "FAIL: --explain=json printed no attributions"; echo "$out"; exit 1; }
coverages="$(grep -o '"coverage":[0-9.]*' <<<"$attr_line" | cut -d: -f2)"
[[ -n "$coverages" ]] || { echo "FAIL: attributions carry no coverage"; echo "$attr_line"; exit 1; }
while read -r c; do
  awk -v c="$c" 'BEGIN { exit !(c >= 0.95 && c <= 1.05) }' \
      || { echo "FAIL: attribution coverage $c outside [0.95, 1.05]"; echo "$attr_line"; exit 1; }
done <<<"$coverages"
echo "ok: $(wc -l <<<"$coverages") attribution(s), coverage within 5% of wall"
# 6b. under the deterministic scheduler the structural attribution must be
# byte-identical across runs (same seed → same dispatch/park counts).
run_seeded() {
  "$LMC" examples/intpipe.lime --run IntPipe.run --ints "$ints" \
      --sched-seed=42 --explain=json --quiet | grep '^{"attributions"'
}
a="$(run_seeded)"; b="$(run_seeded)"
[[ -n "$a" && "$a" == "$b" ]] \
    || { echo "FAIL: seeded attribution not byte-identical"; diff <(echo "$a") <(echo "$b") || true; exit 1; }
echo "ok: seeded structural attribution byte-identical"

step "executor soak: 1000 graphs over a fixed worker pool (plain)"
build/tests/executor_test --gtest_filter='ExecutorSoak.*'
if [[ "$QUICK" == 0 ]]; then
  step "executor soak: 1000 graphs over a fixed worker pool (tsan)"
  build-tsan/tests/executor_test --gtest_filter='ExecutorSoak.*'
fi

step "static analysis over shipped examples (lmc --analyze --strict)"
LMC=build/tools/lmc
for f in examples/*.lime; do
  echo "-- $LMC $f --analyze --strict"
  "$LMC" "$f" --analyze --strict
done

# Minimal-capacity differential: run one example pipeline at the deadlock
# verifier's proven minimal safe FIFO capacity and require byte-identical
# output vs the default capacity ($1 = build dir, $2 = label, $3 = file,
# $4 = entry, $5 = argflag, $6 = args).
mincap_soak() {
  local bdir="$1" label="$2" file="$3" entry="$4" argflag="$5" args="$6"
  local lmc="$bdir/tools/lmc"
  local json mincap expected got
  json="$("$lmc" "$file" --analyze=json)"
  mincap="$(grep -o '"min_safe_capacity": *[0-9][0-9]*' <<<"$json" \
      | grep -o '[0-9][0-9]*$' | sort -n | tail -1)"
  [[ -n "$mincap" ]] || { echo "FAIL($label): no min_safe_capacity in --analyze=json for $file"; echo "$json"; exit 1; }
  [[ "$mincap" -ge 1 ]] || mincap=1
  expected="$(result_of "$("$lmc" "$file" --run "$entry" "$argflag" "$args" --quiet)")"
  [[ -n "$expected" ]] || { echo "FAIL($label): no reference output for $file"; exit 1; }
  got="$(result_of "$("$lmc" "$file" --run "$entry" "$argflag" "$args" \
      --fifo-capacity="$mincap" --quiet)")"
  [[ "$got" == "$expected" ]] || {
    echo "FAIL($label): $file diverged at minimal fifo capacity $mincap"
    echo "want: $expected"; echo "got:  $got"; exit 1; }
  echo "ok: $file byte-identical at minimal capacity $mincap ($label)"
}

step "minimal-capacity differential soak (plain)"
ints="$(seq 1 2048 | paste -sd, -)"
bits="$(printf '0110100101100101%.0s' $(seq 1 16))"
mincap_soak build plain examples/intpipe.lime IntPipe.run --ints "$ints"
mincap_soak build plain examples/bitflip.lime Bitflip.taskFlip --bits "$bits"
if [[ "$QUICK" == 0 ]]; then
  step "minimal-capacity differential soak (tsan)"
  ints="$(seq 1 512 | paste -sd, -)"
  mincap_soak build-tsan tsan examples/intpipe.lime IntPipe.run --ints "$ints"
  mincap_soak build-tsan tsan examples/bitflip.lime Bitflip.taskFlip --bits "$bits"
fi

step "clang-tidy over src/analysis + src/runtime"
if command -v clang-tidy >/dev/null 2>&1; then
  [[ -f build/compile_commands.json ]] \
      || { echo "FAIL: build/compile_commands.json missing (reconfigure with the default preset)"; exit 1; }
  clang-tidy -p build --quiet src/analysis/*.cpp src/runtime/*.cpp
  echo "ok: clang-tidy clean"
else
  echo "skip: clang-tidy not installed (profile: .clang-tidy)"
fi

step "OK"
