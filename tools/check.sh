#!/usr/bin/env bash
# Pre-merge gate: every claim the repo makes, re-verified from scratch.
#
#   1. plain build + full tier-1 test suite (also under LM_VERIFY_IR=1,
#      exercising the kernel-IR and netlist verifiers on every artifact),
#   2. ASan+UBSan build + tier-1,
#   3. TSan build + tier-1 (the runtime's concurrency claims),
#   4. `lmc --analyze --strict` over every shipped .lime example — the
#      static analyzer must report zero warnings/errors on them.
#
# Usage: tools/check.sh [--quick]
#   --quick skips the sanitizer builds (steps 2 and 3).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

step() { printf '\n== %s ==\n' "$*"; }

step "plain build + tier-1"
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS" -L tier1

step "tier-1 with IR verification (LM_VERIFY_IR=1)"
LM_VERIFY_IR=1 ctest --preset default -j "$JOBS" -L tier1

if [[ "$QUICK" == 0 ]]; then
  step "ASan+UBSan build + tier-1"
  cmake --preset sanitize >/dev/null
  cmake --build --preset sanitize -j "$JOBS"
  ctest --preset sanitize -j "$JOBS" -L tier1

  step "TSan build + tier-1"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan -j "$JOBS" -L tier1
fi

step "static analysis over shipped examples (lmc --analyze --strict)"
LMC=build/tools/lmc
for f in examples/*.lime; do
  echo "-- $LMC $f --analyze --strict"
  "$LMC" "$f" --analyze --strict
done

step "OK"
