// lmc — the Liquid Metal command-line compiler and runner.
//
// Compiles a Lime source file through the full Fig. 2 toolchain and
// optionally dumps artifacts or runs an entry point under a chosen
// placement policy.
//
// Usage:
//   lmc program.lime                        compile, list artifacts
//   lmc program.lime --emit=opencl          dump the OpenCL artifacts
//   lmc program.lime --emit=verilog         dump the Verilog artifacts
//   lmc program.lime --emit=bytecode        dump the bytecode disassembly
//   lmc program.lime --emit=graphs          dump discovered task graphs
//   lmc program.lime --run C.m --ints 1,2,3 [--placement auto|cpu|gpu|fpga|adaptive]
//   lmc program.lime --run C.m --floats 1.5,2.5
//   lmc program.lime --run C.m --bits 100
//   lmc program.lime --run C.m --ints .. --trace=out.json --metrics
//   lmc program.lime --run C.m --ints .. --report[=json]
//   lmc program.lime --analyze[=json]       static analysis report (LM codes)
//   lmc program.lime --static-cost          static per-(task, device) cost table
//   lmc program.lime --strict               fail (exit 1) on any warning
//
// --analyze runs the whole-program static analyzer (definite assignment,
// effect/isolation verification, task-graph hazards, FIFO deadlock proofs —
// DESIGN.md §S11, §13) and prints every finding with its stable LM code in
// deterministic order, followed by the per-device suitability notes (LM401/
// 402 exclusions, LM403 demotions). Exit status is 1 when errors are
// present (or, under --strict, any warning). Set LM_VERIFY_IR=1 to
// additionally verify every compiled kernel/RTL artifact (LM3xx).
// --analyze=json emits one object: {"diagnostics": [...], "deadlock":
// [per-graph capacity verdicts with per-edge minimal safe capacities],
// "static_costs": [...]} — check.sh mines "deadlock" for the
// minimal-capacity differential soak.
//
// --static-cost prints the abstract-interpretation cost table
// (cost_estimate.h): predicted µs per element for every (task, device)
// pair, including fused segments. --fifo-capacity=N makes both the
// deadlock verifier and the runtime use capacity N. --no-calibration makes
// --placement adaptive skip the measuring prefix and place purely on the
// static seeds (the cold-start path; decisions log source=static).
//
// --trace records the run as Chrome-trace JSON (open in chrome://tracing
// or https://ui.perfetto.dev): per-task execution spans, substitution
// decisions with candidate scores, GPU launches, FPGA cycle counts, FIFO
// high-water counters. --metrics prints the runtime counter summary.
//
// --report prints the end-of-run performance report (per-task × per-device
// batch counts and latency percentiles, marshaled bytes, substitution and
// re-substitution history, dropped-trace-event counts); --report=json
// emits the same as a JSON document. --resub enables mid-run drift
// re-substitution under --placement adaptive.
//
// --explain runs the critical-path attribution engine (DESIGN.md §12)
// over the executed graphs and prints, per run, the top critical-path
// contributors, a category breakdown that sums to the wall time, and
// per-device utilization. --explain=json emits the same as JSON (one
// {"attributions":[..]} object); under a nonzero --sched-seed the JSON is
// the structural (timing-free) rendering, byte-identical across replays
// of the same seed. --explain works without --trace: lmc installs a
// recorder internally for the run.
//
// The flight recorder is always on; when a task faults (or a drift swap
// fires) the last events per thread are dumped as Chrome-trace JSON to
// lm-flight.json (--flight=<path> to move it, --flight=none to disable).
// Bare output filenames land under $LM_OUTPUT_DIR (default: the build
// tree), not the invoking CWD — see util/output_path.h.
//
// The --run input becomes a single value-array argument (int[[]]/float[[]]
// /bit[[]]) — the calling convention of every workload entry point in this
// repository.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cache/artifact_cache.h"
#include "net/attach.h"
#include "net/client.h"
#include "net/compile_client.h"
#include "net/scraper.h"
#include "net/telemetry_http.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "runtime/liquid_runtime.h"
#include "runtime/repository.h"
#include "util/output_path.h"
#include "util/strings.h"

namespace {

using namespace lm;

int usage() {
  std::cerr << "usage: lmc <file.lime> [--emit=opencl|verilog|bytecode|graphs]\n"
               "           [--run Class.method (--ints a,b,.. | --floats a,b,..\n"
               "            | --bits 0101..)] [--placement auto|cpu|gpu|fpga|adaptive]\n"
               "           [--no-gpu] [--no-fpga] [--quiet]\n"
               "           [--trace=<file.json>] [--metrics]\n"
               "           [--report[=json]] [--explain[=json]] [--resub]\n"
               "           [--flight=<file.json>|none]\n"
               "           [--analyze[=json]] [--strict] [--static-cost]\n"
               "           [--fifo-capacity=N] [--no-calibration]\n"
               "           [--remote=host:port[,host:port..]] [--device-batch=N]\n"
               "           [--telemetry-port=N] [--workers=N] [--sched-seed=S]\n"
               "           [--cache[=off|ro|rw]] [--cache-dir=<dir>]\n"
               "           [--compile-from=host:port]\n"
               "       lmc --fleet=host:port,.. --fleet-snapshot[=json]\n"
               "           [--slo=<rules-file>] [--fleet-interval=ms]\n";
  return 2;
}

runtime::Placement parse_placement(const std::string& s, bool* ok) {
  *ok = true;
  if (s == "auto") return runtime::Placement::kAuto;
  if (s == "cpu") return runtime::Placement::kCpuOnly;
  if (s == "gpu") return runtime::Placement::kGpuOnly;
  if (s == "fpga") return runtime::Placement::kFpgaOnly;
  if (s == "adaptive") return runtime::Placement::kAdaptive;
  *ok = false;
  return runtime::Placement::kAuto;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path;
  std::string emit;
  std::string emit_dir;
  std::string run_entry;
  std::string ints_arg, floats_arg, bits_arg;
  runtime::Placement placement = runtime::Placement::kAuto;
  runtime::CompileOptions copts;
  bool quiet = false;
  std::string trace_path;
  bool want_metrics = false;
  std::string report_mode;                    // "", "text" or "json"
  std::string explain_mode;                   // "", "text" or "json"
  std::string flight_path = "lm-flight.json";  // "" disables dumping
  bool enable_resub = false;
  std::string analyze_mode;  // "", "text" or "json"
  bool strict = false;
  bool static_cost = false;
  int64_t fifo_capacity = 0;  // 0 → defaults (compiler and runtime)
  bool no_calibration = false;
  std::vector<std::string> remote_endpoints;
  size_t device_batch = 0;  // 0 → RuntimeConfig default
  int telemetry_port = -1;  // <0 → exporter off; 0 → ephemeral port
  size_t workers = 0;       // 0 → hardware concurrency
  uint64_t sched_seed = 0;  // 0 → threaded; nonzero → deterministic replay
  std::string compile_from;  // empty → no compile service
  std::vector<std::string> fleet_endpoints;
  bool fleet_snapshot = false;
  int fleet_interval_ms = 200;
  std::string slo_path;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "lmc: " << what << " needs a value\n";
        exit(2);
      }
      return argv[++i];
    };
    if (a.rfind("--emit=", 0) == 0) {
      emit = a.substr(7);
    } else if (a == "--run") {
      run_entry = next("--run");
    } else if (a == "--ints") {
      ints_arg = next("--ints");
    } else if (a == "--floats") {
      floats_arg = next("--floats");
    } else if (a == "--bits") {
      bits_arg = next("--bits");
    } else if (a == "--placement") {
      bool ok;
      placement = parse_placement(next("--placement"), &ok);
      if (!ok) return usage();
    } else if (a == "--emit-dir") {
      emit_dir = next("--emit-dir");
    } else if (a == "--no-gpu") {
      copts.enable_gpu = false;
    } else if (a == "--no-fpga") {
      copts.enable_fpga = false;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a.rfind("--trace=", 0) == 0) {
      trace_path = a.substr(8);
    } else if (a == "--trace") {
      trace_path = next("--trace");
    } else if (a == "--metrics") {
      want_metrics = true;
    } else if (a == "--report") {
      report_mode = "text";
    } else if (a.rfind("--report=", 0) == 0) {
      report_mode = a.substr(9);
      if (report_mode != "text" && report_mode != "json") {
        std::cerr << "lmc: --report takes 'text' or 'json'\n";
        return usage();
      }
    } else if (a == "--explain") {
      explain_mode = "text";
    } else if (a.rfind("--explain=", 0) == 0) {
      explain_mode = a.substr(10);
      if (explain_mode != "text" && explain_mode != "json") {
        std::cerr << "lmc: --explain takes 'text' or 'json'\n";
        return usage();
      }
    } else if (a.rfind("--flight=", 0) == 0) {
      flight_path = a.substr(9);
      if (flight_path == "none") flight_path.clear();
    } else if (a.rfind("--flight-path=", 0) == 0) {
      flight_path = a.substr(14);
      if (flight_path == "none") flight_path.clear();
    } else if (a == "--resub") {
      enable_resub = true;
    } else if (a == "--analyze") {
      analyze_mode = "text";
    } else if (a.rfind("--analyze=", 0) == 0) {
      analyze_mode = a.substr(10);
      if (analyze_mode != "text" && analyze_mode != "json") {
        std::cerr << "lmc: --analyze takes 'text' or 'json'\n";
        return usage();
      }
    } else if (a == "--strict") {
      strict = true;
    } else if (a == "--static-cost") {
      static_cost = true;
    } else if (a.rfind("--fifo-capacity=", 0) == 0) {
      fifo_capacity = std::stoll(a.substr(16));
    } else if (a == "--no-calibration") {
      no_calibration = true;
    } else if (a.rfind("--remote=", 0) == 0) {
      for (const auto& ep : split(a.substr(9), ',')) {
        if (!ep.empty()) remote_endpoints.push_back(ep);
      }
    } else if (a.rfind("--device-batch=", 0) == 0) {
      device_batch = static_cast<size_t>(std::stoul(a.substr(15)));
    } else if (a.rfind("--telemetry-port=", 0) == 0) {
      telemetry_port = static_cast<int>(std::stoul(a.substr(17)));
    } else if (a.rfind("--workers=", 0) == 0) {
      workers = static_cast<size_t>(std::stoul(a.substr(10)));
    } else if (a.rfind("--sched-seed=", 0) == 0) {
      sched_seed = std::stoull(a.substr(13));
    } else if (a == "--cache") {
      copts.cache.mode = cache::CacheMode::kReadWrite;
    } else if (a.rfind("--cache=", 0) == 0) {
      auto m = cache::parse_cache_mode(a.substr(8));
      if (!m) {
        std::cerr << "lmc: --cache takes 'off', 'ro' or 'rw'\n";
        return usage();
      }
      copts.cache.mode = *m;
    } else if (a.rfind("--cache-dir=", 0) == 0) {
      copts.cache.dir = a.substr(12);
    } else if (a.rfind("--compile-from=", 0) == 0) {
      compile_from = a.substr(15);
    } else if (a.rfind("--fleet=", 0) == 0) {
      fleet_endpoints = net::split_endpoint_list(a.substr(8));
    } else if (a == "--fleet-snapshot" || a == "--fleet-snapshot=json") {
      fleet_snapshot = true;
    } else if (a.rfind("--fleet-interval=", 0) == 0) {
      fleet_interval_ms = std::max(10, std::atoi(a.c_str() + 17));
    } else if (a.rfind("--slo=", 0) == 0) {
      slo_path = a.substr(6);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "lmc: unknown flag " << a << "\n";
      return usage();
    } else {
      path = a;
    }
  }

  // Fleet snapshot mode is standalone: no .lime source, no compile — just
  // the scrape-merge-judge cycle against live endpoints, JSON on stdout.
  // CI and the future balancer both consume this.
  if (fleet_snapshot) {
    if (fleet_endpoints.empty()) {
      std::cerr << "lmc: --fleet-snapshot needs --fleet=host:port,..\n";
      return 2;
    }
    std::vector<obs::SloRule> rules;
    if (!slo_path.empty()) {
      std::ifstream sin(slo_path);
      if (!sin) {
        std::cerr << "lmc: cannot read SLO rules: " << slo_path << "\n";
        return 2;
      }
      std::stringstream ss;
      ss << sin.rdbuf();
      std::string err;
      if (!obs::parse_slo_rules(ss.str(), &rules, &err)) {
        std::cerr << "lmc: bad SLO rules (" << slo_path << "): " << err
                  << "\n";
        return 2;
      }
    }
    obs::SloWatchdog watchdog(rules);
    net::TelemetryScraper::Options sopts;
    sopts.interval_ms = fleet_interval_ms;
    sopts.timeout_ms = std::max(250, fleet_interval_ms);
    net::FleetCheckResult result =
        net::run_fleet_check(fleet_endpoints, &watchdog, 3, sopts);
    std::cout << result.snapshot.to_json() << "\n";
    for (const obs::SloViolation& v : result.violations) {
      std::cerr << "lmc: SLO violation: " << v.endpoint << ": " << v.rule
                << " (value " << v.value << ")\n";
    }
    if (result.snapshot.up == 0) {
      std::cerr << "lmc: no endpoint up\n";
      return 1;
    }
    return result.violations.empty() ? 0 : 1;
  }

  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "lmc: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  copts.fifo_capacity = fifo_capacity;

  // --explain needs trace events even when the user didn't ask for a trace
  // file. Installed *before* compilation so cache decisions (cache-hit/
  // cache-miss/cache-store instants) land in the same trace as the run.
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!trace_path.empty() || !explain_mode.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    recorder->install();
  }

  // Compile service: ask an lmdev peer for each artifact by content key
  // before compiling it locally. Strictly an accelerator — any failure
  // falls back to the local compile.
  std::unique_ptr<net::CompileServiceClient> compile_service;
  if (!compile_from.empty()) {
    std::string host;
    uint16_t port = 0;
    try {
      net::parse_endpoint(compile_from, &host, &port);
    } catch (const std::exception& e) {
      std::cerr << "lmc: bad --compile-from endpoint: " << e.what() << "\n";
      return usage();
    }
    compile_service = std::make_unique<net::CompileServiceClient>(host, port);
    copts.remote_fetch = [&compile_service](uint64_t key,
                                            const std::string& backend,
                                            const std::string& task_id) {
      return compile_service->fetch(key, backend, task_id);
    };
  }

  auto program = runtime::compile(buf.str(), copts);

  if (!analyze_mode.empty()) {
    // Fold the structured suitability decisions in as LM4xx notes so one
    // engine provides ordering and deduplication for the whole report.
    DiagnosticEngine all = program->diags;
    for (const auto& f : program->suitability) {
      all.report(Severity::kNote, f.code, f.loc,
                 std::string("[") + runtime::to_string(f.device) + "] " +
                     f.task_id + ": " + f.reason);
    }
    if (analyze_mode == "json") {
      std::ostringstream os;
      os << "{\"diagnostics\": [";
      bool first = true;
      for (const auto& d : all.sorted()) {
        if (!first) os << ",";
        first = false;
        os << "\n  {\"code\": \"" << obs::json_escape(d.code)
           << "\", \"severity\": \"" << lm::to_string(d.severity)
           << "\", \"line\": " << d.loc.line
           << ", \"col\": " << d.loc.column << ", \"message\": \""
           << obs::json_escape(d.message) << "\"}";
      }
      os << (first ? "]" : "\n]");
      os << ",\n\"deadlock\": [";
      first = true;
      for (const auto& rep : program->capacity_reports) {
        if (!first) os << ",";
        first = false;
        std::string name = rep.graph && rep.graph->enclosing
                               ? rep.graph->enclosing->qualified_name()
                               : "<graph>";
        os << "\n  {\"graph\": \"" << obs::json_escape(name)
           << "\", \"line\": " << rep.loc.line
           << ", \"proven\": " << (rep.proven ? "true" : "false")
           << ", \"configured_capacity\": " << rep.configured_capacity
           << ", \"min_safe_capacity\": " << rep.min_safe_capacity
           << ", \"edges\": [";
        for (size_t e = 0; e < rep.edges.size(); ++e) {
          if (e) os << ", ";
          os << "{\"label\": \"" << obs::json_escape(rep.edges[e].label)
             << "\", \"push\": " << rep.edges[e].push
             << ", \"pop\": " << rep.edges[e].pop
             << ", \"min_capacity\": " << rep.edges[e].min_capacity << "}";
        }
        os << "]}";
      }
      os << (first ? "]" : "\n]");
      os << ",\n\"static_costs\": [";
      first = true;
      for (const auto& est : program->static_costs.estimates) {
        if (!first) os << ",";
        first = false;
        os << "\n  {\"task\": \"" << obs::json_escape(est.task_id)
           << "\", \"device\": \"" << est.device
           << "\", \"us_per_elem\": " << est.us_per_elem
           << ", \"bounded\": " << (est.bounded ? "true" : "false")
           << ", \"ops_per_fire\": " << est.ops_per_fire << "}";
      }
      os << (first ? "]" : "\n]") << "}\n";
      std::cout << os.str();
    } else {
      std::cout << all.to_string();
    }
    if (program->diags.has_errors()) return 1;
    if (strict && program->diags.warning_count() > 0) return 1;
    return 0;
  }

  if (!program->ok()) {
    std::cerr << program->diags.to_string();
    return 1;
  }

  if (static_cost) {
    std::cout << "static cost estimates (abstract interpretation, "
                 "cost_estimate.h):\n";
    if (program->static_costs.estimates.empty()) {
      std::cout << "  (no task graphs discovered)\n";
      return 0;
    }
    std::printf("%-40s %-6s %12s %10s %9s\n", "task", "device", "us/elem",
                "ops/fire", "bounded");
    for (const auto& e : program->static_costs.estimates) {
      std::printf("%-40s %-6s %12.4f %10.1f %9s\n", e.task_id.c_str(),
                  e.device.c_str(), e.us_per_elem, e.ops_per_fire,
                  e.bounded ? "yes" : "no");
    }
    return 0;
  }
  // Warnings still surface.
  if (!quiet && program->diags.error_count() == 0 &&
      !program->diags.diagnostics().empty()) {
    std::cerr << program->diags.to_string();
  }
  if (strict && program->diags.warning_count() > 0) {
    std::cerr << "lmc: failing on warnings (--strict)\n";
    return 1;
  }

  if (!quiet) {
    for (const auto& line : program->backend_log) {
      std::cout << line << "\n";
    }
    if (program->cache) {
      std::cout << "# cache: " << program->cache->summary() << "\n";
    }
    if (compile_service) {
      std::cout << "# compile-from " << compile_service->endpoint() << ": "
                << compile_service->fetched() << " fetched, "
                << compile_service->failed() << " missed\n";
    }
  }

  if (!emit_dir.empty()) {
    auto entries = runtime::write_artifact_bundle(*program, emit_dir);
    std::cout << "wrote " << entries.size() << " artifact(s) to " << emit_dir
              << "\n";
    return 0;
  }
  if (emit == "graphs") {
    for (const auto& g : program->graphs.graphs) {
      std::cout << g.enclosing->qualified_name() << ": " << g.to_string()
                << "\n";
    }
    return 0;
  }
  if (emit == "bytecode") {
    std::cout << program->bytecode->disassemble();
    return 0;
  }
  if (emit == "opencl" || emit == "verilog") {
    auto want = emit == "opencl" ? runtime::DeviceKind::kGpu
                                 : runtime::DeviceKind::kFpga;
    for (const auto* m : program->store.manifests()) {
      if (m->device != want) continue;
      std::cout << "// ==== " << m->task_id << " ====\n"
                << m->artifact_text << "\n";
    }
    return 0;
  }
  if (!emit.empty()) {
    std::cerr << "lmc: unknown --emit kind '" << emit << "'\n";
    return usage();
  }

  if (run_entry.empty()) {
    if (!quiet) {
      for (const auto* m : program->store.manifests()) {
        std::cout << m->to_string() << "\n";
      }
    }
    return 0;
  }

  // Build the single array argument.
  std::vector<bc::Value> args;
  if (!ints_arg.empty()) {
    std::vector<int32_t> vals;
    for (const auto& s : split(ints_arg, ',')) {
      vals.push_back(static_cast<int32_t>(std::stol(s)));
    }
    args.push_back(bc::Value::array(bc::make_i32_array(std::move(vals), true)));
  } else if (!floats_arg.empty()) {
    std::vector<float> vals;
    for (const auto& s : split(floats_arg, ',')) {
      vals.push_back(std::stof(s));
    }
    args.push_back(bc::Value::array(bc::make_f32_array(std::move(vals), true)));
  } else if (!bits_arg.empty()) {
    // MSB-first, like a Lime bit literal.
    std::vector<uint8_t> vals(bits_arg.size());
    for (size_t i = 0; i < bits_arg.size(); ++i) {
      vals[i] = bits_arg[bits_arg.size() - 1 - i] == '1';
    }
    args.push_back(bc::Value::array(bc::make_bit_array(std::move(vals), true)));
  }

  flight_path = util::resolve_output_path(flight_path);

  runtime::RuntimeConfig rc;
  rc.placement = placement;
  rc.enable_resubstitution = enable_resub;
  rc.enable_calibration = !no_calibration;
  if (fifo_capacity > 0) rc.fifo_capacity = static_cast<size_t>(fifo_capacity);
  rc.flight_dump_path = flight_path;
  rc.remote_endpoints = remote_endpoints;
  if (device_batch > 0) rc.device_batch = device_batch;
  rc.worker_threads = workers;
  rc.scheduler_seed = sched_seed;
  runtime::LiquidRuntime rt(*program, rc);

  net::AttachResult att;
  if (!remote_endpoints.empty()) {
    att = net::attach_remote_devices(rt, *program);
    for (const auto& err : att.errors) {
      std::cerr << "lmc: warning: remote " << err << " (continuing local)\n";
    }
    if (!quiet && att.artifacts > 0) {
      std::cout << "# attached " << att.artifacts
                << " remote artifact(s) from ";
      for (size_t i = 0; i < att.endpoints_ok.size(); ++i) {
        std::cout << (i ? ", " : "") << att.endpoints_ok[i];
      }
      std::cout << "\n";
    }
  }

  // Live telemetry exporter: runtime counters + live FIFO/task gauges +
  // one collector and health component per attached remote session.
  // Declared after `rt`/`att` so the exporter thread stops before anything
  // it scrapes is torn down.
  obs::TelemetryHub hub;
  std::unique_ptr<net::TelemetryServer> telemetry;
  if (telemetry_port >= 0) {
    hub.add_metrics(&rt.metrics());
    hub.add_collector([&rt](std::vector<obs::GaugeSample>& out) {
      rt.collect_telemetry(out);
    });
    if (program->cache) {
      // cache.hits/misses/stores/evictions/errors plus live byte/entry
      // gauges; the cache outlives the hub (owned by the program).
      hub.add_metrics(&program->cache->metrics());
      auto pc = program->cache;
      hub.add_collector([pc](std::vector<obs::GaugeSample>& out) {
        pc->collect_telemetry(out);
      });
    }
    for (const auto& session : att.sessions) {
      hub.add_collector([session](std::vector<obs::GaugeSample>& out) {
        session->collect_telemetry(out);
      });
      hub.add_histograms([session](std::vector<obs::HistogramSample>& out) {
        session->collect_histograms(out);
      });
      hub.add_health([session](std::vector<obs::HealthComponent>& out) {
        bool up = session->alive();
        out.push_back({"remote:" + session->endpoint(), up,
                       up ? "" : "endpoint down"});
      });
    }
    net::TelemetryServer::Options topts;
    topts.port = static_cast<uint16_t>(telemetry_port);
    telemetry = std::make_unique<net::TelemetryServer>(hub, topts);
    telemetry->start();
    // Printed and flushed even under --quiet: the harness contract for
    // parsing an ephemeral port, same as lmdev's endpoint line.
    std::cout << "# telemetry on " << telemetry->endpoint() << std::endl;
  }

  try {
    bc::Value out = rt.call(run_entry, std::move(args));
    std::cout << out.to_string() << "\n";
    if (!quiet) {
      const auto& stats = rt.stats();
      for (const auto& s : stats.substitutions) {
        std::cout << "# " << s.task_ids << " -> "
                  << runtime::to_string(s.device)
                  << (s.remote ? "@" + s.endpoint : "")
                  << (s.fused ? " (fused)" : "") << "\n";
      }
      for (const auto& r : stats.resubstitutions) {
        std::cout << "# " << r.task_ids << " re-substituted "
                  << runtime::to_string(r.from) << " -> "
                  << runtime::to_string(r.to) << " at batch " << r.at_batch
                  << " (" << r.reason << ")\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "lmc: runtime error: " << e.what() << "\n";
    if (!flight_path.empty() && rt.metrics().value("flight.dumps") > 0) {
      std::cerr << "lmc: flight recorder snapshot -> " << flight_path << "\n";
    }
    return 1;
  }

  // Resolve pending critical-path attributions before the recorder goes
  // away: the analysis is lazy and reads the installed recorder's events.
  std::vector<obs::Attribution> atts;
  if (recorder && (!explain_mode.empty() || !report_mode.empty())) {
    atts = rt.attributions();
  }
  if (recorder) {
    recorder->uninstall();
    if (!trace_path.empty()) {
      std::ofstream tf(trace_path);
      if (!tf) {
        std::cerr << "lmc: cannot write " << trace_path << "\n";
        return 1;
      }
      tf << recorder->chrome_trace_json();
      if (!quiet) {
        std::cout << "# trace: " << recorder->event_count()
                  << " event(s) from " << recorder->thread_count()
                  << " thread(s) -> " << trace_path << "\n";
      }
    }
  }
  if (!explain_mode.empty()) {
    if (explain_mode == "json") {
      // Structural rendering under a deterministic seed: byte-identical
      // across replays (no durations, which real time perturbs).
      const bool structural = sched_seed != 0;
      std::string out = "{\"attributions\":[";
      for (size_t i = 0; i < atts.size(); ++i) {
        if (i) out += ',';
        out += atts[i].to_json(structural);
      }
      out += "]}";
      std::cout << out << "\n";
    } else if (atts.empty()) {
      std::cout << "# explain: no executor graph runs to attribute\n";
    } else {
      for (const auto& a : atts) std::cout << a.to_text();
    }
  }
  if (want_metrics) {
    std::cout << "# metrics: " << rt.metrics().summary() << "\n";
  }
  if (report_mode == "json") {
    std::cout << rt.report().to_json() << "\n";
  } else if (!report_mode.empty()) {
    std::cout << rt.report().to_text();
  }
  return 0;
}
