// lmdev — the Liquid Metal device server.
//
// Compiles a Lime source file and serves its device artifacts over TCP so
// another process's runtime can substitute them remotely (DESIGN.md §9):
//
//   lmdev program.lime                 serve on an ephemeral port
//   lmdev program.lime --port 7411     serve on a fixed port
//   lmdev program.lime --no-fpga       serve only the GPU artifacts
//   lmdev program.lime --fail-after N  crash (drop every connection) after
//                                      serving N batches — fault-injection
//                                      hook for the fallback soak tests
//   lmdev program.lime --telemetry-port N
//                                      also serve /metrics, /healthz and
//                                      /flight over HTTP on that port
//                                      (0 = ephemeral; line printed flushed)
//   lmdev program.lime --cache=rw      compile through the artifact cache;
//                                      every keyed artifact then doubles as
//                                      a compile-service entry that an
//                                      lmc --compile-from=host:port peer can
//                                      fetch by content key (DESIGN.md §14)
//
// The client must have compiled the *same* program: the hello exchange
// compares FNV-1a fingerprints over the CPU-artifact manifests and refuses
// mismatched peers. The port line below is printed (and flushed) even under
// --quiet so harnesses can parse the endpoint.
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "cache/artifact_cache.h"
#include "net/server.h"
#include "net/telemetry_http.h"
#include "runtime/liquid_compiler.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int usage() {
  std::cerr << "usage: lmdev <file.lime> [--port N] [--no-gpu] [--no-fpga]\n"
               "             [--fail-after N] [--telemetry-port N] [--quiet]\n"
               "             [--telemetry-compat]\n"
               "             [--cache[=off|ro|rw]] [--cache-dir=<dir>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lm;
  if (argc < 2) return usage();
  std::string path;
  net::DeviceServer::Options sopts;
  runtime::CompileOptions copts;
  bool quiet = false;
  int telemetry_port = -1;  // <0 → exporter off; 0 → ephemeral port
  // One release of overlap for the pre-ISSUE-10 exec_p50/p99 gauges; the
  // native lm_server_exec_us histogram is always exported.
  bool telemetry_compat = false;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "lmdev: " << what << " needs a value\n";
        exit(2);
      }
      return argv[++i];
    };
    if (a == "--port") {
      sopts.port = static_cast<uint16_t>(std::stoul(next("--port")));
    } else if (a == "--fail-after") {
      sopts.fail_after = std::stoull(next("--fail-after"));
    } else if (a == "--telemetry-port") {
      telemetry_port = static_cast<int>(std::stoul(next("--telemetry-port")));
    } else if (a.rfind("--telemetry-port=", 0) == 0) {
      telemetry_port = static_cast<int>(std::stoul(a.substr(17)));
    } else if (a == "--telemetry-compat") {
      telemetry_compat = true;
    } else if (a == "--no-gpu") {
      copts.enable_gpu = false;
    } else if (a == "--no-fpga") {
      copts.enable_fpga = false;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--cache") {
      copts.cache.mode = cache::CacheMode::kReadWrite;
    } else if (a.rfind("--cache=", 0) == 0) {
      auto m = cache::parse_cache_mode(a.substr(8));
      if (!m) {
        std::cerr << "lmdev: --cache takes 'off', 'ro' or 'rw'\n";
        return usage();
      }
      copts.cache.mode = *m;
    } else if (a.rfind("--cache-dir=", 0) == 0) {
      copts.cache.dir = a.substr(12);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "lmdev: unknown flag " << a << "\n";
      return usage();
    } else {
      path = a;
    }
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "lmdev: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto program = runtime::compile(buf.str(), copts);
  if (!program->ok()) {
    std::cerr << program->diags.to_string();
    return 1;
  }

  try {
    net::DeviceServer server(*program, sopts);
    server.start();
    // The endpoint line is the harness contract: printed and flushed even
    // under --quiet so a parent process can parse the ephemeral port.
    std::cout << "lmdev: serving " << server.artifact_count()
              << " artifact(s) on " << server.endpoint() << std::endl;
    if (server.compile_service_entries() > 0) {
      // Compiled with caching: every keyed artifact is also addressable
      // by content key (kArtifactGet), i.e. this lmdev doubles as a
      // compile service for lmc --compile-from.
      std::cout << "lmdev: compile service: "
                << server.compile_service_entries()
                << " artifact(s) by content key" << std::endl;
    }

    // Telemetry exporter: the server's own registry, its live gauges
    // (active connections) and the native execute-latency histogram
    // (lm_server_exec_us — --telemetry-compat re-adds the old p50/p99
    // gauges); health goes degraded once a --fail-after crash fires.
    obs::TelemetryHub hub;
    std::unique_ptr<net::TelemetryServer> telemetry;
    if (telemetry_port >= 0) {
      hub.add_metrics(&server.metrics());
      hub.add_collector(
          [&server, telemetry_compat](std::vector<obs::GaugeSample>& out) {
            server.collect_telemetry(out, telemetry_compat);
          });
      hub.add_histograms(
          [&server](std::vector<obs::HistogramSample>& out) {
            server.collect_histograms(out);
          });
      if (program->cache) {
        hub.add_metrics(&program->cache->metrics());
        auto pc = program->cache;
        hub.add_collector([pc](std::vector<obs::GaugeSample>& out) {
          pc->collect_telemetry(out);
        });
      }
      hub.add_health([&server](std::vector<obs::HealthComponent>& out) {
        bool up = !server.crashed();
        out.push_back(
            {"device_server", up, up ? "" : "crashed (fail-after)"});
      });
      net::TelemetryServer::Options topts;
      topts.port = static_cast<uint16_t>(telemetry_port);
      telemetry = std::make_unique<net::TelemetryServer>(hub, topts);
      telemetry->start();
      // Flushed even under --quiet: harness contract for ephemeral ports.
      std::cout << "lmdev: telemetry on " << telemetry->endpoint()
                << std::endl;
    }
    if (!quiet) {
      std::cout << "lmdev: program fingerprint " << std::hex
                << server.fingerprint() << std::dec << "\n";
      if (program->cache) {
        std::cout << "lmdev: cache: " << program->cache->summary() << "\n";
      }
      if (sopts.fail_after > 0) {
        std::cout << "lmdev: will crash after " << sopts.fail_after
                  << " batch(es)\n";
      }
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (!g_stop.load() && !server.crashed()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (server.crashed() && !quiet) {
      std::cout << "lmdev: crashed (fail-after) having served "
                << server.requests_served() << " batch(es)\n";
    }
    server.stop();
  } catch (const std::exception& e) {
    std::cerr << "lmdev: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
