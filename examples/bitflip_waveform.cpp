// Reproduces Figure 4 (bottom): the taskFlip task graph co-executing with
// the RTL simulator, driven by 9 input bits, with the resulting waveform
// written as a VCD file (viewable in GTKWave) and the read/compute/publish
// timing printed.
//
//   $ ./bitflip_waveform [out.vcd]
#include <fstream>
#include <iostream>

#include "fpga/device.h"
#include "fpga/synth.h"
#include "fpga/verilog_emit.h"
#include "lime/frontend.h"

namespace {
const char* kSource = R"(
public value enum bit {
  zero, one;
  public bit ~ this { return this == zero ? one : zero; }
}
class Bitflip {
  local static bit flip(bit b) { return ~b; }
}
)";
}  // namespace

int main(int argc, char** argv) {
  using namespace lm;
  std::string vcd_path = argc > 1 ? argv[1] : "bitflip.vcd";

  auto fr = lime::compile_source(kSource);
  if (!fr.ok()) {
    std::cerr << fr.diags.to_string();
    return 1;
  }
  const lime::MethodDecl* flip =
      fr.program->find_class("Bitflip")->find_method("flip");

  // Synthesize the Fig. 4 module (the non-pipelined FSM the paper shows).
  auto artifact = fpga::synthesize_filter(*flip);
  if (!artifact.ok()) {
    std::cerr << "synthesis declined: " << artifact.exclusion_reason << "\n";
    return 1;
  }
  std::cout << "=== Verilog artifact ===\n" << artifact.verilog << "\n";

  fpga::FpgaFilter filter(std::move(artifact));
  filter.enable_waveform();

  // "The example is driven with 9 input bits" (§5).
  std::vector<uint8_t> bits = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  serde::CValue in = serde::CValue::make(bc::ElemCode::kBit, true, bits.size());
  for (size_t i = 0; i < bits.size(); ++i) in.bytes()[i] = bits[i];

  fpga::FpgaRunStats stats;
  serde::CValue out = filter.process(in, &stats);

  std::cout << "=== Stream ===\n  in  : ";
  for (uint8_t b : bits) std::cout << int(b);
  std::cout << "\n  out : ";
  for (size_t i = 0; i < out.count; ++i) std::cout << int(out.bytes()[i]);
  std::cout << "\n\n=== Timing (paper: 'one cycle to read, one cycle to "
               "compute, and one cycle to publish') ===\n";
  std::cout << "  first-output latency : " << stats.first_output_latency
            << " cycles\n";
  std::cout << "  inputs accepted      : " << stats.inputs_accepted << "\n";
  std::cout << "  outputs produced     : " << stats.outputs_produced << "\n";
  std::cout << "  total cycles         : " << stats.cycles
            << "  (II = " << filter.ports().initiation_interval << ")\n";

  std::ofstream vcd(vcd_path);
  vcd << filter.waveform();
  std::cout << "\nwaveform written to " << vcd_path
            << " (clock period 10ns; inspect inReady/inData0/outReady as in "
               "Fig. 4)\n";

  // The generated self-checking testbench, runnable in any Verilog
  // simulator (the "generated testbench" of HLS flows, §6).
  std::vector<uint64_t> stim(bits.begin(), bits.end());
  std::string tb =
      fpga::emit_testbench(filter.module(), filter.ports().in_data, {stim});
  std::string tb_path = vcd_path + ".tb.v";
  std::ofstream tbf(tb_path);
  tbf << tb;
  std::cout << "testbench written to " << tb_path << "\n";
  return 0;
}
