// Mandelbrot rendered as ASCII art, computed by a Lime map operator
// offloaded to the simulated GPU — the "index-array map" idiom the GPU
// suite uses for grid computations.
//
//   $ ./mandelbrot_ascii [width] [height]
#include <iostream>

#include "runtime/liquid_runtime.h"
#include "workloads/workloads.h"

namespace {
const char* kSource = R"(
class Mandel {
  local static int escape(int idx, int width, float x0, float y0,
                          float dx, float dy, int maxIter) {
    int px = idx % width;
    int py = idx / width;
    float cr = x0 + dx * px;
    float ci = y0 + dy * py;
    float zr = 0.0f;
    float zi = 0.0f;
    int it = 0;
    while (it < maxIter && zr * zr + zi * zi < 4.0f) {
      float nzr = zr * zr - zi * zi + cr;
      zi = 2.0f * zr * zi + ci;
      zr = nzr;
      it += 1;
    }
    return it;
  }
  static int[[]] render(int[[]] idx, int width, float x0, float y0,
                        float dx, float dy, int maxIter) {
    return Mandel @ escape(idx, width, x0, y0, dx, dy, maxIter);
  }
}
)";
}  // namespace

int main(int argc, char** argv) {
  using namespace lm;
  int width = argc > 1 ? std::stoi(argv[1]) : 100;
  int height = argc > 2 ? std::stoi(argv[2]) : 34;
  const int max_iter = 96;

  workloads::register_native_kernels();
  auto program = runtime::compile(kSource);
  if (!program->ok()) {
    std::cerr << program->diags.to_string();
    return 1;
  }
  runtime::LiquidRuntime rt(*program);

  std::vector<int32_t> idx(static_cast<size_t>(width) *
                           static_cast<size_t>(height));
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int32_t>(i);

  bc::Value out = rt.call(
      "Mandel.render",
      {bc::Value::array(bc::make_i32_array(idx, true)), bc::Value::i32(width),
       bc::Value::f32(-2.2f), bc::Value::f32(-1.2f),
       bc::Value::f32(3.0f / static_cast<float>(width)),
       bc::Value::f32(2.4f / static_cast<float>(height)),
       bc::Value::i32(max_iter)});

  static const char kShades[] = " .:-=+*#%@";
  const auto& a = *out.as_array();
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      int it = bc::array_get(a, static_cast<size_t>(y) *
                                    static_cast<size_t>(width) +
                                    static_cast<size_t>(x))
                   .as_i32();
      int shade = it >= max_iter ? 9 : (it * 9) / max_iter;
      std::cout << kShades[shade];
    }
    std::cout << "\n";
  }
  std::cout << "(computed " << idx.size() << " pixels via "
            << (rt.stats().maps_accelerated ? "GPU map offload"
                                            : "the interpreter")
            << ")\n";
  return 0;
}
