// A streaming sensor-conditioning pipeline co-executed across devices: the
// scenario the paper's task graphs target — a chain of strongly isolated
// filters with relocation brackets, scheduled as threads with FIFO
// connections, and substituted per the runtime's placement policy.
//
// The pipeline: raw ADC counts → scale to millivolts → clamp to range →
// remove DC offset. Runs the same graph under all four placements and
// shows that the outputs match while the substitution decisions differ.
//
//   $ ./sensor_pipeline [n]
#include <iostream>

#include "runtime/liquid_runtime.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {
const char* kSource = R"(
class Sensor {
  local static int toMillivolts(int raw) { return raw * 5 / 4; }
  local static int clamp(int mv) {
    return Math.min(Math.max(mv, -2500), 2500);
  }
  local static int removeOffset(int mv) { return mv - 37; }
  static int[[]] condition(int[[]] raw) {
    int[] cooked = new int[raw.length];
    var g = raw.source(1)
      => ([ task toMillivolts => task clamp => task removeOffset ])
      => cooked.<int>sink();
    g.finish();
    return new int[[]](cooked);
  }
}
)";
}  // namespace

int main(int argc, char** argv) {
  using namespace lm;
  size_t n = argc > 1 ? std::stoul(argv[1]) : 4096;

  auto program = runtime::compile(kSource);
  if (!program->ok()) {
    std::cerr << program->diags.to_string();
    return 1;
  }
  std::cout << "=== Backend decisions ===\n";
  for (const auto& line : program->backend_log) {
    std::cout << "  " << line << "\n";
  }

  // Synthetic ADC samples.
  SplitMix64 rng(99);
  std::vector<int32_t> raw(n);
  for (auto& v : raw) v = static_cast<int32_t>(rng.next_range(-3000, 3000));
  bc::Value input = bc::Value::array(bc::make_i32_array(raw, true));

  bc::Value reference;
  std::cout << "\n=== Placements ===\n";
  for (auto [placement, label] :
       {std::pair{runtime::Placement::kCpuOnly, "cpu-only "},
        std::pair{runtime::Placement::kGpuOnly, "gpu-only "},
        std::pair{runtime::Placement::kFpgaOnly, "fpga-only"},
        std::pair{runtime::Placement::kAuto, "auto     "}}) {
    runtime::RuntimeConfig rc;
    rc.placement = placement;
    runtime::LiquidRuntime rt(*program, rc);
    bc::Value out = rt.call("Sensor.condition", {input});
    if (reference.is_void()) reference = out;
    bool same = out.equals(reference);
    std::cout << "  " << label << " : ";
    for (const auto& s : rt.stats().substitutions) {
      std::cout << s.task_ids << "->" << runtime::to_string(s.device)
                << (s.fused ? "(fused) " : " ");
    }
    std::cout << (same ? " [outputs match]" : " [MISMATCH!]") << "\n";
    if (!same) return 1;
  }

  const auto& out = *reference.as_array();
  std::cout << "\nconditioned " << out.size() << " samples; first five: ";
  for (size_t i = 0; i < 5 && i < out.size(); ++i) {
    std::cout << bc::array_get(out, i).as_i32() << " ";
  }
  std::cout << "\n";
  return 0;
}
