// Black-Scholes option pricing with CPU/GPU co-execution — the map-operator
// offload path that produced the paper's 12×–431× end-to-end GPU speedups
// (§2.2). Prices the same batch on the bytecode interpreter and on the
// simulated GPU, checks they agree, and reports the speedup.
//
//   $ ./blackscholes_gpu [n]
#include <chrono>
#include <iostream>

#include "runtime/liquid_runtime.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace lm;
  using Clock = std::chrono::steady_clock;
  size_t n = argc > 1 ? std::stoul(argv[1]) : 100000;

  workloads::register_native_kernels();
  const workloads::Workload* bs = nullptr;
  for (const auto& w : workloads::gpu_suite()) {
    if (w.name == "blackscholes") bs = &w;
  }
  auto program = runtime::compile(bs->lime_source);
  if (!program->ok()) {
    std::cerr << program->diags.to_string();
    return 1;
  }
  auto args = bs->make_args(n, /*seed=*/2012);

  auto time_run = [&](runtime::Placement p, bc::Value* out) {
    runtime::RuntimeConfig rc;
    rc.placement = p;
    runtime::LiquidRuntime rt(*program, rc);
    auto t0 = Clock::now();
    *out = rt.call(bs->entry, args);
    auto t1 = Clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  std::cout << "pricing " << n << " European calls (float32)\n";
  bc::Value cpu_out, gpu_out;
  double cpu_s = time_run(runtime::Placement::kCpuOnly, &cpu_out);
  double gpu_s = time_run(runtime::Placement::kAuto, &gpu_out);

  bool agree = workloads::results_match(cpu_out, gpu_out, 0.0);
  std::cout << "  cpu (bytecode interpreter) : " << cpu_s * 1e3 << " ms\n";
  std::cout << "  gpu (map offload)          : " << gpu_s * 1e3 << " ms\n";
  std::cout << "  end-to-end speedup         : " << cpu_s / gpu_s << "x\n";
  std::cout << "  results bit-identical      : " << (agree ? "yes" : "NO")
            << "\n";

  // A sample of the prices.
  const auto& prices = *gpu_out.as_array();
  std::cout << "  sample prices: ";
  for (size_t i = 0; i < 5 && i < prices.size(); ++i) {
    std::cout << bc::array_get(prices, i).as_f32() << " ";
  }
  std::cout << "\n";
  return agree ? 0 : 1;
}
