// Quickstart: the complete Liquid Metal flow on the paper's Figure 1
// program — compile Lime source, inspect the generated artifacts, and
// co-execute the task graph with automatic substitution.
//
//   $ ./quickstart
#include <iostream>

#include "runtime/liquid_runtime.h"

namespace {

const char* kFigure1 = R"(
public value enum bit {
  zero, one;
  public bit ~ this {
    return this == zero ? one : zero;
  }
}

public class Bitflip {
  local static bit flip(bit b) {
    return ~b;
  }
  local static bit[[]] mapFlip(bit[[]] input) {
    var flipped = Bitflip @ flip(input);
    return flipped;
  }
  static bit[[]] taskFlip(bit[[]] input) {
    bit[] result = new bit[input.length];
    var flipit = input.source(1)
      => ([ task flip ])
      => result.<bit>sink();
    flipit.finish();
    return new bit[[]](result);
  }
}
)";

std::string render_bits(const lm::bc::Value& v) {
  const auto& a = *v.as_array();
  std::string s;
  for (size_t i = a.size(); i-- > 0;) {  // MSB first, like a Lime bit literal
    s += lm::bc::array_get(a, i).as_bit() ? '1' : '0';
  }
  return s;
}

}  // namespace

int main() {
  using namespace lm;

  std::cout << "=== 1. Compile (Fig. 2 toolchain) ===\n";
  auto program = runtime::compile(kFigure1);
  if (!program->ok()) {
    std::cerr << program->diags.to_string();
    return 1;
  }
  for (const auto& line : program->backend_log) {
    std::cout << "  " << line << "\n";
  }

  std::cout << "\n=== 2. Artifact store (manifests) ===\n";
  for (const auto* m : program->store.manifests()) {
    std::cout << "  " << m->to_string() << "\n";
  }

  std::cout << "\n=== 3. Discovered task graphs (static shapes) ===\n";
  for (const auto& g : program->graphs.graphs) {
    std::cout << "  " << g.enclosing->qualified_name() << ": "
              << g.to_string() << "\n";
  }

  std::cout << "\n=== 4. Co-execution ===\n";
  runtime::LiquidRuntime rt(*program);
  // mapFlip(100b) — the paper's §2.2 example: expect 011b.
  bc::Value input3 = bc::Value::array(bc::make_bit_array({0, 0, 1}, true));
  bc::Value flipped = rt.call("Bitflip.mapFlip", {input3});
  std::cout << "  mapFlip(100b)  = " << render_bits(flipped) << "b\n";

  // taskFlip over the 9 bits of the Fig. 4 waveform.
  bc::Value input9 = bc::Value::array(
      bc::make_bit_array({1, 0, 1, 1, 0, 0, 1, 0, 1}, true));
  bc::Value out = rt.call("Bitflip.taskFlip", {input9});
  std::cout << "  taskFlip(" << render_bits(input9) << "b) = "
            << render_bits(out) << "b\n";

  std::cout << "\n=== 5. Substitution decisions (§4.2) ===\n";
  for (const auto& s : rt.stats().substitutions) {
    std::cout << "  " << s.task_ids << " -> "
              << runtime::to_string(s.device)
              << (s.fused ? " (fused segment)" : "") << "\n";
  }

  std::cout << "\n=== 6. The generated OpenCL artifact ===\n";
  auto* gpu = program->store.find("Bitflip.flip", runtime::DeviceKind::kGpu);
  std::cout << gpu->manifest().artifact_text << "\n";

  std::cout << "=== 7. The generated Verilog artifact ===\n";
  auto* fpga = program->store.find("Bitflip.flip", runtime::DeviceKind::kFpga);
  std::cout << fpga->manifest().artifact_text;
  return 0;
}
