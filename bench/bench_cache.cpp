// E12 — persistent artifact cache (DESIGN.md §14): cold vs warm compiles.
//
// A cold compile with --cache=rw pays the full Fig. 2 toolchain plus the
// store writes; a warm compile replays the frontend (the canonicalizer
// that produces the content keys) and then serves every backend artifact
// from disk. The summary reports both the end-to-end speedup and the
// compile-phase speedup (frontend subtracted from both sides) — the
// latter is the acceptance metric: everything the cache can skip, it
// must skip.
//
// Writes BENCH_cache.json next to the other BENCH_*.json trend files.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "bench/bench_util.h"
#include "cache/artifact_cache.h"
#include "lime/frontend.h"
#include "runtime/liquid_compiler.h"
#include "util/output_path.h"
#include "workloads/workloads.h"

namespace {

using namespace lm;
namespace fs = std::filesystem;

struct Program {
  const char* label;
  std::string source;
};

/// A synthesis-heavy pipeline: `stages` filters, each with an
/// `unroll`-iteration loop the FPGA backend fully unrolls into a deep
/// combinational datapath. Device compilation dominates this program's
/// toolchain time, which is exactly the work a warm cache must skip —
/// the ≥5× compile-phase acceptance number is measured here.
std::string deep_unrolled_source(int stages, int unroll) {
  std::string src = "class Deep {\n";
  for (int i = 0; i < stages; ++i) {
    std::string si = std::to_string(i);
    src += "  local static int f" + si +
           "(int x) {\n"
           "    int acc = x;\n"
           "    for (int i = 0; i < " +
           std::to_string(unroll) +
           "; i += 1) {\n"
           "      acc = acc * 3 + i + " +
           si +
           ";\n"
           "    }\n"
           "    return acc & 16383;\n"
           "  }\n";
  }
  src += "  static void run(int[[]] in, int[] out) {\n    var g = in.source(1)";
  for (int i = 0; i < stages; ++i) {
    src += " => ([ task f" + std::to_string(i) + " ])";
  }
  src += " => out.<int>sink();\n    g.finish();\n  }\n}\n";
  return src;
}

std::vector<Program> programs() {
  return {
      {"intpipe", workloads::pipeline_suite()[0].lime_source},
      {"blackscholes", workloads::gpu_suite()[3].lime_source},
      {"deep-unrolled", deep_unrolled_source(48, 128)},
  };
}

fs::path bench_dir(const std::string& label) {
  return fs::temp_directory_path() /
         ("lm-bench-cache-" + label + "-" + std::to_string(::getpid()));
}

runtime::CompileOptions rw_options(const fs::path& dir) {
  runtime::CompileOptions o;
  o.cache.mode = cache::CacheMode::kReadWrite;
  o.cache.dir = dir.string();
  return o;
}

void BM_WarmCompile(benchmark::State& state) {
  Program p = programs()[static_cast<size_t>(state.range(0))];
  fs::path dir = bench_dir(std::string("bm-") + p.label);
  fs::remove_all(dir);
  { auto prime = runtime::compile(p.source, rw_options(dir)); }  // populate
  for (auto _ : state) {
    auto cp = runtime::compile(p.source, rw_options(dir));
    benchmark::DoNotOptimize(cp.get());
  }
  fs::remove_all(dir);
  state.SetLabel(p.label);
}
BENCHMARK(BM_WarmCompile)->Arg(0)->Arg(1)->Arg(2);

void print_summary() {
  std::printf("\n=== E12: artifact cache, cold vs warm compile ===\n");
  lm::bench::Table table({"program", "off (ms)", "cold rw (ms)",
                          "warm rw (ms)", "e2e speedup",
                          "compile-phase speedup"});
  lm::bench::JsonReport json("cache");
  for (const Program& p : programs()) {
    fs::path dir = bench_dir(p.label);

    // Frontend alone: shared by every variant; subtracting it isolates
    // the backend (device-compiler) phase the cache is allowed to skip.
    double frontend_s = lm::bench::time_stats([&] {
      auto fr = lime::compile_source(p.source);
      benchmark::DoNotOptimize(fr.program.get());
    }).best_s;

    double off_s = lm::bench::time_stats([&] {
      auto cp = runtime::compile(p.source);
      benchmark::DoNotOptimize(cp.get());
    }).best_s;

    // Cold: every rep starts from an empty directory (the remove_all is
    // measured too, but is noise next to the device compilers).
    double cold_s = lm::bench::time_stats([&] {
      fs::remove_all(dir);
      auto cp = runtime::compile(p.source, rw_options(dir));
      benchmark::DoNotOptimize(cp.get());
    }).best_s;

    double warm_s = lm::bench::time_stats([&] {
      auto cp = runtime::compile(p.source, rw_options(dir));
      benchmark::DoNotOptimize(cp.get());
    }).best_s;
    fs::remove_all(dir);

    double e2e = warm_s > 0 ? off_s / warm_s : 0;
    double off_phase = off_s - frontend_s;
    double warm_phase = warm_s - frontend_s;
    double phase = warm_phase > 1e-9 ? off_phase / warm_phase : 0;
    table.row({p.label, lm::bench::fmt(off_s * 1e3),
               lm::bench::fmt(cold_s * 1e3), lm::bench::fmt(warm_s * 1e3),
               lm::bench::fmt(e2e), lm::bench::fmt(phase)});
    json.add(p.label, {{"frontend_ms", frontend_s * 1e3},
                       {"off_ms", off_s * 1e3},
                       {"cold_ms", cold_s * 1e3},
                       {"warm_ms", warm_s * 1e3},
                       {"e2e_speedup", e2e},
                       {"compile_phase_speedup", phase}});
  }
  table.print();

  const std::string json_file =
      util::resolve_output_path("BENCH_cache.json");
  if (json.write(json_file.c_str())) {
    std::printf("json: %s\n", json_file.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
