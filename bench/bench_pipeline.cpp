// E6 — pipeline parallelism (§2.2) and scheduler ablations:
//
//   * throughput vs pipeline depth (1–3 filters) under threaded executor
//     scheduling vs inline execution,
//   * FIFO capacity sweep (backpressure cost),
//   * fused-segment substitution vs per-filter substitution (the "prefers
//     a larger substitution" design choice of §4.2, ablated),
//   * E10: executor worker-pool scaling at 1/2/4/8 workers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>

#include "bench/bench_util.h"
#include "obs/trace.h"
#include "runtime/liquid_runtime.h"
#include "util/output_path.h"
#include "workloads/workloads.h"

namespace {

using namespace lm;

std::string pipeline_source(int depth) {
  std::string filters;
  std::string chain;
  const char* bodies[] = {"return 3 * x;", "return x + 13;",
                          "return (x >> 1) ^ x;"};
  for (int i = 0; i < depth; ++i) {
    filters += "  local static int f" + std::to_string(i) + "(int x) { " +
               bodies[i % 3] + " }\n";
    chain += "      => ([ task f" + std::to_string(i) + " ])\n";
  }
  return "class Pipe {\n" + filters +
         "  static int[[]] run(int[[]] input) {\n"
         "    int[] result = new int[input.length];\n"
         "    var g = input.source(1)\n" +
         chain +
         "      => result.<int>sink();\n"
         "    g.finish();\n"
         "    return new int[[]](result);\n"
         "  }\n"
         "}\n";
}

std::vector<bc::Value> make_input(size_t n) {
  std::vector<int32_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<int32_t>(i * 7 - 1000);
  return {bc::Value::array(bc::make_i32_array(std::move(v), true))};
}

void BM_DepthAndScheduling(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  bool threads = state.range(1) != 0;
  size_t n = 1u << 15;
  auto cp = runtime::compile(pipeline_source(depth));
  auto args = make_input(n);
  runtime::RuntimeConfig rc;
  rc.placement = runtime::Placement::kCpuOnly;  // isolate scheduling effects
  rc.use_threads = threads;
  for (auto _ : state) {
    runtime::LiquidRuntime rt(*cp, rc);
    benchmark::DoNotOptimize(rt.call("Pipe.run", args));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel((threads ? "threads" : "inline") + std::string("/depth=") +
                 std::to_string(depth));
}
BENCHMARK(BM_DepthAndScheduling)
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 0})->Args({2, 1})
    ->Args({3, 0})->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

void BM_FifoCapacity(benchmark::State& state) {
  size_t cap = static_cast<size_t>(state.range(0));
  size_t n = 1u << 15;
  auto cp = runtime::compile(pipeline_source(2));
  auto args = make_input(n);
  runtime::RuntimeConfig rc;
  rc.placement = runtime::Placement::kCpuOnly;
  rc.fifo_capacity = cap;
  for (auto _ : state) {
    runtime::LiquidRuntime rt(*cp, rc);
    benchmark::DoNotOptimize(rt.call("Pipe.run", args));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FifoCapacity)->Arg(2)->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_FusionAblation(benchmark::State& state) {
  bool fusion = state.range(0) != 0;
  size_t n = 1u << 15;
  workloads::register_native_kernels();
  auto cp = runtime::compile(pipeline_source(3));
  auto args = make_input(n);
  runtime::RuntimeConfig rc;
  rc.placement = runtime::Placement::kGpuOnly;
  rc.allow_fusion = fusion;
  for (auto _ : state) {
    runtime::LiquidRuntime rt(*cp, rc);
    benchmark::DoNotOptimize(rt.call("Pipe.run", args));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(fusion ? "fused-segment" : "per-filter");
}
BENCHMARK(BM_FusionAblation)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void print_summary() {
  std::printf("\n=== E6: pipeline scheduling summary (n = 32768) ===\n");
  lm::bench::Table table({"depth", "inline (ms)", "threads (ms)",
                          "gpu fused (ms)", "gpu per-filter (ms)"});
  lm::bench::JsonReport json("pipeline");
  size_t n = 1u << 15;
  for (int depth : {1, 2, 3}) {
    auto cp = runtime::compile(pipeline_source(depth));
    auto args = make_input(n);
    auto run = [&](const char* label, runtime::Placement p, bool threads,
                   bool fusion) {
      runtime::RuntimeConfig rc;
      rc.placement = p;
      rc.use_threads = threads;
      rc.allow_fusion = fusion;
      lm::bench::SampleStats st = lm::bench::time_stats([&] {
        runtime::LiquidRuntime rt(*cp, rc);
        rt.call("Pipe.run", args);
      });
      json.add("depth=" + std::to_string(depth) + "/" + label,
               {{"wall_ms", st.best_s * 1e3},
                {"p50_ms", st.p50_s * 1e3},
                {"p99_ms", st.p99_s * 1e3},
                {"reps", static_cast<double>(st.reps)}});
      return st.best_s;
    };
    table.row(
        {std::to_string(depth),
         lm::bench::fmt(
             run("inline", runtime::Placement::kCpuOnly, false, true) * 1e3),
         lm::bench::fmt(
             run("threads", runtime::Placement::kCpuOnly, true, true) * 1e3),
         lm::bench::fmt(
             run("gpu-fused", runtime::Placement::kGpuOnly, true, true) *
             1e3),
         lm::bench::fmt(run("gpu-per-filter", runtime::Placement::kGpuOnly,
                            true, false) *
                        1e3)});
  }
  table.print();

  // Observability overhead ablation (depth=3, fused GPU, threaded): the
  // flight-recorder + cost-model record path is always on and included in
  // the baseline; the rows below add an installed trace recorder (with
  // attribution bookkeeping off, then on — the *in-run* cost of
  // `lmc --explain`; the analysis itself is deferred to the first
  // consumer and measured separately below) and the mid-run
  // re-substitution check on top.
  {
    auto cp = runtime::compile(pipeline_source(3));
    auto args = make_input(n);
    auto timed = [&](const char* label, bool trace, bool attribution,
                     bool resub) {
      runtime::RuntimeConfig rc;
      rc.placement = runtime::Placement::kGpuOnly;
      rc.attribution = attribution;
      if (resub) {
        rc.placement = runtime::Placement::kAdaptive;
        rc.enable_resubstitution = true;
      }
      // Fresh recorder per rep: the attribution pass walks the recorder's
      // event snapshot at graph finalization, so reusing one recorder
      // across reps would charge rep k for k runs' worth of events — an
      // artifact of the harness, not of `lmc --explain` (one run, one
      // recorder).
      lm::bench::SampleStats st = lm::bench::time_stats([&] {
        obs::TraceRecorder recorder;
        if (trace) recorder.install();
        {
          runtime::LiquidRuntime rt(*cp, rc);
          rt.call("Pipe.run", args);
        }
        if (trace) recorder.uninstall();
      });
      json.add(std::string("overhead/") + label,
               {{"wall_ms", st.best_s * 1e3},
                {"p50_ms", st.p50_s * 1e3},
                {"p99_ms", st.p99_s * 1e3},
                {"reps", static_cast<double>(st.reps)}});
      return st.best_s;
    };
    double base = timed("baseline", false, false, false);
    double traced = timed("trace-installed", true, false, false);
    double explained = timed("explain", true, true, false);
    double resub = timed("resub-enabled", false, false, true);
    json.add("overhead/explain-vs-trace",
             {{"overhead_pct", (explained / traced - 1.0) * 100.0}});
    std::printf("observability overhead (depth=3 gpu): baseline %.3f ms, "
                "+trace %.1f%%, +explain %.1f%% (%.1f%% over trace), "
                "+resub(adaptive) %.1f%%\n",
                base * 1e3, (traced / base - 1.0) * 100.0,
                (explained / base - 1.0) * 100.0,
                (explained / traced - 1.0) * 100.0,
                (resub / base - 1.0) * 100.0);

    // The deferred analysis pass itself — what the first consumer
    // (`--explain`, report(), a telemetry scrape) pays after the run.
    {
      runtime::RuntimeConfig rc;
      rc.placement = runtime::Placement::kGpuOnly;
      obs::TraceRecorder recorder;
      recorder.install();
      runtime::LiquidRuntime rt(*cp, rc);
      rt.call("Pipe.run", args);
      auto t0 = std::chrono::steady_clock::now();
      auto atts = rt.attributions();
      double pass_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      recorder.uninstall();
      json.add("overhead/attribution-pass",
               {{"wall_ms", pass_ms},
                {"graphs", static_cast<double>(atts.size())}});
      std::printf("attribution pass (deferred, %zu graph(s)): %.3f ms\n",
                  atts.size(), pass_ms);
    }
  }

  // E10 — executor worker scaling: the same depth-3 pipeline over worker
  // pools of 1/2/4/8 threads (cpu-only so the measurement isolates the
  // event-driven executor, not device offload). A linear pipeline has at
  // most `depth+2` runnable tasks, so throughput should saturate once the
  // pool covers the pipeline width; more workers must not cost anything.
  {
    auto cp = runtime::compile(pipeline_source(3));
    auto args = make_input(n);
    std::printf("\n=== E10: executor worker scaling (depth=3, n = %zu) ===\n",
                n);
    lm::bench::Table wt({"workers", "wall (ms)", "p50 (ms)", "p99 (ms)"});
    for (size_t w : {1, 2, 4, 8}) {
      runtime::RuntimeConfig rc;
      rc.placement = runtime::Placement::kCpuOnly;
      rc.worker_threads = w;
      lm::bench::SampleStats st = lm::bench::time_stats([&] {
        runtime::LiquidRuntime rt(*cp, rc);
        rt.call("Pipe.run", args);
      });
      json.add("workers=" + std::to_string(w),
               {{"wall_ms", st.best_s * 1e3},
                {"p50_ms", st.p50_s * 1e3},
                {"p99_ms", st.p99_s * 1e3},
                {"reps", static_cast<double>(st.reps)}});
      wt.row({std::to_string(w), lm::bench::fmt(st.best_s * 1e3),
              lm::bench::fmt(st.p50_s * 1e3), lm::bench::fmt(st.p99_s * 1e3)});
    }
    wt.print();
  }

  const std::string json_file = util::resolve_output_path("BENCH_pipeline.json");
  if (json.write(json_file.c_str())) {
    std::printf("json: %s\n", json_file.c_str());
  }
  std::printf("fusion halves (or better) device batches by keeping the "
              "whole relocated region in one artifact (§4.2: prefer the "
              "larger substitution).\n");

  // One traced depth-3 threaded run, so the scheduling behavior measured
  // above can be inspected span by span (chrome://tracing / Perfetto).
  auto cp = runtime::compile(pipeline_source(3));
  auto args = make_input(n);
  runtime::RuntimeConfig rc;
  rc.placement = runtime::Placement::kCpuOnly;
  obs::TraceRecorder recorder;
  recorder.install();
  runtime::LiquidRuntime rt(*cp, rc);
  rt.call("Pipe.run", args);
  recorder.uninstall();
  const std::string trace_file =
      util::resolve_output_path("bench_pipeline_trace.json");
  std::ofstream(trace_file) << recorder.chrome_trace_json();
  std::printf("trace: %zu event(s) -> %s\n", recorder.event_count(),
              trace_file.c_str());
  std::printf("metrics: %s\n", rt.metrics().summary().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
