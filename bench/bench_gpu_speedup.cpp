// E5 — the paper's headline claim (§2.2): "We achieved end-to-end speedups
// of 12×–431× for a number of benchmarks co-executing between CPU and GPU."
//
// For every workload in the suite this harness measures the identical Lime
// program end to end (including marshaling and boundary crossings) in three
// configurations:
//   cpu       — bytecode interpretation only (the universal artifact),
//   gpu-ir    — simulated GPU executing compiled kernel IR,
//   gpu-nat   — simulated GPU running the pre-compiled native kernel (the
//               stand-in for the vendor OpenCL toolflow's machine code).
//
// Shape target (see EXPERIMENTS.md): accelerated runs win by one to three
// orders of magnitude, with the largest factors on compute-dense kernels
// (nbody, mandelbrot, black-scholes) and the smallest on memory-bound ones
// (vadd, saxpy) — the same ordering logic as the paper's 12×–431× range.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "runtime/liquid_runtime.h"
#include "workloads/workloads.h"

namespace {

using namespace lm;
using workloads::Workload;

size_t problem_size(const std::string& name) {
  if (name == "nbody") return 448;
  if (name == "matmul") return 4900;  // 70x70 cells
  if (name == "mandelbrot") return 12288;
  if (name == "blackscholes") return 16384;
  if (name == "conv1d") return 32768;
  return 1u << 18;  // saxpy, vadd, sumreduce
}

struct Config {
  const char* label;
  runtime::Placement placement;
  bool native;
};

const Config kConfigs[] = {
    {"cpu", runtime::Placement::kCpuOnly, false},
    {"gpu-ir", runtime::Placement::kAuto, false},
    {"gpu-nat", runtime::Placement::kAuto, true},
};

std::map<std::string, double>& timings() {
  static auto* t = new std::map<std::string, double>();
  return *t;
}

void bench_one(benchmark::State& state, const Workload& w, const Config& cfg) {
  if (cfg.native) workloads::register_native_kernels();
  runtime::CompileOptions copts;
  copts.use_native_kernels = cfg.native;
  auto cp = runtime::compile(w.lime_source, copts);
  if (!cp->ok()) {
    state.SkipWithError(cp->diags.to_string().c_str());
    return;
  }
  size_t n = problem_size(w.name);
  auto args = w.make_args(n, 2012);
  runtime::RuntimeConfig rc;
  rc.placement = cfg.placement;

  double best = 1e300;
  for (auto _ : state) {
    runtime::LiquidRuntime rt(*cp, rc);
    double t = lm::bench::time_once(
        [&] { benchmark::DoNotOptimize(rt.call(w.entry, args)); });
    state.SetIterationTime(t);
    if (t < best) best = t;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) *
                          static_cast<int64_t>(state.iterations()));
  state.counters["elems"] = static_cast<double>(n);
  timings()[w.name + "/" + cfg.label] = best;
}

void register_benchmarks() {
  for (const Workload& w : workloads::gpu_suite()) {
    for (const Config& cfg : kConfigs) {
      std::string name = "E5/" + w.name + "/" + cfg.label;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [&w, &cfg](benchmark::State& s) {
                                     bench_one(s, w, cfg);
                                   })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_speedup_table() {
  std::printf(
      "\n=== E5: end-to-end GPU speedups over CPU bytecode "
      "(paper: 12x-431x across its suite) ===\n");
  lm::bench::Table table({"workload", "n", "cpu (ms)", "gpu-ir (ms)",
                          "gpu-nat (ms)", "speedup ir", "speedup nat"});
  double min_nat = 1e300, max_nat = 0;
  for (const Workload& w : workloads::gpu_suite()) {
    auto cpu = timings().find(w.name + "/cpu");
    auto ir = timings().find(w.name + "/gpu-ir");
    auto nat = timings().find(w.name + "/gpu-nat");
    if (cpu == timings().end() || ir == timings().end() ||
        nat == timings().end()) {
      continue;
    }
    double s_ir = cpu->second / ir->second;
    double s_nat = cpu->second / nat->second;
    min_nat = std::min(min_nat, s_nat);
    max_nat = std::max(max_nat, s_nat);
    table.row({w.name, std::to_string(problem_size(w.name)),
               lm::bench::fmt(cpu->second * 1e3),
               lm::bench::fmt(ir->second * 1e3),
               lm::bench::fmt(nat->second * 1e3),
               lm::bench::fmt(s_ir, "x"), lm::bench::fmt(s_nat, "x")});
  }
  table.print();
  if (max_nat > 0) {
    std::printf("\nmeasured native-kernel speedup range: %.0fx - %.0fx\n",
                min_nat, max_nat);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  // The CPU-interpreter baselines run hundreds of ms per iteration; a low
  // default min-time keeps the whole suite regenerable in minutes while
  // still letting --benchmark_min_time override it.
  std::vector<char*> args(argv, argv + argc);
  std::string default_min = "--benchmark_min_time=0.05";
  bool has_min = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) {
      has_min = true;
    }
  }
  if (!has_min) args.push_back(default_min.data());
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_speedup_table();
  return 0;
}
