// E4 — Figure 4: the taskFlip task graph co-executing with the RTL
// simulator. Regenerates the waveform experiment as numbers:
//
//   * read/compute/publish latency (paper: 3 cycles, "the module I/O is
//     not fully pipelined"),
//   * initiation interval of the Fig. 4 FSM (3) vs the pipelined
//     microarchitecture (1) — the ablation of the paper's observation,
//   * RTL simulation throughput (bits/second through the simulated module).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "fpga/device.h"
#include "fpga/synth.h"
#include "lime/frontend.h"
#include "util/rng.h"

namespace {

using namespace lm;

const char* kSource = R"(
public value enum bit {
  zero, one;
  public bit ~ this { return this == zero ? one : zero; }
}
class Bitflip {
  local static bit flip(bit b) { return ~b; }
}
)";

fpga::FpgaCompileResult make_artifact(bool pipelined) {
  static lime::FrontendResult fr = lime::compile_source(kSource);
  const lime::MethodDecl* flip =
      fr.program->find_class("Bitflip")->find_method("flip");
  fpga::FpgaSynthOptions opts;
  opts.pipelined = pipelined;
  return fpga::synthesize_filter(*flip, opts);
}

serde::CValue make_bits(size_t n) {
  SplitMix64 rng(4);
  serde::CValue in = serde::CValue::make(bc::ElemCode::kBit, true, n);
  for (size_t i = 0; i < n; ++i) in.bytes()[i] = rng.next_bool();
  return in;
}

void BM_StreamThroughModule(benchmark::State& state) {
  bool pipelined = state.range(0) != 0;
  size_t n = static_cast<size_t>(state.range(1));
  fpga::FpgaFilter filter(make_artifact(pipelined));
  serde::CValue in = make_bits(n);
  fpga::FpgaRunStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.process(in, &stats));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["latency_cycles"] =
      static_cast<double>(stats.first_output_latency);
  state.counters["cycles_per_bit"] =
      static_cast<double>(stats.cycles) / static_cast<double>(n);
  state.SetLabel(pipelined ? "pipelined(II=1)" : "fig4-fsm(II=3)");
}
BENCHMARK(BM_StreamThroughModule)
    ->Args({0, 9})        // the literal Fig. 4 run: 9 bits, FSM
    ->Args({0, 1024})
    ->Args({0, 8192})
    ->Args({1, 9})
    ->Args({1, 1024})
    ->Args({1, 8192});

void BM_VcdCaptureOverhead(benchmark::State& state) {
  size_t n = 1024;
  serde::CValue in = make_bits(n);
  for (auto _ : state) {
    fpga::FpgaFilter filter(make_artifact(false));
    filter.enable_waveform();
    benchmark::DoNotOptimize(filter.process(in));
    benchmark::DoNotOptimize(filter.waveform().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_VcdCaptureOverhead);

void print_fig4_summary() {
  std::printf("\n=== E4: Fig. 4 timing summary ===\n");
  lm::bench::Table table({"microarchitecture", "latency (cycles)",
                          "initiation interval", "cycles for 9 bits"});
  for (bool pipelined : {false, true}) {
    fpga::FpgaFilter filter(make_artifact(pipelined));
    serde::CValue in = make_bits(9);
    fpga::FpgaRunStats stats;
    filter.process(in, &stats);
    table.row({pipelined ? "3-stage pipeline" : "Fig. 4 FSM (read/compute/publish)",
               std::to_string(stats.first_output_latency),
               std::to_string(filter.ports().initiation_interval),
               std::to_string(stats.cycles)});
  }
  table.print();
  std::printf(
      "paper: \"one cycle to read, one cycle to compute, and one cycle to "
      "publish the result\" — latency 3, not fully pipelined.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_fig4_summary();
  return 0;
}
