// E13 — what watching a fleet costs (DESIGN.md §15).
//
// The fleet plane scrapes N endpoints per poll and merges the expositions
// into one snapshot. Two numbers decide whether that plane can run hot:
//   1. Fan-out latency: wall time of one full scrape cycle (N parallel
//      GET /metrics + /healthz, parse, ingest) vs endpoint count. The
//      scraper fans one thread per endpoint, so given cores the cycle
//      tracks the slowest endpoint, not the sum; core-starved hosts
//      degrade toward linear.
//   2. Aggregation overhead: of one endpoint's scrape, how much is spent
//      in parse_exposition + FleetView::ingest + snapshot (the CPU the
//      fleet layer adds) vs the HTTP round trip it would pay anyway.
//
// Everything runs over loopback in one process: the latencies are a lower
// bound on a real link, the aggregation share therefore an upper bound.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/scraper.h"
#include "net/telemetry_http.h"
#include "obs/fleet.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace {

using namespace lm;

/// One fake fleet member with a realistic series count: counters, the
/// per-task/per-FIFO gauge families and a native exec-latency histogram.
struct Member {
  obs::MetricsRegistry reg;
  obs::LatencyHistogram hist;
  obs::TelemetryHub hub;
  std::unique_ptr<net::TelemetryServer> server;

  Member() {
    for (int i = 0; i < 24; ++i) {
      reg.counter("bench.counter_" + std::to_string(i)).add(1000 + i);
    }
    reg.counter("net.heartbeat_misses");
    for (int i = 0; i < 1000; ++i) hist.record_ns(50000 + i * 997);
    hub.add_metrics(&reg);
    hub.add_collector([](std::vector<obs::GaugeSample>& out) {
      for (int t = 0; t < 16; ++t) {
        std::vector<std::pair<std::string, std::string>> labels = {
            {"task", "T.stage" + std::to_string(t)}, {"device", "gpu"}};
        out.emplace_back("task.batches", 100.0 + t, labels);
        out.emplace_back("task.in_flight", 0.0, labels);
      }
      out.emplace_back("executor.queue_depth", 3.0);
    });
    hub.add_histograms([this](std::vector<obs::HistogramSample>& out) {
      out.push_back(obs::HistogramSample::from("server.exec_us", hist));
    });
    hub.add_health([](std::vector<obs::HealthComponent>& out) {
      out.push_back({"bench", true, ""});
    });
    server = std::make_unique<net::TelemetryServer>(hub);
    server->start();
  }
};

struct Fleet {
  std::vector<std::unique_ptr<Member>> members;
  std::vector<std::string> endpoints;

  explicit Fleet(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      members.push_back(std::make_unique<Member>());
      endpoints.push_back(members.back()->server->endpoint());
    }
  }
};

void BM_ScrapeCycle(benchmark::State& state) {
  Fleet fleet(static_cast<size_t>(state.range(0)));
  net::TelemetryScraper scraper(fleet.endpoints);
  for (auto _ : state) {
    scraper.scrape_once();
  }
  obs::FleetSnapshot snap = scraper.snapshot();
  if (snap.up != fleet.endpoints.size()) {
    state.SkipWithError("fleet not fully up");
  }
}
BENCHMARK(BM_ScrapeCycle)->Arg(1)->Arg(4)->Arg(16);

void print_summary() {
  std::printf("\n=== E13: fleet scrape fan-out and aggregation ===\n");
  lm::bench::JsonReport json("fleet");
  lm::bench::Table table(
      {"endpoints", "cycle_us", "per_endpoint_us", "vs_n1"});

  // 1. Fan-out: one full scrape cycle vs endpoint count.
  double base = 0;
  for (size_t n : {1u, 2u, 4u, 8u, 16u}) {
    Fleet fleet(n);
    net::TelemetryScraper scraper(fleet.endpoints);
    scraper.scrape_once();  // warm-up: connects, pools, rate baselines
    double cycle = lm::bench::time_best([&] { scraper.scrape_once(); });
    if (n == 1) base = cycle;
    obs::FleetSnapshot snap = scraper.snapshot();
    if (snap.up != n) {
      std::fprintf(stderr, "fleet of %zu not fully up\n", n);
      std::abort();
    }
    table.row({std::to_string(n), lm::bench::fmt(cycle * 1e6),
               lm::bench::fmt(cycle * 1e6 / static_cast<double>(n)),
               lm::bench::fmt(cycle / base, "x")});
    json.add("scrape_cycle_n" + std::to_string(n),
             {{"endpoints", static_cast<double>(n)},
              {"cycle_us", cycle * 1e6},
              {"vs_n1", cycle / base}});
  }
  table.print();
  std::printf("fan-out is one thread per endpoint: with enough cores the "
              "cycle tracks the slowest endpoint; on few cores it degrades "
              "toward the serial sum plus thread-spawn overhead — vs_n1 "
              "against the endpoint count shows which regime this host is "
              "in.\n");

  // 2. Aggregation overhead: parse + ingest + snapshot as a share of the
  //    full single-endpoint scrape (which includes the HTTP round trips).
  Fleet one(1);
  net::TelemetryScraper scraper(one.endpoints);
  scraper.scrape_once();
  double full = lm::bench::time_best([&] { scraper.scrape_once(); });

  std::string body;
  std::string host = "127.0.0.1";
  uint16_t port = one.members[0]->server->port();
  net::http_get(host, port, "/metrics", &body);
  double aggregate = lm::bench::time_best([&] {
    obs::FleetView view;
    obs::FleetView::Reading r;
    r.endpoint = one.endpoints[0];
    r.ok = true;
    r.healthy = true;
    r.now_us = obs::FleetView::now_us();
    std::string err;
    if (!obs::parse_exposition(body, &r.scrape, &err)) std::abort();
    view.ingest(std::move(r));
    obs::FleetSnapshot snap = view.snapshot(obs::FleetView::now_us());
    benchmark::DoNotOptimize(&snap);
  });
  double pct = aggregate / full * 100;
  std::printf("single scrape %s us, of which parse+ingest+snapshot %s us "
              "(%.2f%%) — the rest is the HTTP round trips.\n",
              lm::bench::fmt(full * 1e6).c_str(),
              lm::bench::fmt(aggregate * 1e6).c_str(), pct);
  json.add("aggregation", {{"scrape_us", full * 1e6},
                           {"aggregate_us", aggregate * 1e6},
                           {"overhead_pct", pct},
                           {"body_bytes", static_cast<double>(body.size())}});

  const char* json_file = "BENCH_fleet.json";
  if (json.write(json_file)) {
    std::printf("wrote %s\n", json_file);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
