// E3 — Figure 3: data transfer between the managed host and a native
// device using a float array. Measures each stage of the marshaling path
//
//   serialize (Lime value → byte array)
//   cross the native boundary (the JNI-like copy)
//   convert to a C-style value (dense unmarshal)
//   full round trip (all three + the mirror return path)
//
// across array sizes, reporting bytes/second. The shape to reproduce: the
// boundary copy runs at memcpy speed, serialization of dense arrays is
// bulk-copy fast, and per-element costs only appear for bit arrays (which
// pack/unpack 8 per byte).
#include <benchmark/benchmark.h>

#include "bytecode/value.h"
#include "serde/native.h"
#include "serde/wire.h"
#include "util/rng.h"

namespace {

using namespace lm;

bc::Value make_float_array(size_t n) {
  SplitMix64 rng(7);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.next_float();
  return bc::Value::array(bc::make_f32_array(std::move(v), true));
}

void BM_Serialize(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bc::Value v = make_float_array(n);
  auto ser = serde::serializer_for(lime::Type::value_array(lime::Type::float_()));
  for (auto _ : state) {
    ByteWriter w;
    ser->serialize(v, w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 4);
}
BENCHMARK(BM_Serialize)->RangeMultiplier(8)->Range(1 << 10, 1 << 22);

void BM_CrossBoundary(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> payload(n * 4, 0xA5);
  serde::NativeBoundary boundary;
  for (auto _ : state) {
    auto native = boundary.cross_to_native(payload);
    benchmark::DoNotOptimize(native.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 4);
}
BENCHMARK(BM_CrossBoundary)->RangeMultiplier(8)->Range(1 << 10, 1 << 22);

void BM_UnmarshalToC(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bc::Value v = make_float_array(n);
  auto t = lime::Type::value_array(lime::Type::float_());
  auto ser = serde::serializer_for(t);
  ByteWriter w;
  ser->serialize(v, w);
  auto bytes = w.bytes();
  for (auto _ : state) {
    serde::CValue c = serde::unmarshal_native(bytes, t);
    benchmark::DoNotOptimize(c.storage.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 4);
}
BENCHMARK(BM_UnmarshalToC)->RangeMultiplier(8)->Range(1 << 10, 1 << 22);

/// The complete Fig. 3 round trip: float[] in, int[] out.
void BM_FullRoundTrip(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bc::Value v = make_float_array(n);
  auto float_arr = lime::Type::value_array(lime::Type::float_());
  auto int_arr = lime::Type::value_array(lime::Type::int_());
  auto fser = serde::serializer_for(float_arr);
  auto iser = serde::serializer_for(int_arr);
  serde::NativeBoundary boundary;
  for (auto _ : state) {
    // Host → device.
    ByteWriter w;
    fser->serialize(v, w);
    auto native = boundary.cross_to_native(w.bytes());
    serde::CValue c = serde::unmarshal_native(native, float_arr);
    // The "kernel": floats → ints (so the return type differs, as in Fig. 3).
    serde::CValue out = serde::CValue::make(bc::ElemCode::kI32, true, c.count);
    auto in_f = c.f32s();
    auto out_i = out.i32s();
    for (size_t i = 0; i < c.count; ++i) {
      out_i[i] = static_cast<int32_t>(in_f[i] * 1000.0f);
    }
    // Device → host mirror path.
    auto wire = serde::marshal_native(out);
    auto host = boundary.cross_to_host(wire);
    ByteReader r(host);
    benchmark::DoNotOptimize(iser->deserialize(r));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 8);  // both directions
  state.counters["crossings"] =
      static_cast<double>(boundary.crossings()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_FullRoundTrip)->RangeMultiplier(8)->Range(1 << 10, 1 << 22);

/// Bit arrays pay a pack/unpack cost (8 bits per wire byte) — the one
/// non-bulk case in the wire format.
void BM_BitArrayRoundTrip(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SplitMix64 rng(3);
  std::vector<uint8_t> bits(n);
  for (auto& b : bits) b = rng.next_bool();
  bc::Value v = bc::Value::array(bc::make_bit_array(std::move(bits), true));
  auto t = lime::Type::value_array(lime::Type::bit());
  auto ser = serde::serializer_for(t);
  for (auto _ : state) {
    ByteWriter w;
    ser->serialize(v, w);
    serde::CValue c = serde::unmarshal_native(w.bytes(), t);
    benchmark::DoNotOptimize(serde::marshal_native(c));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BitArrayRoundTrip)->RangeMultiplier(8)->Range(1 << 10, 1 << 19);

}  // namespace

BENCHMARK_MAIN();
