// E9 — what observing the runtime costs (DESIGN.md §"Telemetry plane").
//
// The telemetry plane is only admissible if watching a run does not
// meaningfully change it. Three numbers pin that down:
//   1. Scrape latency: one `GET /metrics` end to end over loopback —
//      render + HTTP round trip — at a realistic series count. Sets the
//      ceiling on scrape frequency (lmtop polls at 1 Hz, check.sh at
//      10 Hz; both must be far below saturating one core).
//   2. Tracing overhead: the per-span cost with a recorder installed vs
//      the disarmed fast path (one relaxed load), the tax `--trace` adds
//      to every instrumented batch.
//   3. Scrape-under-load: wall time of a local pipeline run with a 100 Hz
//      scraper hammering the exporter vs the same run unobserved — the
//      number the EXPERIMENTS.md row reports.
//
// Serving and dialing happen in one process over 127.0.0.1, so the scrape
// numbers are an upper bound on what a real link delivers.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/telemetry_http.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/liquid_compiler.h"
#include "runtime/liquid_runtime.h"
#include "workloads/workloads.h"

namespace {

using namespace lm;

const workloads::Workload& pipeline_by_name(const std::string& name) {
  for (const auto& w : workloads::pipeline_suite()) {
    if (w.name == name) return w;
  }
  std::fprintf(stderr, "no pipeline workload named %s\n", name.c_str());
  std::abort();
}

/// A hub dressed to look like a busy runtime: a counter registry plus a
/// collector emitting the per-task / per-FIFO gauge families at the scale
/// of a real pipeline (16 tasks x 4 series + 8 queues x 2 series).
struct Fixture {
  obs::MetricsRegistry reg;
  obs::TelemetryHub hub;
  std::unique_ptr<net::TelemetryServer> server;

  Fixture() {
    for (int i = 0; i < 24; ++i) {
      reg.counter("bench.counter_" + std::to_string(i)).add(1000 + i);
    }
    hub.add_metrics(&reg);
    hub.add_collector([](std::vector<obs::GaugeSample>& out) {
      for (int t = 0; t < 16; ++t) {
        std::vector<std::pair<std::string, std::string>> labels = {
            {"task", "T.stage" + std::to_string(t)}, {"device", "gpu"}};
        out.emplace_back("task.batches", 100.0 + t, labels);
        out.emplace_back("task.elements", 1e5 + t, labels);
        out.emplace_back("task.in_flight", 0.0, labels);
        out.emplace_back("task.ewma_us_per_elem", 0.25, labels);
      }
      for (int q = 0; q < 8; ++q) {
        std::vector<std::pair<std::string, std::string>> labels = {
            {"graph", "0"}, {"queue", std::to_string(q)}};
        out.emplace_back("fifo.depth", 3.0, labels);
        out.emplace_back("fifo.capacity", 64.0, labels);
      }
    });
    hub.add_health([](std::vector<obs::HealthComponent>& out) {
      out.push_back({"bench", true, ""});
    });
    server = std::make_unique<net::TelemetryServer>(hub);
    server->start();
  }

  static Fixture& instance() {
    static Fixture f;
    return f;
  }
};

void BM_PrometheusRender(benchmark::State& state) {
  auto& f = Fixture::instance();
  for (auto _ : state) {
    std::string text = f.hub.prometheus_text();
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_PrometheusRender);

void BM_ScrapeMetrics(benchmark::State& state) {
  auto& f = Fixture::instance();
  std::string body;
  for (auto _ : state) {
    int status = net::http_get("127.0.0.1", f.server->port(), "/metrics",
                               &body);
    if (status != 200) state.SkipWithError("scrape failed");
    benchmark::DoNotOptimize(body.data());
  }
}
BENCHMARK(BM_ScrapeMetrics);

void BM_TraceSpanDisarmed(benchmark::State& state) {
  // No recorder installed: the span is one relaxed load + two null checks.
  for (auto _ : state) {
    obs::TraceSpan span("bench", "noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanDisarmed);

void BM_TraceSpanArmed(benchmark::State& state) {
  obs::TraceRecorder rec;
  rec.install();
  for (auto _ : state) {
    obs::TraceSpan span("bench", "noop");
    benchmark::DoNotOptimize(&span);
  }
  rec.uninstall();
}
BENCHMARK(BM_TraceSpanArmed);

void print_summary() {
  std::printf("\n=== E9: telemetry plane overhead ===\n");
  auto& f = Fixture::instance();
  lm::bench::JsonReport json("telemetry");

  // 1. Scrape latency (render alone, then the full HTTP round trip).
  double render = lm::bench::time_best([&] {
    std::string text = f.hub.prometheus_text();
    benchmark::DoNotOptimize(text.data());
  });
  std::string body;
  double scrape = lm::bench::time_best([&] {
    net::http_get("127.0.0.1", f.server->port(), "/metrics", &body);
    benchmark::DoNotOptimize(body.data());
  });
  size_t series = 0;
  for (size_t pos = 0; (pos = body.find('\n', pos)) != std::string::npos;
       ++pos) {
    ++series;
  }
  std::printf("render %s us, scrape %s us (%zu bytes, %zu lines) — "
              "10 Hz scraping costs %.3f%% of one core.\n",
              lm::bench::fmt(render * 1e6).c_str(),
              lm::bench::fmt(scrape * 1e6).c_str(), body.size(), series,
              scrape * 10 * 100);
  json.add("scrape", {{"render_us", render * 1e6},
                      {"scrape_us", scrape * 1e6},
                      {"body_bytes", static_cast<double>(body.size())},
                      {"core_pct_at_10hz", scrape * 10 * 100}});

  // 2. Per-span tracing tax: disarmed fast path vs recorder installed.
  const int spans = 1 << 16;
  double disarmed = lm::bench::time_best([&] {
    for (int i = 0; i < spans; ++i) {
      obs::TraceSpan span("bench", "noop");
      benchmark::DoNotOptimize(&span);
    }
  });
  obs::TraceRecorder rec;
  rec.install();
  double armed = lm::bench::time_best([&] {
    for (int i = 0; i < spans; ++i) {
      obs::TraceSpan span("bench", "noop");
      benchmark::DoNotOptimize(&span);
    }
  });
  rec.uninstall();
  std::printf("trace span: disarmed %s ns, armed %s ns.\n",
              lm::bench::fmt(disarmed / spans * 1e9).c_str(),
              lm::bench::fmt(armed / spans * 1e9).c_str());
  json.add("trace_span", {{"disarmed_ns", disarmed / spans * 1e9},
                          {"armed_ns", armed / spans * 1e9}});

  // 3. Scrape-under-load: one intpipe run unobserved vs the same run with
  //    a 100 Hz scraper on the live runtime's exporter. 100 Hz is 10x the
  //    check.sh soak rate, so the reported overhead is conservative.
  const workloads::Workload& w = pipeline_by_name("intpipe");
  auto prog = runtime::compile(w.lime_source);
  if (!prog->ok()) {
    std::fprintf(stderr, "%s", prog->diags.to_string().c_str());
    std::abort();
  }
  const size_t n = 1 << 15;
  auto run_once = [&](bool scraped) {
    runtime::LiquidRuntime rt(*prog);
    obs::TelemetryHub hub;
    hub.add_metrics(&rt.metrics());
    hub.add_collector([&rt](std::vector<obs::GaugeSample>& out) {
      rt.collect_telemetry(out);
    });
    std::unique_ptr<net::TelemetryServer> srv;
    std::atomic<bool> stop{false};
    std::thread scraper;
    if (scraped) {
      srv = std::make_unique<net::TelemetryServer>(hub);
      srv->start();
      scraper = std::thread([&] {
        std::string b;
        while (!stop.load(std::memory_order_acquire)) {
          net::http_get("127.0.0.1", srv->port(), "/metrics", &b);
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      });
    }
    double t = lm::bench::time_best([&] {
      auto out = rt.call(w.entry, w.make_args(n, 7));
      benchmark::DoNotOptimize(&out);
    });
    if (scraped) {
      stop.store(true, std::memory_order_release);
      scraper.join();
    }
    return t;
  };
  double bare = run_once(false);
  double watched = run_once(true);
  double pct = (watched / bare - 1.0) * 100;
  std::printf("intpipe n=%zu: unobserved %s us, scraped@100Hz %s us "
              "(%+.2f%%).\n",
              n, lm::bench::fmt(bare * 1e6).c_str(),
              lm::bench::fmt(watched * 1e6).c_str(), pct);
  json.add("scrape_under_load", {{"elements", static_cast<double>(n)},
                                 {"unobserved_us", bare * 1e6},
                                 {"scraped_100hz_us", watched * 1e6},
                                 {"overhead_pct", pct}});

  const char* json_file = "BENCH_telemetry.json";
  if (json.write(json_file)) {
    std::printf("wrote %s\n", json_file);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
