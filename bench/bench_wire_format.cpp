// E7 — the §4.3 design discussion, measured: "Our current design affords a
// common format as a starting point... One might further optimize the
// protocol by creating specific communication channels so that the sender
// and receiver are aware of the data format the other party desires. Going
// even further, one might be able to avoid a low-level memory copy by
// pinning memory and managing memory explicitly."
//
// Three channel designs over the same float-array payload:
//   universal    — serialize → boundary copy → unmarshal (the paper's
//                  portable wire format, what the runtime ships),
//   specialized  — sender and receiver agree on the dense layout: one
//                  boundary copy straight into the C value (no wire step),
//   pinned       — zero-copy: the device reads the host buffer in place
//                  (gives up OS/JVM portability, per the paper).
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/bench_util.h"
#include "bytecode/value.h"
#include "serde/native.h"
#include "serde/wire.h"
#include "util/rng.h"

namespace {

using namespace lm;

bc::ArrayRef make_floats(size_t n) {
  SplitMix64 rng(13);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.next_float();
  return bc::make_f32_array(std::move(v), true);
}

void BM_UniversalChannel(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bc::Value v = bc::Value::array(make_floats(n));
  auto t = lime::Type::value_array(lime::Type::float_());
  auto ser = serde::serializer_for(t);
  serde::NativeBoundary boundary;
  for (auto _ : state) {
    ByteWriter w;
    ser->serialize(v, w);
    auto native = boundary.cross_to_native(w.bytes());
    serde::CValue c = serde::unmarshal_native(native, t);
    benchmark::DoNotOptimize(c.f32s().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 4);
}
BENCHMARK(BM_UniversalChannel)->RangeMultiplier(8)->Range(1 << 10, 1 << 22);

void BM_SpecializedChannel(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bc::ArrayRef arr = make_floats(n);
  const auto& data = std::get<std::vector<float>>(arr->data);
  for (auto _ : state) {
    // Sender and receiver agreed on the dense float layout: a single copy
    // lands directly in the C-style value.
    serde::CValue c = serde::CValue::make(bc::ElemCode::kF32, true, n);
    std::memcpy(c.storage.data(), data.data(), n * sizeof(float));
    benchmark::DoNotOptimize(c.f32s().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 4);
}
BENCHMARK(BM_SpecializedChannel)->RangeMultiplier(8)->Range(1 << 10, 1 << 22);

void BM_PinnedZeroCopy(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bc::ArrayRef arr = make_floats(n);
  const auto& data = std::get<std::vector<float>>(arr->data);
  float acc = 0;
  for (auto _ : state) {
    // The "device" consumes the host buffer in place (touch every element
    // so the comparison includes one full read of the payload).
    for (size_t i = 0; i < n; ++i) acc += data[i];
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 4);
}
BENCHMARK(BM_PinnedZeroCopy)->RangeMultiplier(8)->Range(1 << 10, 1 << 22);

void print_summary() {
  std::printf("\n=== E7: channel designs, 1 MiB float payload ===\n");
  size_t n = 1u << 18;
  bc::Value v = bc::Value::array(make_floats(n));
  auto t = lime::Type::value_array(lime::Type::float_());
  auto ser = serde::serializer_for(t);
  serde::NativeBoundary boundary;

  double universal = lm::bench::time_best([&] {
    ByteWriter w;
    ser->serialize(v, w);
    auto native = boundary.cross_to_native(w.bytes());
    auto c = serde::unmarshal_native(native, t);
    benchmark::DoNotOptimize(c.storage.data());
  });
  const auto& data = std::get<std::vector<float>>(v.as_array()->data);
  double specialized = lm::bench::time_best([&] {
    serde::CValue c = serde::CValue::make(bc::ElemCode::kF32, true, n);
    std::memcpy(c.storage.data(), data.data(), n * sizeof(float));
    benchmark::DoNotOptimize(c.storage.data());
  });

  lm::bench::Table table({"channel", "time (us)", "copies", "portable"});
  table.row({"universal byte stream", lm::bench::fmt(universal * 1e6), "3",
             "yes (the shipped default)"});
  table.row({"specialized dense channel", lm::bench::fmt(specialized * 1e6),
             "1", "per device pair"});
  table.print();
  std::printf("universal / specialized = %.1fx — the portability cost the "
              "paper accepts for a common starting point (§4.3).\n",
              universal / specialized);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
