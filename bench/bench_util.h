// Shared helpers for the experiment benchmarks (E1–E7).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace lm::bench {

/// Wall-clock timing of one call.
inline double time_once(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Runs fn at least `min_reps` times and at least `min_seconds` total;
/// returns the best (minimum) time — robust against scheduler noise.
inline double time_best(const std::function<void()>& fn, int min_reps = 3,
                        double min_seconds = 0.05) {
  double best = 1e300;
  double total = 0;
  int reps = 0;
  while (reps < min_reps || total < min_seconds) {
    double t = time_once(fn);
    if (t < best) best = t;
    total += t;
    ++reps;
    if (reps > 1000) break;
  }
  return best;
}

/// Wall-clock sample statistics over repeated runs: the best (the Table
/// headline number) plus the p50/p99 spread the BENCH_*.json files carry.
struct SampleStats {
  double best_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  int reps = 0;
};

/// Runs fn at least `min_reps` times and at least `min_seconds` total and
/// returns best/p50/p99 over the samples.
inline SampleStats time_stats(const std::function<void()>& fn,
                              int min_reps = 9, double min_seconds = 0.05) {
  std::vector<double> samples;
  double total = 0;
  while (static_cast<int>(samples.size()) < min_reps || total < min_seconds) {
    double t = time_once(fn);
    samples.push_back(t);
    total += t;
    if (samples.size() > 1000) break;
  }
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank == 0) rank = 1;
    return samples[std::min(rank, samples.size()) - 1];
  };
  return {samples.front(), at(0.5), at(0.99),
          static_cast<int>(samples.size())};
}

/// Accumulates named rows of numeric fields and writes the machine-readable
/// BENCH_<suite>.json files (one object per benchmark) that trend tooling
/// diffs across runs. Names come from the benchmarks themselves, so no
/// JSON escaping is attempted.
class JsonReport {
 public:
  explicit JsonReport(std::string suite) : suite_(std::move(suite)) {}

  void add(const std::string& name,
           std::vector<std::pair<std::string, double>> fields) {
    entries_.push_back({name, std::move(fields)});
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\"suite\":\"%s\",\"benchmarks\":[", suite_.c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      const auto& [name, fields] = entries_[i];
      std::fprintf(f, "%s{\"name\":\"%s\"", i ? "," : "", name.c_str());
      for (const auto& [key, value] : fields) {
        std::fprintf(f, ",\"%s\":%.9g", key.c_str(), value);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string suite_;
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>>
      entries_;
};

/// Fixed-width table printer for the paper-style summary rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (size_t i = 0; i < r.size() && i < width.size(); ++i) {
        if (r[i].size() > width[i]) width[i] = r[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      std::printf("| ");
      for (size_t i = 0; i < headers_.size(); ++i) {
        std::printf("%-*s | ", static_cast<int>(width[i]),
                    i < r.size() ? r[i].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t i = 0; i < headers_.size(); ++i) {
      for (size_t j = 0; j < width[i] + 2; ++j) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, const char* suffix = "") {
  char buf[64];
  if (v >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f%s", v, suffix);
  } else if (v >= 1) {
    std::snprintf(buf, sizeof buf, "%.2f%s", v, suffix);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f%s", v, suffix);
  }
  return buf;
}

}  // namespace lm::bench
