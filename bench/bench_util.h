// Shared helpers for the experiment benchmarks (E1–E7).
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace lm::bench {

/// Wall-clock timing of one call.
inline double time_once(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Runs fn at least `min_reps` times and at least `min_seconds` total;
/// returns the best (minimum) time — robust against scheduler noise.
inline double time_best(const std::function<void()>& fn, int min_reps = 3,
                        double min_seconds = 0.05) {
  double best = 1e300;
  double total = 0;
  int reps = 0;
  while (reps < min_reps || total < min_seconds) {
    double t = time_once(fn);
    if (t < best) best = t;
    total += t;
    ++reps;
    if (reps > 1000) break;
  }
  return best;
}

/// Fixed-width table printer for the paper-style summary rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (size_t i = 0; i < r.size() && i < width.size(); ++i) {
        if (r[i].size() > width[i]) width[i] = r[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      std::printf("| ");
      for (size_t i = 0; i < headers_.size(); ++i) {
        std::printf("%-*s | ", static_cast<int>(width[i]),
                    i < r.size() ? r[i].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t i = 0; i < headers_.size(); ++i) {
      for (size_t j = 0; j < width[i] + 2; ++j) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, const char* suffix = "") {
  char buf[64];
  if (v >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f%s", v, suffix);
  } else if (v >= 1) {
    std::snprintf(buf, sizeof buf, "%.2f%s", v, suffix);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f%s", v, suffix);
  }
  return buf;
}

}  // namespace lm::bench
