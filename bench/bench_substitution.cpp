// E2 — task substitution (§4.2): the same task graph under every placement
// policy. Measures the end-to-end effect of each functionally-equivalent
// configuration ("the runtime can choose from a large number of
// functionally-equivalent configurations") and the cost of the substitution
// decision itself.
//
// Shape targets: GPU (fused) fastest at large n, CPU bytecode slowest,
// FPGA in between but dominated by RTL simulation cost per element (a real
// board would change the constant, not the structure); substitution
// decision time is microseconds — negligible against execution.
#include <benchmark/benchmark.h>

#include <fstream>

#include "bench/bench_util.h"
#include "obs/trace.h"
#include "runtime/liquid_runtime.h"
#include "workloads/workloads.h"

namespace {

using namespace lm;

const workloads::Workload& intpipe() {
  return workloads::pipeline_suite()[0];
}

void BM_Placement(benchmark::State& state) {
  auto placement = static_cast<runtime::Placement>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  workloads::register_native_kernels();
  auto cp = runtime::compile(intpipe().lime_source);
  auto args = intpipe().make_args(n, 1);
  runtime::RuntimeConfig rc;
  rc.placement = placement;
  for (auto _ : state) {
    runtime::LiquidRuntime rt(*cp, rc);
    benchmark::DoNotOptimize(rt.call(intpipe().entry, args));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  switch (placement) {
    case runtime::Placement::kCpuOnly: state.SetLabel("cpu-only"); break;
    case runtime::Placement::kGpuOnly: state.SetLabel("gpu-only"); break;
    case runtime::Placement::kFpgaOnly: state.SetLabel("fpga-only"); break;
    case runtime::Placement::kAuto: state.SetLabel("auto"); break;
    case runtime::Placement::kAdaptive: state.SetLabel("adaptive"); break;
  }
}
BENCHMARK(BM_Placement)
    ->Args({static_cast<long>(runtime::Placement::kCpuOnly), 16384})
    ->Args({static_cast<long>(runtime::Placement::kGpuOnly), 16384})
    ->Args({static_cast<long>(runtime::Placement::kFpgaOnly), 16384})
    ->Args({static_cast<long>(runtime::Placement::kAuto), 16384})
    ->Unit(benchmark::kMillisecond);

/// The substitution decision itself: construct + substitute + execute a
/// minimal graph; the delta against the 1-element execution bounds the
/// decision cost.
void BM_DecisionOverhead(benchmark::State& state) {
  auto cp = runtime::compile(intpipe().lime_source);
  auto args = intpipe().make_args(1, 1);
  runtime::RuntimeConfig rc;
  rc.use_threads = false;  // isolate decision cost from thread spawn
  for (auto _ : state) {
    runtime::LiquidRuntime rt(*cp, rc);
    benchmark::DoNotOptimize(rt.call(intpipe().entry, args));
  }
}
BENCHMARK(BM_DecisionOverhead);

/// Thread-per-task spawn/join overhead on a trivial graph.
void BM_ThreadScheduleOverhead(benchmark::State& state) {
  auto cp = runtime::compile(intpipe().lime_source);
  auto args = intpipe().make_args(1, 1);
  runtime::RuntimeConfig rc;
  rc.use_threads = true;
  for (auto _ : state) {
    runtime::LiquidRuntime rt(*cp, rc);
    benchmark::DoNotOptimize(rt.call(intpipe().entry, args));
  }
}
BENCHMARK(BM_ThreadScheduleOverhead);

void print_summary() {
  workloads::register_native_kernels();
  std::printf("\n=== E2: functionally-equivalent configurations of "
              "IntPipe (scale => clamp => offset), n = 16384 ===\n");
  lm::bench::Table table(
      {"placement", "substitution", "time (ms)", "vs cpu"});
  lm::bench::JsonReport json("substitution");
  auto cp = runtime::compile(intpipe().lime_source);
  auto args = intpipe().make_args(16384, 1);
  double cpu_time = 0;
  for (auto [placement, label] :
       {std::pair{runtime::Placement::kCpuOnly, "cpu-only"},
        std::pair{runtime::Placement::kFpgaOnly, "fpga-only"},
        std::pair{runtime::Placement::kGpuOnly, "gpu-only"},
        std::pair{runtime::Placement::kAuto, "auto"},
        std::pair{runtime::Placement::kAdaptive, "adaptive"}}) {
    runtime::RuntimeConfig rc;
    rc.placement = placement;
    std::string subs;
    lm::bench::SampleStats st = lm::bench::time_stats([&] {
      runtime::LiquidRuntime rt(*cp, rc);
      rt.call(intpipe().entry, args);
      subs.clear();
      for (const auto& s : rt.stats().substitutions) {
        if (!subs.empty()) subs += ", ";
        subs += s.task_ids;
        subs += "->";
        subs += runtime::to_string(s.device);
        if (s.fused) subs += "(fused)";
      }
    });
    double t = st.best_s;
    if (placement == runtime::Placement::kCpuOnly) cpu_time = t;
    json.add(label, {{"wall_ms", st.best_s * 1e3},
                     {"p50_ms", st.p50_s * 1e3},
                     {"p99_ms", st.p99_s * 1e3},
                     {"reps", static_cast<double>(st.reps)}});
    table.row({label, subs, lm::bench::fmt(t * 1e3),
               lm::bench::fmt(cpu_time / t, "x")});
  }
  table.print();
  const char* json_file = "BENCH_substitution.json";
  if (json.write(json_file)) {
    std::printf("json: %s\n", json_file);
  }

  // One traced adaptive run: the trace's "decision" events carry every
  // candidate artifact and its profiled score — the full E2 story in one
  // file (open in chrome://tracing / Perfetto).
  runtime::RuntimeConfig rc;
  rc.placement = runtime::Placement::kAdaptive;
  obs::TraceRecorder recorder;
  recorder.install();
  runtime::LiquidRuntime rt(*cp, rc);
  rt.call(intpipe().entry, args);
  recorder.uninstall();
  const char* trace_file = "bench_substitution_trace.json";
  std::ofstream(trace_file) << recorder.chrome_trace_json();
  std::printf("trace: %zu event(s) -> %s\n", recorder.event_count(),
              trace_file);
  std::printf("metrics: %s\n", rt.metrics().summary().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
