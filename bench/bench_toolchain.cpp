// E1 — Figures 1 & 2: the compilation toolchain on the Bitflip program and
// larger workload sources. Measures each stage of the Fig. 2 flow:
// frontend (lex/parse/sema), CPU/bytecode backend, task-graph discovery,
// and the full pipeline with the GPU + FPGA device compilers.
//
// Shape target: the frontend dominates small programs; the device backends
// add modest, per-relocated-task cost; the CPU backend always compiles
// everything regardless of device compiler exclusions.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bytecode/compiler.h"
#include "ir/task_graph.h"
#include "lime/frontend.h"
#include "runtime/liquid_runtime.h"
#include "workloads/workloads.h"

namespace {

using namespace lm;

const char* kFigure1 = R"(
public value enum bit {
  zero, one;
  public bit ~ this { return this == zero ? one : zero; }
}
public class Bitflip {
  local static bit flip(bit b) { return ~b; }
  local static bit[[]] mapFlip(bit[[]] input) {
    var flipped = Bitflip @ flip(input);
    return flipped;
  }
  static bit[[]] taskFlip(bit[[]] input) {
    bit[] result = new bit[input.length];
    var flipit = input.source(1)
      => ([ task flip ])
      => result.<bit>sink();
    flipit.finish();
    return new bit[[]](result);
  }
}
)";

std::string source_for(int which) {
  switch (which) {
    case 0: return kFigure1;
    case 1: return workloads::gpu_suite()[3].lime_source;  // black-scholes
    default: return workloads::pipeline_suite()[0].lime_source;  // intpipe
  }
}

const char* label_for(int which) {
  switch (which) {
    case 0: return "figure1";
    case 1: return "blackscholes";
    default: return "intpipe";
  }
}

void BM_Frontend(benchmark::State& state) {
  std::string src = source_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto fr = lime::compile_source(src);
    benchmark::DoNotOptimize(fr.program.get());
  }
  state.SetLabel(label_for(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Frontend)->Arg(0)->Arg(1)->Arg(2);

void BM_BytecodeBackend(benchmark::State& state) {
  std::string src = source_for(static_cast<int>(state.range(0)));
  auto fr = lime::compile_source(src);
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto mod = bc::compile_program(*fr.program, diags);
    benchmark::DoNotOptimize(mod.get());
  }
  state.SetLabel(label_for(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_BytecodeBackend)->Arg(0)->Arg(1)->Arg(2);

void BM_TaskGraphDiscovery(benchmark::State& state) {
  std::string src = source_for(static_cast<int>(state.range(0)));
  auto fr = lime::compile_source(src);
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto graphs = ir::extract_task_graphs(*fr.program, diags);
    benchmark::DoNotOptimize(graphs.graphs.size());
  }
  state.SetLabel(label_for(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_TaskGraphDiscovery)->Arg(0)->Arg(1)->Arg(2);

void BM_FullToolchain(benchmark::State& state) {
  std::string src = source_for(static_cast<int>(state.range(0)));
  size_t artifacts = 0;
  for (auto _ : state) {
    auto cp = runtime::compile(src);
    artifacts = cp->store.size();
    benchmark::DoNotOptimize(cp.get());
  }
  state.counters["artifacts"] = static_cast<double>(artifacts);
  state.SetLabel(label_for(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_FullToolchain)->Arg(0)->Arg(1)->Arg(2);

void BM_ToolchainCpuOnly(benchmark::State& state) {
  std::string src = source_for(static_cast<int>(state.range(0)));
  runtime::CompileOptions opts;
  opts.enable_gpu = false;
  opts.enable_fpga = false;
  for (auto _ : state) {
    auto cp = runtime::compile(src, opts);
    benchmark::DoNotOptimize(cp.get());
  }
  state.SetLabel(label_for(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_ToolchainCpuOnly)->Arg(0)->Arg(1)->Arg(2);

void print_artifact_inventory() {
  std::printf("\n=== E1: Fig. 2 toolchain output for the Fig. 1 program ===\n");
  auto cp = runtime::compile(kFigure1);
  if (!cp->ok()) return;
  for (const auto& line : cp->backend_log) std::printf("  %s\n", line.c_str());
  lm::bench::Table table({"task id", "device", "signature", "artifact"});
  for (const auto* m : cp->store.manifests()) {
    std::string sig;
    for (size_t i = 0; i < m->param_types.size(); ++i) {
      if (i) sig += ", ";
      sig += m->param_types[i]->to_string();
    }
    sig = "(" + sig + ") -> " + m->return_type->to_string();
    std::string kind =
        m->device == runtime::DeviceKind::kGpu    ? "OpenCL-C text"
        : m->device == runtime::DeviceKind::kFpga ? "Verilog text"
                                                  : "bytecode";
    table.row({m->task_id, runtime::to_string(m->device), sig, kind});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_artifact_inventory();
  return 0;
}
