// E8 — the remote transport, measured (DESIGN.md §9): what a batch costs
// when the device lives in another process on the other end of a socket.
//
// Three questions the cost model (and anyone typing `lmc --remote=`) cares
// about:
//   1. The RTT floor: a minimal request/reply over loopback — the fixed
//      per-batch tax remote substitution must amortize.
//   2. Throughput vs payload: where the wire stops being latency-bound and
//      the bytes start to dominate (sets the device_batch sweet spot).
//   3. Pipelining: how much of the per-request tax overlapping requests on
//      one connection buys back vs lock-step request/reply.
//
// Serving and dialing happen in one process over 127.0.0.1, so numbers are
// an upper bound on what a real network link delivers.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "runtime/liquid_compiler.h"
#include "serde/batch.h"

namespace {

using namespace lm;

const char* kSource = R"(
  class B {
    local static int scale(int x) { return 3 * x; }
    static int[[]] run(int[[]] input) {
      int[] result = new int[input.length];
      var g = input.source(1) => ([ task scale ]) => result.<int>sink();
      g.finish();
      return new int[[]](result);
    }
  }
)";

/// One server + one session, shared by every benchmark in the binary.
struct Loopback {
  std::unique_ptr<runtime::CompiledProgram> program;
  std::unique_ptr<net::DeviceServer> server;
  std::shared_ptr<net::RemoteSession> session;

  Loopback() {
    program = runtime::compile(kSource);
    if (!program->ok()) {
      std::fprintf(stderr, "%s", program->diags.to_string().c_str());
      std::abort();
    }
    server = std::make_unique<net::DeviceServer>(*program);
    server->start();
    session = std::make_shared<net::RemoteSession>(
        "127.0.0.1", server->port(),
        net::program_fingerprint(program->store), net::SessionOptions{});
  }

  static Loopback& instance() {
    static Loopback lb;
    return lb;
  }
};

std::vector<uint8_t> packed_ints(size_t n) {
  std::vector<bc::Value> elems;
  elems.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    elems.push_back(bc::Value::i32(static_cast<int32_t>(i)));
  }
  return serde::pack_batch(elems, lime::Type::int_());
}

void BM_RemoteRtt(benchmark::State& state) {
  auto& lb = Loopback::instance();
  auto batch = packed_ints(1);
  for (auto _ : state) {
    auto reply =
        lb.session->process("B.scale", runtime::DeviceKind::kGpu, batch);
    benchmark::DoNotOptimize(reply.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteRtt);

void BM_RemoteThroughput(benchmark::State& state) {
  auto& lb = Loopback::instance();
  size_t n = static_cast<size_t>(state.range(0));
  auto batch = packed_ints(n);
  for (auto _ : state) {
    auto reply =
        lb.session->process("B.scale", runtime::DeviceKind::kGpu, batch);
    benchmark::DoNotOptimize(reply.data());
  }
  // Payload crosses twice (request + reply).
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()) * 2);
}
BENCHMARK(BM_RemoteThroughput)->RangeMultiplier(8)->Range(1 << 8, 1 << 20);

void BM_RemoteLockstep(benchmark::State& state) {
  auto& lb = Loopback::instance();
  const size_t batches = 16;
  auto batch = packed_ints(4096);
  for (auto _ : state) {
    for (size_t i = 0; i < batches; ++i) {
      auto reply =
          lb.session->process("B.scale", runtime::DeviceKind::kGpu, batch);
      benchmark::DoNotOptimize(reply.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batches);
}
BENCHMARK(BM_RemoteLockstep);

void BM_RemotePipelined(benchmark::State& state) {
  auto& lb = Loopback::instance();
  std::vector<std::vector<uint8_t>> batches(16, packed_ints(4096));
  for (auto _ : state) {
    auto replies = lb.session->process_pipelined(
        "B.scale", runtime::DeviceKind::kGpu, batches);
    benchmark::DoNotOptimize(replies.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batches.size()));
}
BENCHMARK(BM_RemotePipelined);

void print_summary() {
  std::printf("\n=== E8: remote RPC over loopback ===\n");
  auto& lb = Loopback::instance();
  lm::bench::JsonReport json("remote_rpc");

  // 1. RTT floor.
  auto one = packed_ints(1);
  double rtt = lm::bench::time_best([&] {
    auto r = lb.session->process("B.scale", runtime::DeviceKind::kGpu, one);
    benchmark::DoNotOptimize(r.data());
  });
  json.add("rtt_floor", {{"rtt_us", rtt * 1e6}});

  // 2. Throughput vs payload size.
  lm::bench::Table table(
      {"elements", "payload", "round trip (us)", "MB/s", "us/elem"});
  table.row({"1", "9 B", lm::bench::fmt(rtt * 1e6), "-", "-"});
  for (size_t n : {size_t{1} << 10, size_t{1} << 14, size_t{1} << 18}) {
    auto batch = packed_ints(n);
    double t = lm::bench::time_best([&] {
      auto r =
          lb.session->process("B.scale", runtime::DeviceKind::kGpu, batch);
      benchmark::DoNotOptimize(r.data());
    });
    double mbs = 2.0 * static_cast<double>(batch.size()) / t / 1e6;
    table.row({std::to_string(n),
               std::to_string(batch.size() / 1024) + " KiB",
               lm::bench::fmt(t * 1e6), lm::bench::fmt(mbs),
               lm::bench::fmt(t * 1e6 / static_cast<double>(n))});
    json.add("throughput_n" + std::to_string(n),
             {{"elements", static_cast<double>(n)},
              {"payload_bytes", static_cast<double>(batch.size())},
              {"round_trip_us", t * 1e6},
              {"mb_per_s", mbs},
              {"us_per_elem", t * 1e6 / static_cast<double>(n)}});
  }
  table.print();

  // 3. Pipelined vs lock-step, 16 x 4096-element batches.
  std::vector<std::vector<uint8_t>> batches(16, packed_ints(4096));
  double lockstep = lm::bench::time_best([&] {
    for (const auto& b : batches) {
      auto r = lb.session->process("B.scale", runtime::DeviceKind::kGpu, b);
      benchmark::DoNotOptimize(r.data());
    }
  });
  double pipelined = lm::bench::time_best([&] {
    auto r = lb.session->process_pipelined("B.scale",
                                           runtime::DeviceKind::kGpu, batches);
    benchmark::DoNotOptimize(r.data());
  });
  std::printf("16 x 4096-elem batches: lock-step %s us, pipelined %s us "
              "(%.2fx) — the per-request tax overlapping buys back.\n",
              lm::bench::fmt(lockstep * 1e6).c_str(),
              lm::bench::fmt(pipelined * 1e6).c_str(), lockstep / pipelined);
  json.add("pipelining",
           {{"lockstep_us", lockstep * 1e6},
            {"pipelined_us", pipelined * 1e6},
            {"speedup", lockstep / pipelined}});

  const char* json_file = "BENCH_remote.json";
  if (json.write(json_file)) {
    std::printf("wrote %s\n", json_file);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
